"""``crisp-asm``: assemble a source file and print its listing."""

from __future__ import annotations

import argparse
import sys

from repro.asm.assembler import AssemblyError, assemble


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-asm",
        description="Assemble CRISP assembly and print the program listing.")
    parser.add_argument("source", help="assembly source file ('-' for stdin)")
    parser.add_argument("--code-base", type=lambda s: int(s, 0), default=0x1000,
                        help="code segment base address (default 0x1000)")
    parser.add_argument("--data-base", type=lambda s: int(s, 0), default=0x8000,
                        help="data segment base address (default 0x8000)")
    args = parser.parse_args(argv)

    if args.source == "-":
        text = sys.stdin.read()
    else:
        with open(args.source, encoding="utf-8") as handle:
            text = handle.read()
    try:
        program = assemble(text, code_base=args.code_base,
                           data_base=args.data_base)
    except AssemblyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(program.listing())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
