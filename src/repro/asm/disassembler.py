"""Disassembler: parcel streams back to readable assembly text."""

from __future__ import annotations

from typing import Sequence

from repro.isa.encoding import decode_instruction
from repro.isa.instructions import BranchMode, Instruction
from repro.isa.parcels import PARCEL_BYTES


def disassemble_one(parcels: Sequence[int], offset: int = 0,
                    address: int | None = None) -> str:
    """Disassemble one instruction; include its branch target address when
    ``address`` (the instruction's own byte address) is supplied."""
    instruction = decode_instruction(parcels, offset)
    return format_instruction(instruction, address)


def format_instruction(instruction: Instruction,
                       address: int | None = None) -> str:
    """Format an instruction, resolving PC-relative targets if possible."""
    if (address is not None and instruction.branch is not None
            and instruction.branch.mode is BranchMode.PC_RELATIVE):
        target = address + instruction.branch.value
        mnemonic = str(instruction).split()[0]
        return f"{mnemonic} {target:#x}"
    return str(instruction)


def disassemble(parcels: Sequence[int], base_address: int = 0) -> list[str]:
    """Disassemble a whole parcel stream into annotated lines."""
    lines, offset = [], 0
    while offset < len(parcels):
        instruction = decode_instruction(parcels, offset)
        address = base_address + offset * PARCEL_BYTES
        lines.append(f"{address:#06x}  {format_instruction(instruction, address)}")
        offset += instruction.length_parcels()
    return lines
