"""Disassembler: parcel streams back to readable assembly text."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.isa.encoding import decode_instruction
from repro.isa.instructions import BranchMode, Instruction
from repro.isa.parcels import PARCEL_BYTES


def disassemble_one(parcels: Sequence[int], offset: int = 0,
                    address: int | None = None) -> str:
    """Disassemble one instruction; include its branch target address when
    ``address`` (the instruction's own byte address) is supplied."""
    instruction = decode_instruction(parcels, offset)
    return format_instruction(instruction, address)


def format_instruction(instruction: Instruction,
                       address: int | None = None) -> str:
    """Format an instruction, resolving PC-relative targets if possible."""
    if (address is not None and instruction.branch is not None
            and instruction.branch.mode is BranchMode.PC_RELATIVE):
        target = address + instruction.branch.value
        mnemonic = str(instruction).split()[0]
        return f"{mnemonic} {target:#x}"
    return str(instruction)


def disassemble(parcels: Sequence[int], base_address: int = 0) -> list[str]:
    """Disassemble a whole parcel stream into annotated lines."""
    lines, offset = [], 0
    while offset < len(parcels):
        instruction = decode_instruction(parcels, offset)
        address = base_address + offset * PARCEL_BYTES
        lines.append(f"{address:#06x}  {format_instruction(instruction, address)}")
        offset += instruction.length_parcels()
    return lines


def program_to_source(program) -> str:
    """Render a :class:`~repro.asm.program.Program` back to assembly text.

    The output is designed to *re-assemble byte-identically*: same parcel
    image, data image and entry point. PC-relative branch targets are
    rewritten as synthesized labels (a numeric target would force the
    assembler's always-long encoding and change the image); absolute
    targets stay numeric, indirect targets keep their specifier form.
    Raises ``ValueError`` if a PC-relative target does not land on an
    instruction boundary — such a program cannot be expressed in the
    source grammar.
    """
    addresses = set(program.addresses)
    needed_labels: set[int] = set()
    for address, instruction in zip(program.addresses, program.instructions):
        spec = instruction.branch
        if spec is not None and spec.mode is BranchMode.PC_RELATIVE:
            target = address + spec.value
            if target not in addresses:
                raise ValueError(
                    f"branch at {address:#x} targets {target:#x}, which is "
                    f"not an instruction boundary")
            needed_labels.add(target)
    if program.entry not in addresses:
        raise ValueError(f"entry {program.entry:#x} is not an instruction")

    lines = [f"    .org {program.code_base:#x}",
             f"    .stack {program.stack_top:#x}",
             "    .entry __entry"]
    if program.data:
        lines.append(f"    .dataorg {program.data[0].address:#x}")
        seen: set[str] = set()
        for item in program.data:
            # multi-value .word directives stamp every item with the
            # same name; only the first occurrence may keep it
            name = item.name if item.name and item.name not in seen \
                else f"__w{item.address:x}"
            if item.name:
                seen.add(item.name)
            lines.append(f"    .word {name}, {item.value}")

    for address, instruction in zip(program.addresses, program.instructions):
        if address in needed_labels:
            lines.append(f"__L{address:x}:")
        if address == program.entry:
            lines.append("__entry:")
        lines.append(f"    {_render_statement(instruction, address)}")
    return "\n".join(lines) + "\n"


def _render_statement(instruction: Instruction, address: int) -> str:
    spec = instruction.branch
    if spec is None:
        return str(instruction)  # operands round-trip via their str forms
    mnemonic = instruction.opcode.value
    if spec.mode is BranchMode.PC_RELATIVE:
        return f"{mnemonic} __L{address + spec.value:x}"
    if spec.mode is BranchMode.ABSOLUTE:
        return f"{mnemonic} *{spec.value:#x}"
    if spec.mode is BranchMode.INDIRECT_ABS:
        return f"{mnemonic} (*{spec.value:#x})"
    return f"{mnemonic} ({spec.value}(sp))"


def annotated_listing(program, margin_for: Callable[[int], str],
                      margin_width: int = 0,
                      interleave: Callable[[int], list[str]] | None = None
                      ) -> list[str]:
    """A program listing with a caller-supplied left margin per address.

    ``margin_for(address)`` returns the margin text for each instruction
    (``""`` for an empty margin); ``interleave(address)``, if given,
    returns extra full-width lines (e.g. source text) printed *before*
    the instruction. Labels are kept, indented past the margin — the
    "perf annotate" presentation the attribution profiler renders.
    """
    by_address: dict[int, list[str]] = {}
    for name, address in program.symbols.items():
        by_address.setdefault(address, []).append(name)
    pad = " " * margin_width
    lines: list[str] = []
    for address, instruction in zip(program.addresses,
                                    program.instructions):
        if interleave is not None:
            lines.extend(f"{pad}  {text}" for text in interleave(address))
        for name in sorted(by_address.get(address, ())):
            lines.append(f"{pad}  {name}:")
        margin = margin_for(address)
        lines.append(f"{margin:>{margin_width}}  {address:#06x}  "
                     f"{format_instruction(instruction, address)}")
    return lines
