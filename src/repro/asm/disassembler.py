"""Disassembler: parcel streams back to readable assembly text."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.isa.encoding import decode_instruction
from repro.isa.instructions import BranchMode, Instruction
from repro.isa.parcels import PARCEL_BYTES


def disassemble_one(parcels: Sequence[int], offset: int = 0,
                    address: int | None = None) -> str:
    """Disassemble one instruction; include its branch target address when
    ``address`` (the instruction's own byte address) is supplied."""
    instruction = decode_instruction(parcels, offset)
    return format_instruction(instruction, address)


def format_instruction(instruction: Instruction,
                       address: int | None = None) -> str:
    """Format an instruction, resolving PC-relative targets if possible."""
    if (address is not None and instruction.branch is not None
            and instruction.branch.mode is BranchMode.PC_RELATIVE):
        target = address + instruction.branch.value
        mnemonic = str(instruction).split()[0]
        return f"{mnemonic} {target:#x}"
    return str(instruction)


def disassemble(parcels: Sequence[int], base_address: int = 0) -> list[str]:
    """Disassemble a whole parcel stream into annotated lines."""
    lines, offset = [], 0
    while offset < len(parcels):
        instruction = decode_instruction(parcels, offset)
        address = base_address + offset * PARCEL_BYTES
        lines.append(f"{address:#06x}  {format_instruction(instruction, address)}")
        offset += instruction.length_parcels()
    return lines


def annotated_listing(program, margin_for: Callable[[int], str],
                      margin_width: int = 0,
                      interleave: Callable[[int], list[str]] | None = None
                      ) -> list[str]:
    """A program listing with a caller-supplied left margin per address.

    ``margin_for(address)`` returns the margin text for each instruction
    (``""`` for an empty margin); ``interleave(address)``, if given,
    returns extra full-width lines (e.g. source text) printed *before*
    the instruction. Labels are kept, indented past the margin — the
    "perf annotate" presentation the attribution profiler renders.
    """
    by_address: dict[int, list[str]] = {}
    for name, address in program.symbols.items():
        by_address.setdefault(address, []).append(name)
    pad = " " * margin_width
    lines: list[str] = []
    for address, instruction in zip(program.addresses,
                                    program.instructions):
        if interleave is not None:
            lines.extend(f"{pad}  {text}" for text in interleave(address))
        for name in sorted(by_address.get(address, ())):
            lines.append(f"{pad}  {name}:")
        margin = margin_for(address)
        lines.append(f"{margin:>{margin_width}}  {address:#06x}  "
                     f"{format_instruction(instruction, address)}")
    return lines
