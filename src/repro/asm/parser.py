"""Line-oriented parser for CRISP assembly text.

Grammar (one statement per line, ``;`` or ``#`` start a comment):

.. code-block:: text

    label:                          ; define a code label
    .org 0x1000                     ; code base address
    .dataorg 0x8000                 ; data base address
    .entry main                     ; execution entry label
    .equ N, 1024                    ; assemble-time constant
    .word counter, 0                ; initialized data word(s)
    .reserve buffer, 16             ; reserve N zeroed words
    mnemonic operand, operand       ; an instruction

Operands: ``$imm`` (also ``$label`` for address-of), ``N(sp)``, ``*addr``,
a bare data symbol (direct memory), ``Accum`` and ``(Accum)``. Branches
take a label, ``*addr``, ``(*addr)`` (indirect absolute) or ``(N(sp))``
(indirect through the stack).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class AsmSyntaxError(ValueError):
    """Raised on malformed assembly text, with line information."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


@dataclass(frozen=True)
class OperandExpr:
    """Unresolved operand as written in the source.

    ``kind`` is one of ``imm``, ``imm_symbol``, ``abs``, ``symbol``,
    ``sp_off``, ``acc``, ``acc_ind``.
    """

    kind: str
    value: int = 0
    name: str | None = None


@dataclass(frozen=True)
class TargetExpr:
    """Unresolved branch target.

    ``kind`` is one of ``label``, ``abs``, ``ind_abs``, ``ind_sp``.
    """

    kind: str
    value: int = 0
    name: str | None = None


@dataclass
class Statement:
    """One parsed source statement."""

    line_no: int
    labels: list[str] = field(default_factory=list)
    directive: str | None = None
    directive_args: tuple = ()
    mnemonic: str | None = None
    operands: list[OperandExpr] = field(default_factory=list)
    target: TargetExpr | None = None


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_NUMBER_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_SP_OFF_RE = re.compile(r"^([+-]?(?:0[xX][0-9a-fA-F]+|\d+))\(sp\)$", re.IGNORECASE)
_IDENT_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_SYMBOL_OFF_RE = re.compile(
    r"^([A-Za-z_.$][\w.$]*)\s*([+-])\s*(0[xX][0-9a-fA-F]+|\d+)$")

BRANCH_MNEMONICS = {
    "jmp", "jmpl", "call",
    "iftjmpy", "iftjmpn", "iffjmpy", "iffjmpn",
    "iftjmply", "iftjmpln", "iffjmply", "iffjmpln",
}
"""Mnemonics whose operand is a control-flow target, not data."""


def _parse_number(text: str) -> int:
    return int(text, 0)


def parse_operand(text: str, line_no: int, line: str) -> OperandExpr:
    """Parse one data-operand expression."""
    text = text.strip()
    if not text:
        raise AsmSyntaxError("empty operand", line_no, line)
    lowered = text.lower()
    if lowered in ("accum", "acc"):
        return OperandExpr("acc")
    if _NUMBER_RE.match(text):
        # bare numbers are immediates, matching the paper's listings
        # (``add i,1``, ``cmp.s< i,1024``)
        return OperandExpr("imm", _parse_number(text))
    if lowered in ("(accum)", "(acc)"):
        return OperandExpr("acc_ind")
    if text.startswith("$"):
        body = text[1:]
        if _NUMBER_RE.match(body):
            return OperandExpr("imm", _parse_number(body))
        if _IDENT_RE.match(body):
            return OperandExpr("imm_symbol", name=body)
        raise AsmSyntaxError(f"bad immediate {text!r}", line_no, line)
    if text.startswith("*"):
        body = text[1:]
        if _NUMBER_RE.match(body):
            return OperandExpr("abs", _parse_number(body))
        raise AsmSyntaxError(f"bad absolute operand {text!r}", line_no, line)
    match = _SP_OFF_RE.match(text)
    if match:
        return OperandExpr("sp_off", _parse_number(match.group(1)))
    if _IDENT_RE.match(text):
        return OperandExpr("symbol", name=text)
    match = _SYMBOL_OFF_RE.match(text)
    if match:
        offset = _parse_number(match.group(3))
        if match.group(2) == "-":
            offset = -offset
        return OperandExpr("symbol_off", offset, match.group(1))
    raise AsmSyntaxError(f"bad operand {text!r}", line_no, line)


def parse_target(text: str, line_no: int, line: str) -> TargetExpr:
    """Parse one branch-target expression."""
    text = text.strip()
    if text.startswith("(") and text.endswith(")"):
        inner = text[1:-1].strip()
        if inner.startswith("*"):
            return TargetExpr("ind_abs", _parse_number(inner[1:]))
        match = _SP_OFF_RE.match(inner)
        if match:
            return TargetExpr("ind_sp", _parse_number(match.group(1)))
        raise AsmSyntaxError(f"bad indirect target {text!r}", line_no, line)
    if text.startswith("*"):
        return TargetExpr("abs", _parse_number(text[1:]))
    if _NUMBER_RE.match(text):
        return TargetExpr("abs", _parse_number(text))
    if _IDENT_RE.match(text):
        return TargetExpr("label", name=text)
    raise AsmSyntaxError(f"bad branch target {text!r}", line_no, line)


def _split_operands(text: str) -> list[str]:
    """Split an operand field on commas not inside parentheses."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def parse_line(line: str, line_no: int) -> Statement | None:
    """Parse one source line; return None for blank/comment-only lines."""
    code = re.split(r"[;#]", line, maxsplit=1)[0].rstrip()
    statement = Statement(line_no)
    text = code.lstrip()
    while True:
        match = _LABEL_RE.match(text)
        if not match:
            break
        statement.labels.append(match.group(1))
        text = text[match.end():].lstrip()
    if not text:
        return statement if statement.labels else None

    if text.startswith("."):
        fields = text.split(None, 1)
        statement.directive = fields[0][1:].lower()
        raw_args = _split_operands(fields[1]) if len(fields) > 1 else []
        statement.directive_args = tuple(raw_args)
        return statement

    fields = text.split(None, 1)
    mnemonic = fields[0].lower()
    statement.mnemonic = mnemonic
    rest = fields[1] if len(fields) > 1 else ""
    if mnemonic in BRANCH_MNEMONICS:
        if not rest.strip():
            raise AsmSyntaxError("branch needs a target", line_no, line)
        statement.target = parse_target(rest, line_no, line)
    else:
        statement.operands = [
            parse_operand(part, line_no, line) for part in _split_operands(rest)
        ]
    return statement


def parse_source(source: str) -> list[Statement]:
    """Parse a whole assembly source file into statements."""
    statements = []
    for line_no, line in enumerate(source.splitlines(), start=1):
        statement = parse_line(line, line_no)
        if statement is not None:
            statements.append(statement)
    return statements
