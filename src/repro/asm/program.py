"""Assembled program image.

A :class:`Program` is the interchange format between the assembler, the
compiler back end, and both simulators: a list of instructions with fixed
byte addresses, a symbol table, an initialized data image and an entry
point. :meth:`Program.parcel_image` renders the instruction stream to raw
16-bit parcels, which is what the cycle simulator's prefetch unit consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import encode_instruction
from repro.isa.instructions import Instruction
from repro.isa.parcels import PARCEL_BYTES

DEFAULT_CODE_BASE = 0x1000
DEFAULT_DATA_BASE = 0x8000
DEFAULT_STACK_TOP = 0x100000


@dataclass(frozen=True)
class DataItem:
    """One initialized or reserved word in the data segment."""

    address: int
    value: int
    name: str | None = None


@dataclass
class Program:
    """A fully laid-out program.

    ``instructions`` is address-ordered; each instruction's address is in
    ``addresses`` at the same index. ``symbols`` maps labels (code and
    data) to byte addresses. ``entry`` is the address execution starts at.
    """

    instructions: list[Instruction] = field(default_factory=list)
    addresses: list[int] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    data: list[DataItem] = field(default_factory=list)
    entry: int = DEFAULT_CODE_BASE
    code_base: int = DEFAULT_CODE_BASE
    stack_top: int = DEFAULT_STACK_TOP

    def __post_init__(self) -> None:
        if len(self.instructions) != len(self.addresses):
            raise ValueError("instructions and addresses must align")

    @property
    def code_end(self) -> int:
        """First byte address past the last instruction."""
        if not self.instructions:
            return self.code_base
        return self.addresses[-1] + self.instructions[-1].length_bytes()

    def instruction_at(self, address: int) -> Instruction:
        """Return the instruction whose first parcel is at ``address``."""
        index = self.index_of(address)
        if index is None:
            raise KeyError(f"no instruction at {address:#x}")
        return self.instructions[index]

    def index_of(self, address: int) -> int | None:
        """Return the instruction index at ``address`` (None if between)."""
        return self._address_index().get(address)

    def _address_index(self) -> dict[int, int]:
        cached = getattr(self, "_addr_index_cache", None)
        if cached is None or len(cached) != len(self.addresses):
            cached = {addr: i for i, addr in enumerate(self.addresses)}
            object.__setattr__(self, "_addr_index_cache", cached)
        return cached

    def parcel_image(self) -> dict[int, int]:
        """Render code to a map of byte address -> 16-bit parcel."""
        image: dict[int, int] = {}
        for address, instruction in zip(self.addresses, self.instructions):
            for i, parcel in enumerate(encode_instruction(instruction)):
                image[address + i * PARCEL_BYTES] = parcel
        return image

    def data_image(self) -> dict[int, int]:
        """Render the data segment to a map of byte address -> 32-bit word."""
        return {item.address: item.value for item in self.data}

    def symbol(self, name: str) -> int:
        """Look up a label's byte address."""
        return self.symbols[name]

    def listing(self) -> str:
        """Human-readable listing with addresses and label annotations."""
        by_address: dict[int, list[str]] = {}
        for name, address in self.symbols.items():
            by_address.setdefault(address, []).append(name)
        lines = []
        for address, instruction in zip(self.addresses, self.instructions):
            for name in sorted(by_address.get(address, ())):
                lines.append(f"{name}:")
            lines.append(f"  {address:#06x}  {instruction}")
        return "\n".join(lines)
