"""Two-pass assembler and disassembler for the CRISP-like ISA.

The assembler turns symbolic assembly text (the format used in the paper's
Table 3 listings — ``add sum,i``, ``cmp.= Accum,0``, ``iftjmpy _5``) into a
:class:`~repro.asm.program.Program`: a laid-out instruction image plus a
symbol table and initialized data, ready to load into either simulator.

Branch instructions are written with a single mnemonic per sense/prediction
(``iftjmpy label``); the assembler picks the one-parcel PC-relative or the
three-parcel absolute form automatically, iterating layout to a fixpoint
(short branches shrink the program, which can bring more branches into the
10-bit range).
"""

from repro.asm.assembler import AssemblyError, assemble
from repro.asm.program import Program, DataItem
from repro.asm.disassembler import disassemble, disassemble_one

__all__ = [
    "AssemblyError",
    "assemble",
    "Program",
    "DataItem",
    "disassemble",
    "disassemble_one",
]
