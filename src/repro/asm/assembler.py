"""The two-pass (iterate-to-fixpoint) assembler.

Layout subtlety: a branch to a label is one parcel when its displacement
fits the 10-bit PC-relative field, three parcels otherwise — but lengths
move label addresses, which move displacements. The assembler starts with
every label branch short and *stickily* promotes out-of-range branches to
the long form, re-laying-out until addresses stabilize. Promotion is
monotone, so the fixpoint always exists and is reached in at most one pass
per branch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.parser import (
    OperandExpr,
    Statement,
    TargetExpr,
    parse_source,
)
from repro.asm.program import (
    DEFAULT_CODE_BASE,
    DEFAULT_DATA_BASE,
    DEFAULT_STACK_TOP,
    DataItem,
    Program,
)
from repro.isa.instructions import BranchMode, BranchSpec, Instruction
from repro.isa.opcodes import (
    BranchKind,
    Opcode,
    long_condjmp_opcode,
    short_condjmp_opcode,
)
from repro.isa.operands import (
    Operand,
    absolute,
    acc,
    acc_ind,
    imm,
    sp_off,
)
from repro.isa.parcels import PARCEL_BYTES, fits_short_branch


class AssemblyError(ValueError):
    """Raised when a source program cannot be assembled."""


_PLAIN_MNEMONICS = {
    opcode.value: opcode
    for opcode in Opcode
    if opcode not in (
        Opcode.JMP, Opcode.JMPL, Opcode.CALL,
        Opcode.IFJMP_T_Y, Opcode.IFJMP_T_N, Opcode.IFJMP_F_Y, Opcode.IFJMP_F_N,
        Opcode.IFJMPL_T_Y, Opcode.IFJMPL_T_N,
        Opcode.IFJMPL_F_Y, Opcode.IFJMPL_F_N,
    )
}

_CONDJMP_MNEMONICS = {
    # mnemonic -> (sense, predicted_taken, force_long)
    "iftjmpy": (BranchKind.IF_TRUE, True, False),
    "iftjmpn": (BranchKind.IF_TRUE, False, False),
    "iffjmpy": (BranchKind.IF_FALSE, True, False),
    "iffjmpn": (BranchKind.IF_FALSE, False, False),
    "iftjmply": (BranchKind.IF_TRUE, True, True),
    "iftjmpln": (BranchKind.IF_TRUE, False, True),
    "iffjmply": (BranchKind.IF_FALSE, True, True),
    "iffjmpln": (BranchKind.IF_FALSE, False, True),
}


@dataclass
class _ProtoInstruction:
    """An instruction before branch-form selection and symbol resolution."""

    statement: Statement
    mnemonic: str
    labels: list[str]
    force_long: bool = False  # sticky short->long promotion


def assemble(source: str,
             code_base: int = DEFAULT_CODE_BASE,
             data_base: int = DEFAULT_DATA_BASE,
             stack_top: int = DEFAULT_STACK_TOP) -> Program:
    """Assemble ``source`` text into a :class:`Program`."""
    statements = parse_source(source)
    return _Assembler(statements, code_base, data_base, stack_top).run()


class _Assembler:
    def __init__(self, statements: list[Statement], code_base: int,
                 data_base: int, stack_top: int) -> None:
        self.statements = statements
        self.code_base = code_base
        self.data_base = data_base
        self.stack_top = stack_top
        self.entry_label: str | None = None
        self.equ: dict[str, int] = {}
        self.data_symbols: dict[str, int] = {}
        self.data: list[DataItem] = []
        self.protos: list[_ProtoInstruction] = []
        self.code_labels: dict[str, int] = {}

    # ---- driver ---------------------------------------------------------

    def run(self) -> Program:
        self._collect()
        self._layout_data()
        addresses = self._layout_code()
        instructions = [
            self._build(proto, address, addresses)
            for proto, address in zip(self.protos, addresses)
        ]
        self._build_data()
        symbols = dict(self.data_symbols)
        symbols.update(self.code_labels)
        entry = self.code_base
        if self.entry_label is not None:
            if self.entry_label not in self.code_labels:
                raise AssemblyError(f"entry label {self.entry_label!r} undefined")
            entry = self.code_labels[self.entry_label]
        return Program(
            instructions=instructions,
            addresses=addresses,
            symbols=symbols,
            data=self.data,
            entry=entry,
            code_base=self.code_base,
            stack_top=self.stack_top,
        )

    # ---- pass 1: directives and proto-instructions -----------------------

    def _collect(self) -> None:
        pending_labels: list[str] = []
        for statement in self.statements:
            labels = pending_labels + statement.labels
            pending_labels = []
            if statement.directive is not None:
                self._directive(statement, labels)
            elif statement.mnemonic is not None:
                self.protos.append(
                    _ProtoInstruction(statement, statement.mnemonic, labels))
            else:
                pending_labels = labels
        if pending_labels:
            # trailing labels name the end of the code segment
            self.protos.append(
                _ProtoInstruction(self.statements[-1], "nop", pending_labels))

    def _directive(self, statement: Statement, labels: list[str]) -> None:
        name = statement.directive
        args = statement.directive_args
        if labels:
            raise AssemblyError(
                f"line {statement.line_no}: labels cannot precede .{name}")
        if name == "org":
            self.code_base = self._number(args, 0, statement)
        elif name == "dataorg":
            self.data_base = self._number(args, 0, statement)
        elif name == "stack":
            self.stack_top = self._number(args, 0, statement)
        elif name == "entry":
            if len(args) != 1:
                raise AssemblyError(
                    f"line {statement.line_no}: .entry takes one label")
            self.entry_label = args[0]
        elif name == "equ":
            if len(args) != 2:
                raise AssemblyError(
                    f"line {statement.line_no}: .equ takes name, value")
            self.equ[args[0]] = int(args[1], 0)
        elif name == "word":
            if not args:
                raise AssemblyError(
                    f"line {statement.line_no}: .word takes name[, values]")
            # values may be numbers or label names (resolved after code
            # layout — how switch jump tables are built)
            values: list[int | str] = []
            for raw in args[1:]:
                try:
                    values.append(int(raw, 0))
                except ValueError:
                    values.append(raw)
            self._add_data(args[0], values or [0])
        elif name == "reserve":
            if len(args) != 2:
                raise AssemblyError(
                    f"line {statement.line_no}: .reserve takes name, nwords")
            self._add_data(args[0], [0] * int(args[1], 0))
        else:
            raise AssemblyError(
                f"line {statement.line_no}: unknown directive .{name}")

    @staticmethod
    def _number(args: tuple, index: int, statement: Statement) -> int:
        try:
            return int(args[index], 0)
        except (IndexError, ValueError) as exc:
            raise AssemblyError(
                f"line {statement.line_no}: bad directive argument") from exc

    def _add_data(self, name: str, values: list) -> None:
        if not hasattr(self, "_words"):
            self._words: list[tuple[str, list]] = []
        if any(name == existing for existing, _ in self._words):
            raise AssemblyError(f"duplicate data symbol {name!r}")
        self._words.append((name, values))

    def _layout_data(self) -> None:
        cursor = self.data_base
        for name, values in getattr(self, "_words", []):
            self.data_symbols[name] = cursor
            cursor += 4 * len(values)

    def _build_data(self) -> None:
        """Materialize data items, resolving label-valued words (only
        possible once code layout has bound every label)."""
        for name, values in getattr(self, "_words", []):
            cursor = self.data_symbols[name]
            for value in values:
                if isinstance(value, str):
                    if value in self.code_labels:
                        value = self.code_labels[value]
                    elif value in self.data_symbols:
                        value = self.data_symbols[value]
                    elif value in self.equ:
                        value = self.equ[value]
                    else:
                        raise AssemblyError(
                            f"undefined symbol {value!r} in .word {name}")
                self.data.append(DataItem(cursor, value & 0xFFFFFFFF, name))
                cursor += 4

    # ---- pass 2: iterative code layout ------------------------------------

    def _layout_code(self) -> list[int]:
        addresses = [self.code_base] * len(self.protos)
        for _ in range(len(self.protos) + 4):
            self._bind_labels(addresses)
            new_addresses, changed = [], False
            cursor = self.code_base
            for i, proto in enumerate(self.protos):
                new_addresses.append(cursor)
                if cursor != addresses[i]:
                    changed = True
                cursor += self._length_of(proto, cursor) * PARCEL_BYTES
            addresses = new_addresses
            if not changed:
                self._bind_labels(addresses)
                # final promotion check: a branch may have gone out of range
                # on the very last settle; verify all short branches fit
                if not self._promote_out_of_range(addresses):
                    return addresses
        raise AssemblyError("code layout failed to converge")

    def _bind_labels(self, addresses: list[int]) -> None:
        self.code_labels = {}
        for proto, address in zip(self.protos, addresses):
            for label in proto.labels:
                if label in self.code_labels or label in self.data_symbols:
                    raise AssemblyError(f"duplicate label {label!r}")
                self.code_labels[label] = address

    def _promote_out_of_range(self, addresses: list[int]) -> bool:
        promoted = False
        for proto, address in zip(self.protos, addresses):
            target = proto.statement.target
            if target is None or proto.force_long:
                continue
            if proto.mnemonic in ("jmpl", "call") or (
                    proto.mnemonic in _CONDJMP_MNEMONICS
                    and _CONDJMP_MNEMONICS[proto.mnemonic][2]):
                continue
            if target.kind == "label":
                label_address = self._label_address(target, proto.statement)
                if not fits_short_branch(label_address - address):
                    proto.force_long = True
                    promoted = True
            elif target.kind != "label":
                proto.force_long = True  # numeric / indirect: always long
        return promoted

    def _label_address(self, target: TargetExpr, statement: Statement) -> int:
        assert target.name is not None
        if target.name not in self.code_labels:
            raise AssemblyError(
                f"line {statement.line_no}: undefined label {target.name!r}")
        return self.code_labels[target.name]

    def _length_of(self, proto: _ProtoInstruction, address: int) -> int:
        target = proto.statement.target
        if target is not None:
            if proto.mnemonic in ("jmpl", "call"):
                return 3
            if proto.mnemonic in _CONDJMP_MNEMONICS and \
                    _CONDJMP_MNEMONICS[proto.mnemonic][2]:
                return 3
            if proto.force_long or target.kind != "label":
                return 3
            label_address = self.code_labels.get(target.name or "", address)
            return 1 if fits_short_branch(label_address - address) else 3
        return self._resolve_plain(proto).length_parcels()

    # ---- pass 3: final instruction construction ---------------------------

    def _build(self, proto: _ProtoInstruction, address: int,
               addresses: list[int]) -> Instruction:
        target = proto.statement.target
        if target is None:
            return self._resolve_plain(proto)
        return self._resolve_branch(proto, address, target)

    def _resolve_plain(self, proto: _ProtoInstruction) -> Instruction:
        statement = proto.statement
        opcode = _PLAIN_MNEMONICS.get(proto.mnemonic)
        if opcode is None:
            raise AssemblyError(
                f"line {statement.line_no}: unknown mnemonic {proto.mnemonic!r}")
        operands = tuple(
            self._resolve_operand(expr, statement) for expr in statement.operands)
        try:
            return Instruction(opcode, operands)
        except ValueError as exc:
            raise AssemblyError(f"line {statement.line_no}: {exc}") from exc

    def _resolve_operand(self, expr: OperandExpr,
                         statement: Statement) -> Operand:
        if expr.kind == "imm":
            return imm(expr.value)
        if expr.kind == "acc":
            return acc()
        if expr.kind == "acc_ind":
            return acc_ind()
        if expr.kind == "sp_off":
            if expr.value < 0:
                raise AssemblyError(
                    f"line {statement.line_no}: negative stack offset")
            return sp_off(expr.value)
        if expr.kind == "abs":
            return absolute(expr.value)
        if expr.kind == "imm_symbol":
            return imm(self._symbol_value(expr.name, statement))
        if expr.kind == "symbol_off":
            # data symbol plus a constant byte offset (array elements)
            return absolute(
                self._symbol_value(expr.name, statement) + expr.value)
        # bare symbol: equ constants become immediates, labels become
        # direct-memory operands
        assert expr.name is not None
        if expr.name in self.equ:
            return imm(self.equ[expr.name])
        return absolute(self._symbol_value(expr.name, statement))

    def _symbol_value(self, name: str | None, statement: Statement) -> int:
        assert name is not None
        for table in (self.equ, self.data_symbols, self.code_labels):
            if name in table:
                return table[name]
        raise AssemblyError(
            f"line {statement.line_no}: undefined symbol {name!r}")

    def _resolve_branch(self, proto: _ProtoInstruction, address: int,
                        target: TargetExpr) -> Instruction:
        statement = proto.statement
        mnemonic = proto.mnemonic

        if target.kind == "label":
            destination = self._label_address(target, statement)
            displacement = destination - address
            use_short = (not proto.force_long
                         and mnemonic not in ("jmpl", "call")
                         and not (mnemonic in _CONDJMP_MNEMONICS
                                  and _CONDJMP_MNEMONICS[mnemonic][2])
                         and fits_short_branch(displacement))
            if use_short:
                spec = BranchSpec(BranchMode.PC_RELATIVE, displacement)
            else:
                spec = BranchSpec(BranchMode.ABSOLUTE, destination)
        elif target.kind == "abs":
            spec = BranchSpec(BranchMode.ABSOLUTE, target.value)
        elif target.kind == "ind_abs":
            spec = BranchSpec(BranchMode.INDIRECT_ABS, target.value)
        else:
            spec = BranchSpec(BranchMode.INDIRECT_SP, target.value)

        short = spec.mode is BranchMode.PC_RELATIVE
        if mnemonic in ("jmp", "jmpl"):
            opcode = Opcode.JMP if short else Opcode.JMPL
        elif mnemonic == "call":
            opcode = Opcode.CALL
        elif mnemonic in _CONDJMP_MNEMONICS:
            sense, predicted, _ = _CONDJMP_MNEMONICS[mnemonic]
            opcode = (short_condjmp_opcode(sense, predicted) if short
                      else long_condjmp_opcode(sense, predicted))
        else:
            raise AssemblyError(
                f"line {statement.line_no}: unknown branch mnemonic {mnemonic!r}")
        try:
            return Instruction(opcode, (), spec)
        except ValueError as exc:
            raise AssemblyError(f"line {statement.line_no}: {exc}") from exc
