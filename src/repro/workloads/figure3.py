"""The paper's Figure-3 evaluation program.

Reproduced with the paper's obvious intent restored: Figure 3 declares
``int i, j, zeros, ones, sum;`` but then increments ``odd``/``even`` —
we use ``odd`` and ``even`` as the file-scope counters the loop bumps
(they must outlive the measurement to be inspectable, and the paper's own
Table 3 code addresses them like the other variables).

The ``if (i & 1)`` alternates true/false every iteration — deliberately
the worst case for every prediction scheme the paper measures — while the
loop-end branch is almost always taken. The loop count of 1024 amortizes
the ~50 cycles of call overhead, exactly as the paper notes.
"""

FIGURE3_LOOP_COUNT = 1024
"""Iterations of the Figure-3 loop (the paper's value)."""

FIGURE3 = """
int odd;
int even;

int main()
{
    int i, j, sum;

    j = sum = 0;

    for (i = 0; i < 1024; i++)
    {
        sum += i;
        if (i & 1)
            odd++;
        else
            even++;
        j = sum;
    }
    return j;
}
"""
"""Source text of the Figure-3 program."""
