"""Parametric workload generators.

Programs with *controlled* dynamic properties — branch density, taken
bias, working-set size — used by the benches that measure how folding's
benefit scales. The paper's core claim is quantitative: folding reduces
issued instructions "by the number of branches in that program", so the
speedup over a non-folding machine should approach
``1 / (1 - branch_fraction)`` as prediction costs vanish.

Every generator takes a ``seed``. Generation is a *pure function* of its
arguments — the seed perturbs emitted constants through a fixed linear
recurrence, never through global RNG state — so a (generator, seed) pair
produces byte-identical source in every process and in any call order.
That property is what lets the parallel sweep runner
(:mod:`repro.eval.parallel`) regenerate workloads inside worker processes
while staying bit-for-bit equal to a serial run.
"""

from __future__ import annotations


def _mix(seed: int, k: int, modulus: int) -> int:
    """Deterministic per-index constant stream: ``k`` scrambled by ``seed``.

    Plain arithmetic on the arguments (no RNG objects, no global state);
    ``seed=0`` degenerates to ``k % modulus``, the historical stream.
    """
    return (k * (1 + seed) + seed * 7919) % modulus


def branchy_loop(alu_per_branch: int, iterations: int = 400,
                 seed: int = 0) -> str:
    """A loop whose body has ``alu_per_branch`` ALU instructions per
    (folded, perfectly predicted) branch.

    The loop-end conditional is the only branch; the body is straight-
    line adds. Dynamic branch fraction ≈ 1 / (alu_per_branch + 3)
    (the +3: the compare, the index increment and the branch itself).
    """
    body = "\n            ".join(
        f"acc += {_mix(seed, k, 7)};" for k in range(alu_per_branch))
    return f"""
        int acc;

        int main()
        {{
            int i;
            for (i = 0; i < {iterations}; i++) {{
                {body}
            }}
            return acc;
        }}
    """


def biased_branches(taken_period: int, iterations: int = 500,
                    seed: int = 0) -> str:
    """A conditional taken once every ``taken_period`` iterations —
    sweeps prediction difficulty from always-biased to alternating
    (period 2). ``seed`` shifts the phase of the taken iterations
    (the taken *rate* is seed-independent)."""
    phase = seed % taken_period if taken_period else 0
    return f"""
        int rare; int common;

        int main()
        {{
            int i;
            for (i = 0; i < {iterations}; i++) {{
                if ((i + {phase}) % {taken_period} == 0)
                    rare++;
                else
                    common++;
            }}
            return rare * 1000 + common;
        }}
    """


def working_set(instructions: int, iterations: int = 60,
                seed: int = 0) -> str:
    """A loop body of roughly ``instructions`` one-parcel-ish
    instructions — sweeps the decoded-cache working set."""
    body = "\n            ".join(
        f"a{k % 4} += {_mix(seed, k, 5)};" for k in range(instructions))
    return f"""
        int a0; int a1; int a2; int a3;

        int main()
        {{
            int i;
            for (i = 0; i < {iterations}; i++) {{
                {body}
            }}
            return a0 + a1 + a2 + a3;
        }}
    """


def synthetic_suite(seed: int = 0) -> dict[str, "object"]:
    """Named synthetic workloads (``gen_*``) for sweep grids.

    Returns ``{name: WorkloadProgram}`` — the generated counterpart of
    :data:`repro.workloads.SUITE`. Same seed → same programs, regardless
    of which process builds them.
    """
    from repro.workloads.programs import WorkloadProgram
    sources = {
        "gen_branchy2": branchy_loop(2, seed=seed),
        "gen_branchy8": branchy_loop(8, seed=seed),
        "gen_biased5": biased_branches(5, seed=seed),
        "gen_alternating": biased_branches(2, seed=seed),
        "gen_workset24": working_set(24, seed=seed),
    }
    return {name: WorkloadProgram(
                name, f"synthetic workload (seed={seed})", source)
            for name, source in sources.items()}
