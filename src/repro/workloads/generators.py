"""Parametric workload generators.

Programs with *controlled* dynamic properties — branch density, taken
bias, working-set size — used by the benches that measure how folding's
benefit scales. The paper's core claim is quantitative: folding reduces
issued instructions "by the number of branches in that program", so the
speedup over a non-folding machine should approach
``1 / (1 - branch_fraction)`` as prediction costs vanish.
"""

from __future__ import annotations


def branchy_loop(alu_per_branch: int, iterations: int = 400) -> str:
    """A loop whose body has ``alu_per_branch`` ALU instructions per
    (folded, perfectly predicted) branch.

    The loop-end conditional is the only branch; the body is straight-
    line adds. Dynamic branch fraction ≈ 1 / (alu_per_branch + 3)
    (the +3: the compare, the index increment and the branch itself).
    """
    body = "\n            ".join(
        f"acc += {k % 7};" for k in range(alu_per_branch))
    return f"""
        int acc;

        int main()
        {{
            int i;
            for (i = 0; i < {iterations}; i++) {{
                {body}
            }}
            return acc;
        }}
    """


def biased_branches(taken_period: int, iterations: int = 500) -> str:
    """A conditional taken once every ``taken_period`` iterations —
    sweeps prediction difficulty from always-biased to alternating
    (period 2)."""
    return f"""
        int rare; int common;

        int main()
        {{
            int i;
            for (i = 0; i < {iterations}; i++) {{
                if (i % {taken_period} == 0)
                    rare++;
                else
                    common++;
            }}
            return rare * 1000 + common;
        }}
    """


def working_set(instructions: int, iterations: int = 60) -> str:
    """A loop body of roughly ``instructions`` one-parcel-ish
    instructions — sweeps the decoded-cache working set."""
    body = "\n            ".join(
        f"a{k % 4} += {k % 5};" for k in range(instructions))
    return f"""
        int a0; int a1; int a2; int a3;

        int main()
        {{
            int i;
            for (i = 0; i < {iterations}; i++) {{
                {body}
            }}
            return a0 + a1 + a2 + a3;
        }}
    """
