"""The mini-C workload suite.

Stand-ins for the paper's measured programs (see DESIGN.md,
"Substitutions"): re-implementations of the control-flow skeletons of the
small benchmarks the paper names (Puzzle, Dhrystone, Whetstone-as-integer)
plus general kernels that exercise every compiler and pipeline feature.
Each program finishes with a checksum in ``main``'s return value so the
simulators can be cross-checked.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadProgram:
    """One benchmark program."""

    name: str
    description: str
    source: str
    expected: int | None = None  #: checksum main() must return

    def compiled(self, options=None):
        """Compile this workload via the content-hash cache.

        Every caller asking for the same (source, options) pair — table
        generators, sweep grids, parallel workers — shares one compile
        (see :mod:`repro.sim.progcache`).
        """
        from repro.sim.progcache import compile_cached
        return compile_cached(self.source, options)


PUZZLE = WorkloadProgram(
    "puzzle",
    "Baskett's Puzzle skeleton: recursive exact-cover search over a "
    "1-D packing board (the paper's smallest Table-1 program).",
    """
int board[32];
int piece_size[3];
int placed[3];
int tries;

int fits(int pos, int size)
{
    int k;
    if (pos + size > 32) return 0;
    for (k = 0; k < size; k++)
        if (board[pos + k]) return 0;
    return 1;
}

void place(int pos, int size, int value)
{
    int k;
    for (k = 0; k < size; k++)
        board[pos + k] = value;
}

int solve(int piece)
{
    int pos;
    if (piece == 3) return 1;
    for (pos = 0; pos < 32; pos++) {
        tries++;
        if (fits(pos, piece_size[piece])) {
            place(pos, piece_size[piece], 1);
            placed[piece] = pos;
            if (solve(piece + 1)) return 1;
            place(pos, piece_size[piece], 0);
        }
    }
    return 0;
}

int main()
{
    int k, rounds, found;
    piece_size[0] = 5; piece_size[1] = 7; piece_size[2] = 9;
    found = 0;
    for (rounds = 0; rounds < 12; rounds++) {
        for (k = 0; k < 32; k++) board[k] = 0;
        /* pre-block a moving window to vary the search shape */
        for (k = 0; k < 5; k++) board[(rounds * 3 + k * 5) % 32] = 1;
        found += solve(0);
    }
    return tries + found * 100000;
}
""")


DHRY_LIKE = WorkloadProgram(
    "dhry_like",
    "Dhrystone-flavoured integer mix: call-heavy record/enumeration "
    "manipulation with biased and unbiased conditionals.",
    """
int int_glob;
int bool_glob;
int ch_1_glob;
int ch_2_glob;
int arr_1[50];
int arr_2[50];

int func_1(int ch_1, int ch_2)
{
    int ch_1_loc;
    ch_1_loc = ch_1;
    if (ch_1_loc != ch_2)
        return 0;
    ch_1_glob = ch_1_loc;
    return 1;
}

int func_2(int str_1, int str_2)
{
    int int_loc;
    int ch_loc;
    int_loc = 2;
    ch_loc = 'A';
    while (int_loc <= 2)
        if (func_1(ch_loc, 'C') == 0) {
            ch_loc = 'B';
            int_loc += 1;
        }
    if (str_1 > str_2) {
        int_loc += 7;
        int_glob = int_loc;
        return 1;
    }
    return 0;
}

int func_3(int enum_loc)
{
    if (enum_loc == 2)
        return 1;
    return 0;
}

void proc_7(int int_1, int int_2)
{
    int int_loc;
    int_loc = int_1 + 2;
    int_glob = int_2 + int_loc;
}

void proc_8(int index)
{
    int int_loc;
    int k;
    int_loc = index + 5;
    arr_1[int_loc] = index;
    arr_1[int_loc + 1] = arr_1[int_loc];
    arr_1[int_loc + 30] = int_loc;
    for (k = int_loc; k <= int_loc + 1; k++)
        arr_2[int_loc] += 1;
    arr_2[int_loc + 20] = arr_1[int_loc];
    int_glob = 5;
}

int main()
{
    int run_index;
    int int_1_loc, int_2_loc, int_3_loc;
    int checksum;

    checksum = 0;
    for (run_index = 1; run_index <= 300; run_index++) {
        int_1_loc = 2;
        int_2_loc = 3;
        bool_glob = func_2(int_1_loc, int_2_loc) == 0;
        while (int_1_loc < int_2_loc) {
            int_3_loc = 5 * int_1_loc - int_2_loc;
            proc_7(int_1_loc, int_3_loc);
            int_1_loc += 1;
        }
        proc_8(run_index % 10);
        if (func_3(run_index % 3))
            ch_2_glob = 'B';
        else
            ch_2_glob = 'A';
        checksum += int_glob + bool_glob + ch_2_glob + int_3_loc;
    }
    return checksum;
}
""")


CWHET_INT = WorkloadProgram(
    "cwhet_int",
    "Integer-scaled Whetstone skeleton: the classic module loops with "
    "fixed-point arithmetic standing in for floating point.",
    """
int e1[4];
int x, y, z, t;

void pa(int scale)
{
    int j;
    j = 0;
    do {
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * scale / 1000;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * scale / 1000;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * scale / 1000;
        e1[3] = (e1[0] + e1[1] + e1[2] + e1[3]) * scale / 1000;
        j += 1;
    } while (j < 6);
}

void p0(int scale)
{
    t = scale;
    e1[2] = e1[1];
    e1[1] = e1[0];
    e1[0] = e1[2];
}

void p3(int scale)
{
    x = scale * (x + y) / 1000;
    y = scale * (x + y) / 1000;
    z = (x + y) * scale / 1000;
}

int main()
{
    int i, n, checksum;

    checksum = 0;
    for (n = 0; n < 25; n++) {
        /* module 1: simple identifiers */
        x = 1000; y = -1000; z = -1000;
        for (i = 0; i < 10; i++) {
            x = (x + y + z) * 500 / 1000;
            y = (x + y - z) * 500 / 1000;
            z = (x - y + z) * 500 / 1000;
        }
        checksum += x + y + z;
        /* module 2: array elements */
        e1[0] = 1000; e1[1] = -1000; e1[2] = -1000; e1[3] = -1000;
        for (i = 0; i < 12; i++)
            pa(999);
        checksum += e1[3];
        /* module 6: integer arithmetic */
        for (i = 1; i <= 20; i++) {
            int j, k, l;
            j = 1; k = 2; l = 3;
            j = j * (k - j) * (l - k);
            k = l * k - (l - j) * k;
            l = (l - k) * (k + j);
            e1[3 - ((l - 2) % 4 + 4) % 4] = j + k + l;
            checksum += e1[2];
        }
        /* module 8: procedure calls */
        x = 100; y = 100; z = 100;
        for (i = 0; i < 15; i++)
            p3(995);
        checksum += z;
        /* module 11: standard functions stand-in */
        x = 75;
        for (i = 0; i < 10; i++)
            x = (x * x / 100) % 1000 + 1;
        checksum += x;
        p0(n);
        checksum += t;
    }
    return checksum;
}
""")


SORT = WorkloadProgram(
    "sort",
    "Quicksort + insertion sort over an LCG-generated array — "
    "data-dependent comparison branches.",
    """
int data[200];
int seed;

int next_random()
{
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    return seed % 1000;
}

void insertion_sort(int lo, int hi)
{
    int i, j, key;
    for (i = lo + 1; i <= hi; i++) {
        key = data[i];
        j = i - 1;
        while (j >= lo && data[j] > key) {
            data[j + 1] = data[j];
            j--;
        }
        data[j + 1] = key;
    }
}

void quicksort(int lo, int hi)
{
    int pivot, i, j, tmp;
    if (hi - lo < 8) {
        insertion_sort(lo, hi);
        return;
    }
    pivot = data[(lo + hi) / 2];
    i = lo; j = hi;
    while (i <= j) {
        while (data[i] < pivot) i++;
        while (data[j] > pivot) j--;
        if (i <= j) {
            tmp = data[i]; data[i] = data[j]; data[j] = tmp;
            i++; j--;
        }
    }
    if (lo < j) quicksort(lo, j);
    if (i < hi) quicksort(i, hi);
}

int main()
{
    int round, k, checksum, sorted;

    checksum = 0;
    seed = 42;
    for (round = 0; round < 5; round++) {
        for (k = 0; k < 200; k++) data[k] = next_random();
        quicksort(0, 199);
        sorted = 1;
        for (k = 1; k < 200; k++)
            if (data[k - 1] > data[k]) sorted = 0;
        checksum += sorted * 10000 + data[100];
    }
    return checksum;
}
""")


STRINGS = WorkloadProgram(
    "strings",
    "Byte-wise string kernels (copy, compare, search) over int arrays — "
    "heavily biased loop branches with early exits.",
    """
int text[256];
int pattern[8];
int scratch[256];

int str_copy(int n)
{
    int i;
    for (i = 0; i < n; i++)
        scratch[i] = text[i];
    return n;
}

int str_compare(int offset, int n)
{
    int i;
    for (i = 0; i < n; i++) {
        if (text[offset + i] < pattern[i]) return -1;
        if (text[offset + i] > pattern[i]) return 1;
    }
    return 0;
}

int str_search(int text_len, int pat_len)
{
    int pos, found;
    found = 0;
    for (pos = 0; pos + pat_len <= text_len; pos++)
        if (str_compare(pos, pat_len) == 0)
            found++;
    return found;
}

int main()
{
    int i, checksum;

    for (i = 0; i < 256; i++)
        text[i] = 'a' + (i * 7 + i / 13) % 26;
    for (i = 0; i < 8; i++)
        pattern[i] = text[100 + i];
    checksum = str_copy(256);
    checksum += str_search(256, 8) * 1000;
    checksum += str_search(256, 3) * 10;
    for (i = 0; i < 256; i++)
        checksum += scratch[i] == text[i];
    return checksum;
}
""")


MATRIX = WorkloadProgram(
    "matrix",
    "Small integer matrix multiply and row reduction — regular, highly "
    "predictable loop branches (the easy case for static bits).",
    """
int a[144];
int b[144];
int c[144];

int main()
{
    int i, j, k, n, acc, checksum;

    n = 12;
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++) {
            a[i * n + j] = (i + j) % 7 - 3;
            b[i * n + j] = (i * j) % 5 - 2;
        }
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++) {
            acc = 0;
            for (k = 0; k < n; k++)
                acc += a[i * n + k] * b[k * n + j];
            c[i * n + j] = acc;
        }
    checksum = 0;
    for (i = 0; i < n; i++)
        checksum += c[i * n + i];
    for (i = 1; i < n; i++)
        for (j = 0; j < n; j++)
            c[i * n + j] -= c[(i - 1) * n + j];
    for (i = 0; i < n * n; i++)
        checksum += c[i] & 15;
    return checksum;
}
""")


ALTERNATING = WorkloadProgram(
    "alternating",
    "Distilled Figure-3 behaviour: an if that alternates every iteration "
    "(static gets 50%, 1-bit dynamic gets 0%).",
    """
int odd;
int even;

int main()
{
    int i, sum, j;
    j = sum = 0;
    for (i = 0; i < 2048; i++) {
        sum += i;
        if (i & 1)
            odd++;
        else
            even++;
        j = sum;
    }
    return odd + even;
}
""")


SIEVE = WorkloadProgram(
    "sieve",
    "Sieve of Eratosthenes — the classic 1980s benchmark kernel; "
    "strongly biased inner-loop branches.",
    """
int flags[512];

int main()
{
    int i, k, count, iter;
    count = 0;
    for (iter = 0; iter < 5; iter++) {
        count = 0;
        for (i = 0; i < 512; i++) flags[i] = 1;
        for (i = 2; i < 512; i++) {
            if (flags[i]) {
                for (k = i + i; k < 512; k += i)
                    flags[k] = 0;
                count++;
            }
        }
    }
    return count;
}
""")


QUEENS = WorkloadProgram(
    "queens",
    "N-queens backtracking — deep recursion with data-dependent "
    "pruning branches.",
    """
int cols[8];
int diag1[16];
int diag2[16];
int solutions;
int nodes;

int place(int row)
{
    int col;
    if (row == 8) {
        solutions++;
        return 0;
    }
    for (col = 0; col < 8; col++) {
        nodes++;
        if (cols[col]) continue;
        if (diag1[row + col]) continue;
        if (diag2[row - col + 7]) continue;
        cols[col] = 1; diag1[row + col] = 1; diag2[row - col + 7] = 1;
        place(row + 1);
        cols[col] = 0; diag1[row + col] = 0; diag2[row - col + 7] = 0;
    }
    return 0;
}

int main()
{
    place(0);
    return solutions * 100000 + nodes % 100000;
}
""")


FIB_RECURSIVE = WorkloadProgram(
    "fib",
    "Naive recursive Fibonacci — call/return dominated (stresses the "
    "dynamic-target path and the three-parcel call format).",
    """
int calls;

int fib(int n)
{
    calls++;
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main()
{
    return fib(15) * 10000 + calls % 10000;
}
""")


COLLATZ = WorkloadProgram(
    "collatz",
    "Collatz trajectory lengths — an unpredictable data-dependent "
    "branch (odd/even on a pseudo-chaotic sequence).",
    """
int longest;
int total;

int steps(int n)
{
    int count;
    count = 0;
    while (n != 1) {
        if (n & 1)
            n = 3 * n + 1;
        else
            n = n / 2;
        count++;
    }
    return count;
}

int main()
{
    int n, length;
    longest = 0;
    total = 0;
    for (n = 1; n <= 120; n++) {
        length = steps(n);
        total += length;
        if (length > longest)
            longest = length;
    }
    return longest * 100000 + total;
}
""")


SUITE: dict[str, WorkloadProgram] = {
    program.name: program
    for program in (PUZZLE, DHRY_LIKE, CWHET_INT, SORT, STRINGS, MATRIX,
                    ALTERNATING, SIEVE, QUEENS, FIB_RECURSIVE, COLLATZ)
}
"""All workload programs by name."""


def get_workload(name: str) -> WorkloadProgram:
    """Look up a workload by name."""
    return SUITE[name]
