"""Mini-C workload programs.

``FIGURE3`` is the paper's evaluation program (Figure 3) — a 1024-iteration
loop whose ``if (i & 1)`` alternates every iteration, deliberately hard for
branch prediction. ``SUITE`` adds the benchmark-style programs used by the
Table-1 prediction study and the wider benches: re-implementations of the
control-flow skeletons of Puzzle, Dhrystone and (integer) Whetstone, plus
sorting/string/matrix kernels (see DESIGN.md "Substitutions").
"""

from repro.workloads.figure3 import FIGURE3, FIGURE3_LOOP_COUNT
from repro.workloads.generators import synthetic_suite
from repro.workloads.programs import SUITE, WorkloadProgram, get_workload

__all__ = [
    "FIGURE3",
    "FIGURE3_LOOP_COUNT",
    "SUITE",
    "WorkloadProgram",
    "get_workload",
    "resolve_source",
    "synthetic_suite",
]


def resolve_source(name: str, seed: int | None = None) -> str:
    """Workload name → mini-C source, uniformly across workload kinds.

    ``figure3``, any :data:`SUITE` name, or a ``gen_*`` synthetic
    workload (regenerated deterministically from ``seed``; see
    :func:`repro.workloads.generators.synthetic_suite`). Raises
    :class:`KeyError` for unknown names. Pure: any process resolving the
    same (name, seed) gets identical source — the contract the parallel
    sweep runner relies on.
    """
    if name == "figure3":
        return FIGURE3
    if name.startswith("gen_"):
        return synthetic_suite(seed or 0)[name].source
    return SUITE[name].source
