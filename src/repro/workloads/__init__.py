"""Mini-C workload programs.

``FIGURE3`` is the paper's evaluation program (Figure 3) — a 1024-iteration
loop whose ``if (i & 1)`` alternates every iteration, deliberately hard for
branch prediction. ``SUITE`` adds the benchmark-style programs used by the
Table-1 prediction study and the wider benches: re-implementations of the
control-flow skeletons of Puzzle, Dhrystone and (integer) Whetstone, plus
sorting/string/matrix kernels (see DESIGN.md "Substitutions").
"""

from repro.workloads.figure3 import FIGURE3, FIGURE3_LOOP_COUNT
from repro.workloads.programs import SUITE, WorkloadProgram, get_workload

__all__ = [
    "FIGURE3",
    "FIGURE3_LOOP_COUNT",
    "SUITE",
    "WorkloadProgram",
    "get_workload",
]
