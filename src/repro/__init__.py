"""Reproduction of *Branch Folding in the CRISP Microprocessor* (ISCA 1987).

Subpackages
-----------

``repro.isa``
    The CRISP-like instruction set: parcels, opcodes, operands, encoding.
``repro.asm``
    Two-pass assembler and disassembler.
``repro.lang``
    The mini-C compiler ("crispcc") with branch-spreading and static
    prediction-bit passes.
``repro.core``
    The paper's contribution: decoded-instruction form, fold policy and the
    Next-PC / Alternate Next-PC datapath.
``repro.sim``
    Functional (architectural) and cycle-accurate pipeline simulators.
``repro.predict``
    Branch-predictor zoo and the simultaneous-measurement harness.
``repro.baselines``
    VAX-like instruction-count baseline and a delayed-branch machine.
``repro.trace``
    Branch-trace capture and synthetic workload generators.
``repro.workloads``
    Mini-C benchmark programs, including the paper's Figure-3 loop.
``repro.eval``
    Harness that regenerates every table and figure in the paper.
"""

__version__ = "1.0.0"
