"""``crisp-eval``: print any reproduced table or figure.

``--json`` switches every exhibit to machine-readable output — one JSON
object per exhibit on stdout (see :mod:`repro.eval.jsonout`), diffable by
tooling the way the terminal tables are not.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.sim.semantics import SimulationHungError


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-eval",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "exhibit",
        choices=["table1", "table2", "table3", "table4", "dynfold",
                 "figures", "branch-stats", "report", "all"],
        help="which exhibit to regenerate ('report' renders everything "
             "as markdown; 'dynfold' compares static vs dynamic-"
             "confidence folding on the Table-4 cases)")
    parser.add_argument("--events", type=int, default=100_000,
                        help="synthetic-trace length for table1")
    parser.add_argument("--json", action="store_true",
                        help="emit each exhibit as one JSON object on "
                             "stdout instead of terminal tables")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for exhibits that run "
                             "many independent simulations (table4); "
                             "0 = one per CPU. Output is byte-identical "
                             "to a serial run")
    parser.add_argument("--engine",
                        choices=("fast", "blockspec", "batched"),
                        default="fast",
                        help="simulation tier for table4/dynfold "
                             "(blockspec JITs hot traces to generated "
                             "Python, batched runs the lock-step "
                             "campaign tier; exhibits are byte-"
                             "identical across all tiers)")
    parser.add_argument("--campaign-out", metavar="PREFIX", default=None,
                        help="record campaign telemetry for multi-"
                             "simulation exhibits (table4, dynfold): "
                             "writes PREFIX.json (campaign manifest), "
                             "PREFIX.jsonl (live stream for 'crisp-obs "
                             "tail') and PREFIX_trace.json (merged "
                             "Perfetto trace, one track per worker). "
                             "The exhibits themselves stay byte-"
                             "identical")
    args = parser.parse_args(argv)

    try:
        return _run(args)
    except SimulationHungError as exc:
        # a hung simulation is a hard failure, but the watchdog's
        # diagnostics (ring of PCs, hot fold sites) must reach the user
        print(f"crisp-eval: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    if args.exhibit == "report":
        from repro.eval.report import generate_report
        report = generate_report(args.events)
        if args.json:
            print(json.dumps({"exhibit": "report", "markdown": report}))
        else:
            print(report)
        return 0

    wanted = (["table1", "table2", "table3", "table4", "dynfold",
               "figures", "branch-stats"]
              if args.exhibit == "all" else [args.exhibit])

    # Campaign telemetry is out-of-band: the recorder observes the
    # parallel runner, exhibits on stdout stay byte-identical, and the
    # artefact paths go to stderr.
    recorder = stream = None
    if args.campaign_out is not None:
        from repro.obs.campaign import open_campaign
        expected = _expected_tasks(wanted)
        recorder, stream = open_campaign(
            f"crisp-eval {args.exhibit}", args.campaign_out,
            jobs=args.jobs, expected_tasks=expected)
    try:
        return _run_exhibits(args, wanted, recorder)
    finally:
        if recorder is not None:
            from repro.obs.campaign import close_campaign
            paths = close_campaign(recorder, stream, args.campaign_out)
            print(f"campaign artefacts: {paths['manifest']}, "
                  f"{paths['trace']}, {paths['stream']}",
                  file=sys.stderr)


def _expected_tasks(wanted: list[str]) -> int | None:
    """Parallel-runner task count for the requested exhibits, if known."""
    from repro.eval.table4 import CASE_DEFINITIONS, DYNFOLD_VARIANTS
    expected = 0
    if "table4" in wanted:
        expected += len(CASE_DEFINITIONS)
    if "dynfold" in wanted:
        expected += len(CASE_DEFINITIONS) * len(DYNFOLD_VARIANTS)
    return expected or None


def _run_exhibits(args: argparse.Namespace, wanted: list[str],
                  recorder=None) -> int:
    if args.json:
        from repro.eval.jsonout import exhibit_json
        for name in wanted:
            print(json.dumps(exhibit_json(name, args.events,
                                          jobs=args.jobs,
                                          recorder=recorder,
                                          engine=args.engine),
                             sort_keys=True))
        return 0

    if "table1" in wanted:
        from repro.eval.table1 import format_table1, run_table1
        print("== Table 1: prediction accuracies ==")
        print(format_table1(run_table1(args.events)))
        print()
    if "table2" in wanted:
        from repro.eval.table2 import format_table2, run_table2
        print("== Table 2: instruction counts (Figure-3 program) ==")
        print(format_table2(run_table2()))
        print()
    if "table3" in wanted:
        from repro.eval.table3 import format_table3, run_table3
        print("== Table 3: loop before/after Branch Spreading ==")
        print(format_table3(run_table3()))
        print()
    if "table4" in wanted:
        from repro.eval.table4 import format_table4, run_table4
        print("== Table 4: execution statistics, cases A-E ==")
        print(format_table4(run_table4(jobs=args.jobs,
                                       recorder=recorder,
                                       engine=args.engine)))
        print()
    if "dynfold" in wanted:
        from repro.eval.table4 import format_dynfold, run_dynfold
        print("== Dynamic-confidence folding on the Table-4 cases ==")
        print(format_dynfold(run_dynfold(jobs=args.jobs,
                                         recorder=recorder,
                                         engine=args.engine)))
        print()
    if "figures" in wanted:
        from repro.eval.figures import nextpc_datapath_cases, pipeline_structure
        print("== Figure 1: pipeline block activity ==")
        for report in pipeline_structure():
            print(f"  {report.block}: {report.activity}")
        print("== Figure 2: Next-PC datapath cases ==")
        for case in nextpc_datapath_cases():
            next_text = ("dynamic" if case.next_pc is None
                         else f"{case.next_pc:#x}")
            alt_text = "" if case.alt_pc is None else f" alt={case.alt_pc:#x}"
            print(f"  {case.description}: next={next_text}{alt_text} "
                  f"(adjust {case.adjust_parcels})")
        print()
    if "branch-stats" in wanted:
        from repro.eval.branch_stats import format_branch_stats, run_branch_stats
        print("== In-text branch statistics ==")
        print(format_branch_stats(run_branch_stats()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
