"""Evaluation harness: regenerates every table and figure in the paper.

One module per exhibit:

* :mod:`repro.eval.table1` — prediction-accuracy study (static vs 1/2/3
  bits of dynamic history over six workloads);
* :mod:`repro.eval.table2` — CRISP vs VAX dynamic opcode histograms for
  the Figure-3 program;
* :mod:`repro.eval.table3` — the Figure-3 loop before/after Branch
  Spreading;
* :mod:`repro.eval.table4` — execution statistics for cases A–E
  (folding × prediction × spreading) on the cycle-accurate machine;
* :mod:`repro.eval.figures` — the Figure-1 pipeline structure walk and
  the Figure-2 Next-PC datapath exercise;
* :mod:`repro.eval.branch_stats` — the in-text claims (one-parcel branch
  fraction, dynamic branch frequency).

``crisp-eval`` (see :mod:`repro.eval.cli`) prints any of them.
"""

from repro.eval.table1 import Table1Row, run_table1
from repro.eval.table2 import Table2Result, run_table2
from repro.eval.table3 import Table3Result, run_table3
from repro.eval.table4 import CASE_DEFINITIONS, Table4Row, run_table4
from repro.eval.branch_stats import BranchStatsRow, run_branch_stats

__all__ = [
    "Table1Row",
    "run_table1",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "run_table3",
    "CASE_DEFINITIONS",
    "Table4Row",
    "run_table4",
    "BranchStatsRow",
    "run_branch_stats",
]
