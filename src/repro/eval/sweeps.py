"""Design-space sweep framework.

Runs a grid of (workload × machine configuration) on the cycle-accurate
simulator and collects one row per point — the engine behind the
ablation benches and the design-space example. Compiled programs go
through the content-hash cache (:mod:`repro.sim.progcache`), so a sweep
recompiles nothing — neither within one grid nor across grids in the
same process.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.policy import FoldPolicy
from repro.lang import CompilerOptions
from repro.sim.cpu import CpuConfig
from repro.sim.progcache import compile_cached
from repro.sim.stats import PipelineStats


@dataclass(frozen=True)
class SweepPoint:
    """One (workload, configuration) measurement."""

    workload: str
    label: str
    config: CpuConfig
    stats: PipelineStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles


@dataclass
class Sweep:
    """A collection of sweep points with simple query helpers."""

    points: list[SweepPoint] = field(default_factory=list)

    def for_workload(self, name: str) -> list[SweepPoint]:
        return [p for p in self.points if p.workload == name]

    def by_label(self, label: str) -> list[SweepPoint]:
        return [p for p in self.points if p.label == label]

    def cycles_table(self) -> dict[str, dict[str, int]]:
        """{workload: {label: cycles}}."""
        table: dict[str, dict[str, int]] = {}
        for point in self.points:
            table.setdefault(point.workload, {})[point.label] = point.cycles
        return table

    def format(self) -> str:
        labels = sorted({p.label for p in self.points})
        width = max(len(label) for label in labels) + 2
        lines = ["workload".ljust(12)
                 + "".join(label.rjust(width) for label in labels)]
        for workload, row in sorted(self.cycles_table().items()):
            lines.append(workload.ljust(12) + "".join(
                str(row.get(label, "-")).rjust(width) for label in labels))
        return "\n".join(lines)


def _compiled(workload: str, spreading: bool, seed: int | None = None):
    from repro.workloads import resolve_source
    return compile_cached(resolve_source(workload, seed),
                          CompilerOptions(spreading=spreading))


def run_grid(workloads: Iterable[str],
             configs: dict[str, CpuConfig],
             spreading: bool = True,
             jobs: int | None = None,
             seed: int | None = None,
             engine: str = "fast") -> Sweep:
    """Run every workload under every named configuration.

    ``jobs`` fans the points out over worker processes (see
    :mod:`repro.eval.parallel`); results are merged in task order, so
    the sweep is identical to a serial run point for point. ``seed``
    feeds synthetic (``gen_*``) workload generation — carried inside
    each task, so parallel workers regenerate the exact programs the
    serial path compiles. ``engine`` selects the simulation tier for
    every point (stats are bit-identical across tiers).
    """
    from repro.eval.parallel import SweepTask, effective_jobs, \
        run_sweep_tasks
    if engine != "fast":
        configs = {label: dataclasses.replace(config, engine=engine)
                   for label, config in configs.items()}
    tasks = [SweepTask(workload, label, config, spreading, seed)
             for workload in workloads
             for label, config in configs.items()]
    if engine == "batched" and effective_jobs(jobs) == 1:
        # the lock-step grid: all points advance through one
        # BatchedSimulator (identical (program, config) points share a
        # cohort); bit-identical to per-point runs, so indistinguishable
        # from the serial and --jobs paths in the resulting Sweep
        return Sweep(points=_run_grid_batched(tasks))
    return Sweep(points=run_sweep_tasks(tasks, jobs))


def _run_grid_batched(tasks) -> list[SweepPoint]:
    """Run a grid's points as one lock-step batch (serial scheduler)."""
    from repro.sim.batched import BatchItem, run_batch
    from repro.workloads import resolve_source

    items = []
    for task in tasks:
        source = resolve_source(task.workload, task.seed)
        program = compile_cached(source,
                                 CompilerOptions(spreading=task.spreading))
        items.append(BatchItem(program, task.config))
    result = run_batch(items)
    by_index = {inst.index: inst for inst in result.instances}
    points = []
    for index, task in enumerate(tasks):
        inst = by_index[index]
        if inst.error is not None:
            raise inst.error
        points.append(SweepPoint(task.workload, task.label, task.config,
                                 inst.stats))
    return points


def icache_sweep(workloads: Iterable[str],
                 sizes: Iterable[int] = (8, 16, 32, 64, 128),
                 jobs: int | None = None,
                 engine: str = "fast") -> Sweep:
    """Decoded-instruction-cache size sweep (paper shipped 32 entries)."""
    return run_grid(workloads, {
        f"i{size}": CpuConfig(icache_entries=size) for size in sizes},
        jobs=jobs, engine=engine)


def latency_sweep(workloads: Iterable[str],
                  latencies: Iterable[int] = (1, 2, 4, 8),
                  jobs: int | None = None,
                  engine: str = "fast") -> Sweep:
    """Main-memory latency sweep (the decoded cache decouples the EU)."""
    return run_grid(workloads, {
        f"m{latency}": CpuConfig(mem_latency=latency)
        for latency in latencies}, jobs=jobs, engine=engine)


def fold_policy_sweep(workloads: Iterable[str],
                      jobs: int | None = None,
                      engine: str = "fast") -> Sweep:
    """The three fold policies over a set of workloads."""
    return run_grid(workloads, {
        "none": CpuConfig(fold_policy=FoldPolicy.none()),
        "crisp": CpuConfig(fold_policy=FoldPolicy.crisp()),
        "all": CpuConfig(fold_policy=FoldPolicy.fold_all()),
    }, jobs=jobs, engine=engine)
