"""Design-space sweep framework.

Runs a grid of (workload × machine configuration) on the cycle-accurate
simulator and collects one row per point — the engine behind the
ablation benches and the design-space example. Compiled programs are
cached per (workload, compiler options), so a sweep recompiles nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.policy import FoldPolicy
from repro.lang import CompilerOptions, compile_source
from repro.sim.cpu import CpuConfig, run_cycle_accurate
from repro.sim.stats import PipelineStats
from repro.workloads import get_workload


@dataclass(frozen=True)
class SweepPoint:
    """One (workload, configuration) measurement."""

    workload: str
    label: str
    config: CpuConfig
    stats: PipelineStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles


@dataclass
class Sweep:
    """A collection of sweep points with simple query helpers."""

    points: list[SweepPoint] = field(default_factory=list)

    def for_workload(self, name: str) -> list[SweepPoint]:
        return [p for p in self.points if p.workload == name]

    def by_label(self, label: str) -> list[SweepPoint]:
        return [p for p in self.points if p.label == label]

    def cycles_table(self) -> dict[str, dict[str, int]]:
        """{workload: {label: cycles}}."""
        table: dict[str, dict[str, int]] = {}
        for point in self.points:
            table.setdefault(point.workload, {})[point.label] = point.cycles
        return table

    def format(self) -> str:
        labels = sorted({p.label for p in self.points})
        width = max(len(label) for label in labels) + 2
        lines = ["workload".ljust(12)
                 + "".join(label.rjust(width) for label in labels)]
        for workload, row in sorted(self.cycles_table().items()):
            lines.append(workload.ljust(12) + "".join(
                str(row.get(label, "-")).rjust(width) for label in labels))
        return "\n".join(lines)


_program_cache: dict[tuple[str, bool], object] = {}


def _compiled(workload: str, spreading: bool):
    key = (workload, spreading)
    if key not in _program_cache:
        _program_cache[key] = compile_source(
            get_workload(workload).source,
            CompilerOptions(spreading=spreading))
    return _program_cache[key]


def run_grid(workloads: Iterable[str],
             configs: dict[str, CpuConfig],
             spreading: bool = True) -> Sweep:
    """Run every workload under every named configuration."""
    sweep = Sweep()
    for workload in workloads:
        program = _compiled(workload, spreading)
        for label, config in configs.items():
            stats = run_cycle_accurate(program, config).stats
            sweep.points.append(SweepPoint(workload, label, config, stats))
    return sweep


def icache_sweep(workloads: Iterable[str],
                 sizes: Iterable[int] = (8, 16, 32, 64, 128)) -> Sweep:
    """Decoded-instruction-cache size sweep (paper shipped 32 entries)."""
    return run_grid(workloads, {
        f"i{size}": CpuConfig(icache_entries=size) for size in sizes})


def latency_sweep(workloads: Iterable[str],
                  latencies: Iterable[int] = (1, 2, 4, 8)) -> Sweep:
    """Main-memory latency sweep (the decoded cache decouples the EU)."""
    return run_grid(workloads, {
        f"m{latency}": CpuConfig(mem_latency=latency)
        for latency in latencies})


def fold_policy_sweep(workloads: Iterable[str]) -> Sweep:
    """The three fold policies over a set of workloads."""
    return run_grid(workloads, {
        "none": CpuConfig(fold_policy=FoldPolicy.none()),
        "crisp": CpuConfig(fold_policy=FoldPolicy.crisp()),
        "all": CpuConfig(fold_policy=FoldPolicy.fold_all()),
    })
