"""Table 3: the Figure-3 loop before and after Branch Spreading.

The paper prints the loop body twice to show the code motion: without
spreading, ``cmp.= Accum,0`` abuts its conditional branch; with
spreading, three independent instructions (``add sum,i``, ``add i,1``,
``mov j,sum``) sit between them — two pulled up across the if/else join.
This module extracts the loop body from both compilations and computes
the compare→branch distances, which is what the paper's listing is
demonstrating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import CompilerOptions, compile_unit
from repro.lang.asmir import AsmModule
from repro.lang.passes.predict import PredictionMode, apply_prediction
from repro.workloads import FIGURE3


@dataclass
class Table3Result:
    """Loop listings and compare→branch gaps for both compilations."""

    unspread_listing: list[str]
    spread_listing: list[str]
    unspread_gaps: list[int]  #: instructions between each cmp and branch
    spread_gaps: list[int]

    @property
    def if_branch_spread_distance(self) -> int:
        """Distance achieved for the if-statement's compare (the paper
        moves three instructions in)."""
        return max(self.spread_gaps) if self.spread_gaps else 0


def _module(spreading: bool) -> AsmModule:
    module = compile_unit(FIGURE3, CompilerOptions(spreading=spreading))
    apply_prediction(module, PredictionMode.HEURISTIC)
    return module


def _gaps(module: AsmModule) -> list[int]:
    gaps = []
    for function in module.functions:
        instructions = function.instructions()
        for index, item in enumerate(instructions):
            if not item.is_conditional:
                continue
            cursor = index - 1
            while cursor >= 0 and not instructions[cursor].sets_flag:
                cursor -= 1
            if cursor >= 0:
                gaps.append(index - cursor - 1)
    return gaps


def _listing(module: AsmModule) -> list[str]:
    main = next(f for f in module.functions if f.name == "main")
    return [line.strip() for line in main.render()]


def run_table3() -> Table3Result:
    """Regenerate Table 3."""
    unspread = _module(spreading=False)
    spread = _module(spreading=True)
    return Table3Result(
        unspread_listing=_listing(unspread),
        spread_listing=_listing(spread),
        unspread_gaps=_gaps(unspread),
        spread_gaps=_gaps(spread),
    )


def format_table3(result: Table3Result) -> str:
    width = max(len(line) for line in result.unspread_listing) + 4
    lines = [f"{'without Branch Spreading':<{width}}with Branch Spreading"]
    for left, right in zip(
            result.unspread_listing + [""] * max(
                0, len(result.spread_listing) - len(result.unspread_listing)),
            result.spread_listing + [""] * max(
                0, len(result.unspread_listing) - len(result.spread_listing))):
        lines.append(f"{left:<{width}}{right}")
    lines.append("")
    lines.append(f"compare->branch gaps without spreading: "
                 f"{result.unspread_gaps}")
    lines.append(f"compare->branch gaps with spreading:    "
                 f"{result.spread_gaps}")
    return "\n".join(lines)
