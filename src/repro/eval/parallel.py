"""Parallel sweep runner: deterministic fan-out over worker processes.

Sweeps and table regeneration are embarrassingly parallel — every
(workload, configuration) point simulates independently — but
parallelism is only acceptable here if it is *invisible* in the output:
a run with ``--jobs 4`` must produce byte-identical tables, manifests
and JSON documents to the serial run. Three properties make that hold:

1. **Pure tasks.** A task is a small picklable description (workload
   *name*, config, seed) — never a live simulator. The worker rebuilds
   everything it needs from the description: sources resolve through
   :func:`repro.workloads.resolve_source` (a pure function of name and
   seed) and compile through the content-hash cache
   (:mod:`repro.sim.progcache`), so a worker's program is exactly the
   program the serial path would have built.
2. **Ordered merge.** Results come back via :meth:`Executor.map`, which
   yields in task-submission order regardless of completion order.
   Nothing downstream can observe scheduling.
3. **Per-task seeds.** Any randomness a task needs travels *in* the
   task. Workers never consult shared RNG state, so the fan-out degree
   cannot leak into results.

``jobs`` convention (shared by ``crisp-eval --jobs`` and
``crisp-obs run --jobs``): ``None``/``1`` = serial in-process, ``0`` =
one worker per CPU, ``N`` = at most N workers. The serial path runs the
same worker functions without a pool, so it is also the fallback when a
pool cannot start.

**Fault tolerance.** A long campaign must not be lost to one crashed or
hung worker. A task that raises — or whose worker process dies, which
surfaces as :class:`~concurrent.futures.process.BrokenProcessPool` — is
redispatched once, after an exponential backoff, into a *fresh* pool
(the broken one is unusable). The retry runs the identical task object,
so per-task seeds are preserved and a flaky-environment retry is
byte-identical to a first-try success. A task that fails again is
marked in the merged output as a :class:`TaskFailure` in its original
slot instead of aborting the whole campaign; callers decide whether a
marker is fatal. The no-failure fast path is exactly ``pool.map``, so
determinism is untouched.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.sim.cpu import CpuConfig

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


def effective_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: None → 1, 0 → cpu_count, N → N."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class TaskFailure:
    """Placeholder merged in place of a result when a task keeps failing.

    Carries enough to reproduce the failure: the original task (with its
    seed still inside), the last error rendered as text (exceptions from
    a dead worker process are not reliably picklable), and the attempt
    count. Callers check ``isinstance(result, TaskFailure)`` and decide
    whether one lost point is fatal for their report.
    """

    index: int  #: position in the submitted task list
    task: Any
    error: str
    attempts: int


#: Base delay (seconds) before redispatching a failed task; attempt *k*
#: waits ``RETRY_BACKOFF * 2**k``. Kept small: the common causes (a
#: worker OOM-killed, a transient fork failure) clear immediately.
RETRY_BACKOFF = 0.05

#: How many times a failed task is redispatched before it is marked.
RETRIES = 1


def _failure(index: int, task: Any, exc: BaseException,
             attempts: int) -> TaskFailure:
    return TaskFailure(index, task, f"{type(exc).__name__}: {exc}",
                       attempts)


def _serial_with_retry(worker: Callable[[_Task], _Result],
                       task_list: list[_Task]) -> list:
    results: list = []
    for index, task in enumerate(task_list):
        for attempt in range(RETRIES + 1):
            try:
                results.append(worker(task))
                break
            except Exception as exc:
                if attempt >= RETRIES:
                    results.append(_failure(index, task, exc, attempt + 1))
                else:
                    time.sleep(RETRY_BACKOFF * (2 ** attempt))
    return results


def map_ordered(worker: Callable[[_Task], _Result],
                tasks: Iterable[_Task],
                jobs: int | None = None) -> list[_Result]:
    """Apply ``worker`` to every task, results in task order.

    The parallel path and the serial path run the *same* worker
    function; only the transport differs. ``worker`` and each task must
    be picklable when ``jobs > 1`` (module-level functions and frozen
    dataclasses of primitives are safe).

    A task that raises or whose worker process dies is retried once in
    a fresh pool (see the module docstring); a persistent failure comes
    back as a :class:`TaskFailure` in the task's slot rather than an
    exception.
    """
    task_list = list(tasks)
    workers = min(effective_jobs(jobs), len(task_list))
    if workers <= 1:
        return _serial_with_retry(worker, task_list)
    results: list = [None] * len(task_list)
    pending: list[tuple[int, _Task]] = list(enumerate(task_list))
    for attempt in range(RETRIES + 1):
        failed: list[tuple[int, _Task, BaseException]] = []
        # A fresh pool per attempt: a BrokenProcessPool poisons every
        # outstanding future, so the retry cannot reuse it.
        with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))) as pool:
            futures = [(index, task, pool.submit(worker, task))
                       for index, task in pending]
            for index, task, future in futures:
                try:
                    results[index] = future.result()
                except Exception as exc:
                    failed.append((index, task, exc))
        if not failed:
            break
        if attempt >= RETRIES:
            for index, task, exc in failed:
                results[index] = _failure(index, task, exc, attempt + 1)
            break
        time.sleep(RETRY_BACKOFF * (2 ** attempt))
        pending = [(index, task) for index, task, _exc in failed]
    return results


# ---- sweep tasks -----------------------------------------------------------


@dataclass(frozen=True)
class SweepTask:
    """One picklable sweep point: everything a worker needs, by value."""

    workload: str  #: name resolvable by :func:`repro.workloads.resolve_source`
    label: str
    config: CpuConfig
    spreading: bool = True
    seed: int | None = None  #: synthetic-workload seed (``gen_*`` names)


def run_sweep_task(task: SweepTask):
    """Simulate one sweep point (the worker for sweep grids)."""
    from repro.eval.sweeps import SweepPoint
    from repro.lang import CompilerOptions
    from repro.sim.cpu import run_cycle_accurate
    from repro.sim.progcache import compile_cached
    from repro.workloads import resolve_source

    source = resolve_source(task.workload, task.seed)
    program = compile_cached(source,
                             CompilerOptions(spreading=task.spreading))
    stats = run_cycle_accurate(program, task.config).stats
    return SweepPoint(task.workload, task.label, task.config, stats)


def run_sweep_tasks(tasks: Sequence[SweepTask],
                    jobs: int | None = None) -> list[Any]:
    """Run sweep points (possibly in parallel), in task order."""
    return map_ordered(run_sweep_task, tasks, jobs)


# ---- Table-4 tasks ---------------------------------------------------------


def run_table4_case(task: tuple[str, str]):
    """Worker for one Table-4 case: ``(case_name, source)`` → stats."""
    from repro.eval.table4 import CASE_DEFINITIONS, run_case

    case_name, source = task
    case = next(c for c in CASE_DEFINITIONS if c.name == case_name)
    return run_case(case, source)
