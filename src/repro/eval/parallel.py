"""Parallel sweep runner: deterministic fan-out over worker processes.

Sweeps and table regeneration are embarrassingly parallel — every
(workload, configuration) point simulates independently — but
parallelism is only acceptable here if it is *invisible* in the output:
a run with ``--jobs 4`` must produce byte-identical tables, manifests
and JSON documents to the serial run. Three properties make that hold:

1. **Pure tasks.** A task is a small picklable description (workload
   *name*, config, seed) — never a live simulator. The worker rebuilds
   everything it needs from the description: sources resolve through
   :func:`repro.workloads.resolve_source` (a pure function of name and
   seed) and compile through the content-hash cache
   (:mod:`repro.sim.progcache`), so a worker's program is exactly the
   program the serial path would have built.
2. **Ordered merge.** Results come back via :meth:`Executor.map`, which
   yields in task-submission order regardless of completion order.
   Nothing downstream can observe scheduling.
3. **Per-task seeds.** Any randomness a task needs travels *in* the
   task. Workers never consult shared RNG state, so the fan-out degree
   cannot leak into results.

``jobs`` convention (shared by ``crisp-eval --jobs`` and
``crisp-obs run --jobs``): ``None``/``1`` = serial in-process, ``0`` =
one worker per CPU, ``N`` = at most N workers. The serial path runs the
same worker functions without a pool, so it is also the fallback when a
pool cannot start.

**Fault tolerance.** A long campaign must not be lost to one crashed or
hung worker. A task that raises — or whose worker process dies, which
surfaces as :class:`~concurrent.futures.process.BrokenProcessPool` — is
redispatched once, after an exponential backoff, into a *fresh* pool
(the broken one is unusable). The retry runs the identical task object,
so per-task seeds are preserved and a flaky-environment retry is
byte-identical to a first-try success. A task that fails again is
marked in the merged output as a :class:`TaskFailure` in its original
slot instead of aborting the whole campaign; callers decide whether a
marker is fatal. The no-failure fast path is exactly ``pool.map``, so
determinism is untouched.

**Campaign telemetry.** Pass a
:class:`~repro.obs.campaign.CampaignRecorder` and every task comes back
with an out-of-band :class:`TaskMeta` — in-worker wall-clock, worker
pid, compile-cache traffic, any spans the worker recorded via
:func:`repro.obs.spans.span` — which the scheduler folds into
:class:`~repro.obs.campaign.TaskRecord` entries (retry counts and
failure triage are added scheduler-side, where they are known). The
meta rides *alongside* the result in a :class:`_Envelope`, the result
itself is returned unchanged, and with no recorder the worker function
is not wrapped at all — so recording can never perturb the
byte-identical-output guarantee above.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.sim.cpu import CpuConfig

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


def effective_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: None → 1, 0 → cpu_count, N → N."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class TaskFailure:
    """Placeholder merged in place of a result when a task keeps failing.

    Carries enough to reproduce the failure serially: the original task
    (with its seed and arguments still inside), the last error rendered
    as text (exceptions from a dead worker process are not reliably
    picklable), the full traceback — for in-worker exceptions this
    includes the remote traceback :mod:`concurrent.futures` chains in —
    and the attempt count. Callers check
    ``isinstance(result, TaskFailure)`` and decide whether one lost
    point is fatal for their report.
    """

    index: int  #: position in the submitted task list
    task: Any
    error: str
    attempts: int
    traceback: str = ""  #: rendered exception chain (may be empty)


#: Base delay (seconds) before redispatching a failed task; attempt *k*
#: waits ``RETRY_BACKOFF * 2**k``. Kept small: the common causes (a
#: worker OOM-killed, a transient fork failure) clear immediately.
RETRY_BACKOFF = 0.05

#: How many times a failed task is redispatched before it is marked.
RETRIES = 1


def _failure(index: int, task: Any, exc: BaseException,
             attempts: int) -> TaskFailure:
    rendered = "".join(
        traceback_module.format_exception(type(exc), exc, exc.__traceback__))
    return TaskFailure(index, task, f"{type(exc).__name__}: {exc}",
                       attempts, traceback=rendered)


# ---- campaign instrumentation ----------------------------------------------


@dataclass
class TaskMeta:
    """Out-of-band measurements one instrumented task sends back."""

    pid: int
    started: float  #: epoch seconds at task start (in-worker clock)
    wall: float  #: in-worker execution seconds
    cache_hits: int  #: progcache hits (memory + disk) during the task
    cache_misses: int
    spans: list = field(default_factory=list)


@dataclass
class _Envelope:
    """An instrumented worker's return value: result + measurements."""

    result: Any
    meta: TaskMeta


class _Instrumented:
    """Picklable wrapper measuring one task inside the worker process.

    Activates a :class:`~repro.obs.spans.SpanRecorder` around the call
    so worker code using :func:`repro.obs.spans.span` contributes
    sub-spans, and snapshots the process-wide progcache counters to
    attribute cache traffic to the task. The wrapped result is returned
    untouched inside the envelope.
    """

    __slots__ = ("worker",)

    def __init__(self, worker: Callable[[Any], Any]) -> None:
        self.worker = worker

    def __call__(self, task: Any):
        from repro.obs import spans as spans_module
        from repro.sim.progcache import default_cache

        cache = default_cache()
        hits0 = cache.hits + cache.disk_hits
        misses0 = cache.misses
        recorder = spans_module.SpanRecorder()
        spans_module.activate(recorder)
        started = time.time()
        clock0 = time.perf_counter()
        try:
            result = self.worker(task)
        finally:
            spans_module.deactivate()
        wall = time.perf_counter() - clock0
        return _Envelope(result, TaskMeta(
            pid=os.getpid(), started=started, wall=wall,
            cache_hits=cache.hits + cache.disk_hits - hits0,
            cache_misses=cache.misses - misses0,
            spans=list(recorder.spans)))


def task_label(task: Any) -> str:
    """A short human-readable identity for a task record."""
    for attr in ("label", "name"):
        value = getattr(task, attr, None)
        if isinstance(value, str):
            return value
    text = repr(task)
    return text if len(text) <= 80 else text[:77] + "..."


def _record_success(recorder, labeler, index: int, task: Any,
                    envelope: _Envelope, retries: int) -> Any:
    """Unwrap an envelope, folding its meta into the campaign record."""
    from repro.obs.campaign import TaskRecord
    meta = envelope.meta
    recorder.task_done(TaskRecord(
        index=index, label=labeler(task), seed=getattr(task, "seed", None),
        worker=recorder.worker_slot(meta.pid), pid=meta.pid,
        started=meta.started, wall=meta.wall, retries=retries,
        cache_hits=meta.cache_hits, cache_misses=meta.cache_misses,
        spans=meta.spans))
    return envelope.result


def _record_failure(recorder, labeler, failure: TaskFailure) -> None:
    from repro.obs.campaign import TaskRecord
    recorder.task_done(TaskRecord(
        index=failure.index, label=labeler(failure.task),
        seed=getattr(failure.task, "seed", None),
        retries=failure.attempts - 1, failed=True,
        error=failure.error, traceback=failure.traceback))


def _serial_with_retry(worker: Callable[[_Task], _Result],
                       task_list: list[_Task],
                       recorder=None, labeler=task_label) -> list:
    run = _Instrumented(worker) if recorder is not None else worker
    results: list = []
    for index, task in enumerate(task_list):
        for attempt in range(RETRIES + 1):
            try:
                outcome = run(task)
            except Exception as exc:
                if attempt >= RETRIES:
                    failure = _failure(index, task, exc, attempt + 1)
                    if recorder is not None:
                        _record_failure(recorder, labeler, failure)
                    results.append(failure)
                else:
                    time.sleep(RETRY_BACKOFF * (2 ** attempt))
            else:
                if recorder is not None:
                    outcome = _record_success(recorder, labeler, index,
                                              task, outcome, attempt)
                results.append(outcome)
                break
    return results


def map_ordered(worker: Callable[[_Task], _Result],
                tasks: Iterable[_Task],
                jobs: int | None = None,
                recorder=None,
                labeler: Callable[[Any], str] = task_label) -> list[_Result]:
    """Apply ``worker`` to every task, results in task order.

    The parallel path and the serial path run the *same* worker
    function; only the transport differs. ``worker`` and each task must
    be picklable when ``jobs > 1`` (module-level functions and frozen
    dataclasses of primitives are safe).

    A task that raises or whose worker process dies is retried once in
    a fresh pool (see the module docstring); a persistent failure comes
    back as a :class:`TaskFailure` in the task's slot rather than an
    exception.

    ``recorder`` (a :class:`~repro.obs.campaign.CampaignRecorder`)
    turns on out-of-band campaign telemetry: tasks are wrapped in
    :class:`_Instrumented`, measurements are recorded scheduler-side
    and the returned results are bit-for-bit what an unrecorded run
    yields. ``labeler`` names tasks in the records.
    """
    task_list = list(tasks)
    workers = min(effective_jobs(jobs), len(task_list))
    if workers <= 1:
        return _serial_with_retry(worker, task_list, recorder, labeler)
    run = _Instrumented(worker) if recorder is not None else worker
    results: list = [None] * len(task_list)
    pending: list[tuple[int, _Task]] = list(enumerate(task_list))
    for attempt in range(RETRIES + 1):
        failed: list[tuple[int, _Task, BaseException]] = []
        # A fresh pool per attempt: a BrokenProcessPool poisons every
        # outstanding future, so the retry cannot reuse it.
        with ProcessPoolExecutor(
                max_workers=min(workers, len(pending))) as pool:
            futures = [(index, task, pool.submit(run, task))
                       for index, task in pending]
            for index, task, future in futures:
                try:
                    outcome = future.result()
                except Exception as exc:
                    failed.append((index, task, exc))
                else:
                    if recorder is not None:
                        # a task reaches round ``attempt`` only by
                        # failing that many times before
                        outcome = _record_success(recorder, labeler,
                                                  index, task, outcome,
                                                  attempt)
                    results[index] = outcome
        if not failed:
            break
        if attempt >= RETRIES:
            for index, task, exc in failed:
                failure = _failure(index, task, exc, attempt + 1)
                if recorder is not None:
                    _record_failure(recorder, labeler, failure)
                results[index] = failure
            break
        time.sleep(RETRY_BACKOFF * (2 ** attempt))
        pending = [(index, task) for index, task, _exc in failed]
    return results


# ---- sweep tasks -----------------------------------------------------------


@dataclass(frozen=True)
class SweepTask:
    """One picklable sweep point: everything a worker needs, by value."""

    workload: str  #: name resolvable by :func:`repro.workloads.resolve_source`
    label: str
    config: CpuConfig
    spreading: bool = True
    seed: int | None = None  #: synthetic-workload seed (``gen_*`` names)


def run_sweep_task(task: SweepTask):
    """Simulate one sweep point (the worker for sweep grids)."""
    from repro.eval.sweeps import SweepPoint
    from repro.lang import CompilerOptions
    from repro.sim.cpu import run_cycle_accurate
    from repro.sim.progcache import compile_cached
    from repro.workloads import resolve_source

    source = resolve_source(task.workload, task.seed)
    program = compile_cached(source,
                             CompilerOptions(spreading=task.spreading))
    stats = run_cycle_accurate(program, task.config).stats
    return SweepPoint(task.workload, task.label, task.config, stats)


def run_sweep_tasks(tasks: Sequence[SweepTask],
                    jobs: int | None = None) -> list[Any]:
    """Run sweep points (possibly in parallel), in task order."""
    return map_ordered(run_sweep_task, tasks, jobs)


# ---- Table-4 tasks ---------------------------------------------------------


def run_table4_case(task: tuple[str, str]):
    """Worker for one Table-4 case: ``(case_name, source)`` → stats,
    with an optional trailing engine element in the task tuple."""
    from repro.eval.table4 import CASE_DEFINITIONS, run_case

    case_name, source, *rest = task
    engine = rest[0] if rest else "fast"
    case = next(c for c in CASE_DEFINITIONS if c.name == case_name)
    return run_case(case, source, engine=engine)
