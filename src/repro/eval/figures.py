"""Figures 1 and 2: structural and datapath demonstrations.

Figure 1 is the block diagram (PDU → Decoded Instruction Cache → EU);
:func:`pipeline_structure` walks a short program through the simulator
and reports what each block did — the reproducible content of a diagram.

Figure 2 is the branch-folding datapath;
:func:`nextpc_datapath_cases` exercises every Next-PC source the figure
draws: sequential (PC + ilen), 32-bit specifier, and the 10-bit offset
through the ``tpcmx`` mux with branch adjust 0 / 1 / 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm import assemble
from repro.core.nextpc import branch_adjust, compute_next_pcs
from repro.isa import BranchMode, BranchSpec, Instruction, Opcode, imm, sp_off
from repro.isa.operands import absolute
from repro.sim.cpu import CrispCpu


@dataclass(frozen=True)
class BlockReport:
    """Activity of one Figure-1 block during a run."""

    block: str
    activity: dict


def pipeline_structure(source: str | None = None) -> list[BlockReport]:
    """Run a small program and report per-block activity (Figure 1)."""
    if source is None:
        source = """
            .word i, 0
loop:       add i, $1
            cmp.s< i, $7
            iftjmpy loop
            halt
        """
    cpu = CrispCpu(assemble(source))
    cpu.run()
    return [
        BlockReport("Prefetch and Decode Unit", {
            "memory_accesses": cpu.pdu.memory_accesses,
            "entries_decoded": cpu.pdu.decoded_entries,
        }),
        BlockReport("Decoded Instruction Cache", {
            "entries": cpu.icache.size,
            "hits": cpu.icache.hits,
            "misses": cpu.icache.misses,
        }),
        BlockReport("Execution Unit", {
            "cycles": cpu.stats.cycles,
            "issued": cpu.stats.issued_instructions,
            "executed": cpu.stats.executed_instructions,
            "folded_branches": cpu.stats.folded_branches,
        }),
    ]


@dataclass(frozen=True)
class NextPcCase:
    """One exercised leg of the Figure-2 datapath."""

    description: str
    entry_pc: int
    next_pc: int | None
    alt_pc: int | None
    adjust_parcels: int


def nextpc_datapath_cases() -> list[NextPcCase]:
    """Exercise every source of the Next-PC field (Figure 2)."""
    pc = 0x1000
    one_parcel = Instruction(Opcode.ADD, (sp_off(0), imm(1)))
    three_parcel = Instruction(Opcode.ADD, (absolute(0x8000), imm(1)))
    short_branch = Instruction(
        Opcode.IFJMP_T_Y, (), BranchSpec(BranchMode.PC_RELATIVE, 0x20))
    long_branch = Instruction(
        Opcode.JMPL, (), BranchSpec(BranchMode.ABSOLUTE, 0x4000))

    cases = []

    next_pc, alt = compute_next_pcs(pc, one_parcel, None,
                                    one_parcel.length_bytes())
    cases.append(NextPcCase("sequential: PDR.PC + ilen",
                            pc, next_pc, alt, 0))

    next_pc, alt = compute_next_pcs(pc, None, long_branch,
                                    long_branch.length_bytes())
    cases.append(NextPcCase("32-bit specifier from QB:QC parcels",
                            pc, next_pc, alt, 0))

    next_pc, alt = compute_next_pcs(pc, None, short_branch,
                                    short_branch.length_bytes())
    cases.append(NextPcCase(
        "10-bit offset from QA (unfolded, adjust 0)", pc, next_pc, alt, 0))

    length = one_parcel.length_bytes() + short_branch.length_bytes()
    next_pc, alt = compute_next_pcs(pc, one_parcel, short_branch, length)
    cases.append(NextPcCase(
        "10-bit offset from QB (folded after 1-parcel, adjust 1)",
        pc, next_pc, alt, branch_adjust(one_parcel)))

    length = three_parcel.length_bytes() + short_branch.length_bytes()
    next_pc, alt = compute_next_pcs(pc, three_parcel, short_branch, length)
    cases.append(NextPcCase(
        "10-bit offset from QD (folded after 3-parcel, adjust 3)",
        pc, next_pc, alt, branch_adjust(three_parcel)))

    ret = Instruction(Opcode.RETURN)
    next_pc, alt = compute_next_pcs(pc, None, ret, 2)
    cases.append(NextPcCase(
        "dynamic target (return: Next-PC from the stack at execute)",
        pc, next_pc, alt, 0))
    return cases
