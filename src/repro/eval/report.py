"""Full reproduction report: every exhibit, paper vs measured, as markdown.

``crisp-eval report`` (or :func:`generate_report`) reruns the whole
evaluation and emits a self-contained document — the machine-generated
counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.eval.branch_stats import (
    aggregate_one_parcel_fraction,
    run_branch_stats,
)
from repro.eval.table1 import PAPER_TABLE1, run_table1
from repro.eval.table2 import (
    PAPER_CRISP_COUNTS,
    PAPER_CRISP_TOTAL,
    PAPER_VAX_COUNTS,
    PAPER_VAX_TOTAL,
    run_table2,
)
from repro.eval.table3 import run_table3
from repro.eval.table4 import PAPER_TABLE4, run_table4


def generate_report(synthetic_events: int = 60_000) -> str:
    """Run every experiment and render a markdown report."""
    sections = [
        "# Reproduction report — Branch Folding in the CRISP "
        "Microprocessor (ISCA 1987)\n",
        _table1_section(synthetic_events),
        _table2_section(),
        _table3_section(),
        _table4_section(),
        _branch_stats_section(),
    ]
    return "\n".join(sections)


def _table1_section(synthetic_events: int) -> str:
    rows = run_table1(synthetic_events)
    lines = ["## Table 1 — prediction accuracies\n",
             "| program | static | 1-bit | 2-bit | 3-bit | paper "
             "(static/1b/2b/3b) | source |",
             "|---|---|---|---|---|---|---|"]
    for row in rows:
        paper = PAPER_TABLE1[row.program][:4]
        lines.append(
            f"| {row.program} | {row.static:.2f} | {row.dynamic1:.2f} | "
            f"{row.dynamic2:.2f} | {row.dynamic3:.2f} | "
            f"{'/'.join(f'{v:.2f}' for v in paper)} | {row.source} |")
    checks = []
    for row in rows:
        if row.source == "mini-C run":
            verdict = "yes" if row.static > row.dynamic1 else "NO"
            checks.append(f"- static beats 1-bit on {row.program}: "
                          f"**{verdict}**")
    return "\n".join(lines + [""] + checks) + "\n"


def _table2_section() -> str:
    result = run_table2()
    lines = ["## Table 2 — instruction counts (Figure-3 program)\n",
             f"- CRISP total: **{result.crisp.instructions}** "
             f"(paper {PAPER_CRISP_TOTAL})",
             f"- VAX total: **{result.vax.total_instructions}** "
             f"(paper {PAPER_VAX_TOTAL})\n",
             "| CRISP opcode | measured | paper |", "|---|---|---|"]
    grouped = result.crisp_grouped()
    for name, paper_count in PAPER_CRISP_COUNTS.items():
        lines.append(f"| {name} | {grouped.get(name, 0)} | {paper_count} |")
    lines += ["", "| VAX opcode | measured | paper |", "|---|---|---|"]
    for name, paper_count in PAPER_VAX_COUNTS.items():
        lines.append(f"| {name} | "
                     f"{result.vax.opcode_counts.get(name, 0)} | "
                     f"{paper_count} |")
    return "\n".join(lines) + "\n"


def _table3_section() -> str:
    result = run_table3()
    return (
        "## Table 3 — Branch Spreading\n\n"
        f"- compare→branch gaps before: {result.unspread_gaps}\n"
        f"- compare→branch gaps after: {result.spread_gaps}\n"
        f"- if-compare spread distance: "
        f"**{result.if_branch_spread_distance}** "
        f"(paper moves 3 instructions)\n"
    )


def _table4_section() -> str:
    rows = run_table4()
    lines = ["## Table 4 — cases A–E\n",
             "| case | cycles | paper | rel. perf | paper | issued CPI | "
             "apparent CPI |", "|---|---|---|---|---|---|---|"]
    for row in rows:
        paper = PAPER_TABLE4[row.case.name]
        lines.append(
            f"| {row.case.name} | {row.stats.cycles} | {paper[0]} | "
            f"{row.relative_performance:.2f} | {paper[2]} | "
            f"{row.stats.issued_cpi:.2f} | {row.stats.apparent_cpi:.2f} |")
    case_d = next(r for r in rows if r.case.name == "D")
    lines.append("")
    lines.append(f"Case D folds **{case_d.stats.folded_branches}** branches "
                 f"into zero time ({case_d.stats.apparent_ipc:.2f} apparent "
                 f"instructions per clock).")
    return "\n".join(lines) + "\n"


def _branch_stats_section() -> str:
    rows = run_branch_stats()
    fraction = aggregate_one_parcel_fraction(rows)
    lines = ["## In-text claims\n",
             f"- one-parcel branch fraction: **{100 * fraction:.1f}%** "
             f"(paper: ~95%)",
             f"- dynamic branch frequency band: "
             f"{100 * min(r.branch_fraction for r in rows):.1f}%–"
             f"{100 * max(r.branch_fraction for r in rows):.1f}% "
             f"(paper cites studies up to ~33%)"]
    return "\n".join(lines) + "\n"
