"""Table 2: dynamic instruction counts for the Figure-3 program.

The CRISP column comes from compiling Figure 3 with crispcc and running
it on the functional simulator; the VAX column from the VAX-like
code-generation count model. The paper's point — both machines execute
essentially the same number of instructions (~9.7k), so CRISP's win in
Table 4 is *not* from an instruction-count advantage — must survive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.vax import VaxRunResult, run_vax_model
from repro.lang import compile_source
from repro.sim.functional import run_program
from repro.sim.stats import ExecutionStats
from repro.workloads import FIGURE3

PAPER_CRISP_TOTAL = 9734
PAPER_VAX_TOTAL = 9736
PAPER_CRISP_COUNTS = {
    "add": 3072, "if-jump": 2048, "cmp": 2048, "move": 1027,
    "and": 1024, "jump": 513, "enter": 1, "return": 1,
}
PAPER_VAX_COUNTS = {
    "incl": 2048, "jbr": 1536, "movl": 1026, "cmpl": 1025, "jgeq": 1025,
    "addl2": 1024, "bitl": 1024, "jeql": 1024, "clrl": 2, "ret": 1,
    "subl2": 1,
}


@dataclass
class Table2Result:
    """Both opcode histograms for the Figure-3 program."""

    crisp: ExecutionStats
    vax: VaxRunResult

    def crisp_grouped(self) -> dict[str, int]:
        """CRISP counts grouped into the paper's categories (all compare
        conditions as ``cmp``, all conditional jumps as ``if-jump``)."""
        grouped: dict[str, int] = {}
        for name, count in self.crisp.opcode_counts.items():
            if name.startswith("cmp."):
                key = "cmp"
            elif "jmp" in name and name != "jmp":
                key = "if-jump"
            elif name == "jmp":
                key = "jump"
            elif name == "mov":
                key = "move"
            elif name.endswith("3"):
                key = name[:-1]  # the paper groups and3 under "and"
            else:
                key = name
            grouped[key] = grouped.get(key, 0) + count
        return grouped


def run_table2() -> Table2Result:
    """Regenerate Table 2."""
    crisp_program = compile_source(FIGURE3)
    crisp = run_program(crisp_program).stats
    vax = run_vax_model(FIGURE3)
    return Table2Result(crisp, vax)


def format_table2(result: Table2Result) -> str:
    lines = [f"CRISP: {result.crisp.instructions} instructions "
             f"(paper: {PAPER_CRISP_TOTAL})"]
    for name, count in sorted(result.crisp_grouped().items(),
                              key=lambda kv: -kv[1]):
        percent = 100 * count / result.crisp.instructions
        paper = PAPER_CRISP_COUNTS.get(name, "-")
        lines.append(f"  {name:<10} {count:>6} {percent:6.2f}%   "
                     f"paper: {paper}")
    lines.append(f"VAX:   {result.vax.total_instructions} instructions "
                 f"(paper: {PAPER_VAX_TOTAL})")
    for name, count, percent in result.vax.table():
        paper = PAPER_VAX_COUNTS.get(name, "-")
        lines.append(f"  {name:<10} {count:>6} {percent:6.2f}%   "
                     f"paper: {paper}")
    return "\n".join(lines)
