"""Table 4: execution statistics for cases A–E.

The paper's headline experiment: the Figure-3 program run five ways,
selectively enabling Branch Folding (hardware), Branch Prediction
(the compiler's bit setting) and Branch Spreading (compiler code
motion). Case D — everything on — reaches 1.01 cycles per *issued*
instruction while appearing to execute 1.35 instructions per clock,
i.e. all branches run in zero time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import FoldPolicy
from repro.lang import CompilerOptions, PredictionMode
from repro.sim.cpu import CpuConfig, run_cycle_accurate
from repro.sim.progcache import compile_cached
from repro.sim.stats import PipelineStats
from repro.workloads import FIGURE3


@dataclass(frozen=True)
class CaseDefinition:
    """One Table-4 row's configuration."""

    name: str
    folding: bool
    prediction: bool  #: False = case A's all-not-taken bit setting
    spreading: bool


CASE_DEFINITIONS = (
    CaseDefinition("A", folding=False, prediction=False, spreading=False),
    CaseDefinition("B", folding=False, prediction=True, spreading=False),
    CaseDefinition("C", folding=True, prediction=True, spreading=False),
    CaseDefinition("D", folding=True, prediction=True, spreading=True),
    CaseDefinition("E", folding=False, prediction=True, spreading=True),
)

PAPER_TABLE4 = {
    "A": (14422, 9734, 1.0, 1.48, 1.48),
    "B": (11359, 9734, 1.3, 1.16, 1.16),
    "C": (8789, 7174, 1.6, 1.22, 0.90),
    "D": (7250, 7174, 2.0, 1.01, 0.74),
    "E": (9815, 9734, 1.5, 1.01, 1.01),
}
"""Paper rows: (cycles, issued, relative perf, issued CPI, apparent CPI)."""


@dataclass
class Table4Row:
    """One measured case."""

    case: CaseDefinition
    stats: PipelineStats
    relative_performance: float = 0.0

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def case_program_config(case: CaseDefinition, source: str = FIGURE3,
                        engine: str = "fast"):
    """Compile ``source`` for one Table-4 configuration.

    Returns ``(program, config)`` so callers can choose how to run it
    (plain, traced, or with per-site attribution attached). Compilation
    goes through :mod:`repro.sim.progcache`, so running all five cases
    compiles each distinct (source, options) pair once. ``engine``
    selects the simulation tier (both tiers are bit-identical in every
    exhibit; blockspec is just faster).
    """
    options = CompilerOptions(
        spreading=case.spreading,
        prediction=(PredictionMode.HEURISTIC if case.prediction
                    else PredictionMode.NOT_TAKEN))
    program = compile_cached(source, options)
    config = CpuConfig(fold_policy=(FoldPolicy.crisp() if case.folding
                                    else FoldPolicy.none()),
                       engine=engine)
    return program, config


def run_case(case: CaseDefinition, source: str = FIGURE3,
             engine: str = "fast") -> PipelineStats:
    """Run one Table-4 configuration on the cycle-accurate machine."""
    program, config = case_program_config(case, source, engine=engine)
    return run_cycle_accurate(program, config).stats


def run_table4(source: str = FIGURE3,
               jobs: int | None = None,
               recorder=None,
               engine: str = "fast") -> list[Table4Row]:
    """Regenerate Table 4 (case A is the performance reference).

    ``jobs`` runs the five cases in worker processes (ordered merge,
    byte-identical rows — see :mod:`repro.eval.parallel`). ``recorder``
    (a :class:`~repro.obs.campaign.CampaignRecorder`) collects
    out-of-band per-case telemetry without touching the rows.
    """
    from repro.eval.parallel import map_ordered, run_table4_case
    stats_list = map_ordered(run_table4_case,
                             [(case.name, source, engine)
                              for case in CASE_DEFINITIONS], jobs,
                             recorder=recorder,
                             labeler=lambda task: f"table4/{task[0]}")
    rows = [Table4Row(case, stats)
            for case, stats in zip(CASE_DEFINITIONS, stats_list)]
    reference = rows[0].stats.cycles
    for row in rows:
        row.relative_performance = reference / row.stats.cycles
    return rows


DYNFOLD_VARIANTS: tuple[tuple[str, int | None], ...] = (
    ("static", None),
    ("dyn-conf1", 1),
    ("dyn-conf2", 2),
    ("dyn-conf3", 3),
)
"""Per-case hardware variants for the dynfold exhibit: the case's own
static policy, then dynamic-confidence conditional folding at each
engagement threshold."""


@dataclass
class DynfoldRow:
    """One dynfold-exhibit point: a Table-4 case under one fold policy.

    ``static`` keeps the case's own hardware (CRISP folding for C/D,
    none for A/B/E); ``dyn-confN`` swaps in
    :meth:`FoldPolicy.dynamic(confidence=N) <FoldPolicy.dynamic>` —
    which implies the CRISP fold classes — on the *same compiled
    program*, so within a case the rows isolate what
    dynamic-confidence folding buys over that case's software setting.
    """

    case: CaseDefinition
    label: str
    confidence: int | None  #: ``None`` = the case's own static policy
    stats: PipelineStats
    relative_performance: float = 0.0  #: vs the case's static row


def dynfold_case_config(case: CaseDefinition, confidence: int | None,
                        source: str = FIGURE3, engine: str = "fast"):
    """Compile one Table-4 case and pick the variant's fold policy.

    Dynamic-fold configurations always run the plain stepping loop
    (the blockspec tier deopts on dynamic policies), so ``engine``
    only affects the ``static`` variant — but it is threaded through
    anyway so a ``--engine`` run is uniformly configured.
    """
    program, config = case_program_config(case, source, engine=engine)
    if confidence is None:
        return program, config
    return program, CpuConfig(
        fold_policy=FoldPolicy.dynamic(confidence=confidence),
        engine=engine)


def run_dynfold_point(task: tuple[str, str, int | None, str]):
    """Worker for one dynfold point: ``(case, label, confidence, src)``
    with an optional trailing engine element."""
    case_name, _label, confidence, source, *rest = task
    engine = rest[0] if rest else "fast"
    case = next(c for c in CASE_DEFINITIONS if c.name == case_name)
    program, config = dynfold_case_config(case, confidence, source,
                                          engine=engine)
    return run_cycle_accurate(program, config).stats


def run_dynfold(source: str = FIGURE3,
                jobs: int | None = None,
                recorder=None,
                engine: str = "fast") -> list[DynfoldRow]:
    """Run the dynamic-fold exhibit over every Table-4 case."""
    from repro.eval.parallel import map_ordered
    grid = [(case, label, confidence)
            for case in CASE_DEFINITIONS
            for label, confidence in DYNFOLD_VARIANTS]
    stats_list = map_ordered(
        run_dynfold_point,
        [(case.name, label, confidence, source, engine)
         for case, label, confidence in grid], jobs,
        recorder=recorder,
        labeler=lambda task: f"dynfold/{task[0]}/{task[1]}")
    rows = [DynfoldRow(case, label, confidence, stats)
            for (case, label, confidence), stats in zip(grid, stats_list)]
    reference = {row.case.name: row.stats.cycles
                 for row in rows if row.confidence is None}
    for row in rows:
        row.relative_performance = reference[row.case.name] \
            / row.stats.cycles
    return rows


def format_dynfold(rows: list[DynfoldRow]) -> str:
    lines = [
        f"{'Case':<5}{'Variant':<11}{'Conf':<6}{'Cycles':>8}{'iCPI':>7}"
        f"{'DynFold':>9}{'Mispred':>9}{'RecCyc':>8}{'RelPerf':>9}",
    ]
    for row in rows:
        stats = row.stats
        lines.append(
            f"{row.case.name:<5}{row.label:<11}"
            f"{'-' if row.confidence is None else row.confidence:<6}"
            f"{stats.cycles:>8}{stats.issued_cpi:>7.2f}"
            f"{stats.dynamic_folds:>9}{stats.folded_mispredicts:>9}"
            f"{stats.recovery_flush_cycles:>8}"
            f"{row.relative_performance:>9.2f}")
    return "\n".join(lines)


def format_table4(rows: list[Table4Row]) -> str:
    lines = [
        f"{'Case':<5}{'Fold':<6}{'Pred':<6}{'Sprd':<6}{'Cycles':>8}"
        f"{'Issued':>8}{'RelPerf':>9}{'iCPI':>7}{'aCPI':>7}   paper",
    ]
    for row in rows:
        case, stats = row.case, row.stats
        paper = PAPER_TABLE4[case.name]
        lines.append(
            f"{case.name:<5}"
            f"{'yes' if case.folding else 'no':<6}"
            f"{'yes' if case.prediction else 'no':<6}"
            f"{'yes' if case.spreading else 'no':<6}"
            f"{stats.cycles:>8}{stats.issued_instructions:>8}"
            f"{row.relative_performance:>9.2f}"
            f"{stats.issued_cpi:>7.2f}{stats.apparent_cpi:>7.2f}"
            f"   {paper}")
    return "\n".join(lines)
