"""Table 1: accuracies of branch prediction techniques.

Six workloads, four schemes (optimal static bit; 1, 2 and 3 bits of
dynamic history with an infinite table). The three large programs the
paper measured (troff, the C compiler, a VLSI DRC) are substituted by
calibrated synthetic traces; the three benchmarks (Dhrystone, Cwhet,
Puzzle) run for real as mini-C re-implementations on the functional
simulator, measured in situ exactly as the paper did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import compile_source
from repro.predict.harness import PredictionStudy, measure_predictors
from repro.trace.synthetic import synthetic_workloads
from repro.workloads import get_workload

PAPER_TABLE1 = {
    "troff": (0.94, 0.93, 0.95, 0.95, 22_000_000),
    "ccom": (0.74, 0.77, 0.77, 0.74, 1_500_000),
    "vlsi_drc": (0.89, 0.95, 0.95, 0.95, 38_000_000),
    "dhry_like": (0.86, 0.72, 0.79, 0.79, 1_500_000),
    "cwhet_int": (0.84, 0.68, 0.79, 0.79, 33_550),
    "puzzle": (0.92, 0.87, 0.87, 0.87, 10_741),
}
"""The paper's Table-1 rows: (static, 1-bit, 2-bit, 3-bit, branches)."""

SYNTHETIC_NAMES = ("troff", "ccom", "vlsi_drc")
REAL_NAMES = ("dhry_like", "cwhet_int", "puzzle")


@dataclass(frozen=True)
class Table1Row:
    """One measured workload row."""

    program: str
    static: float
    dynamic1: float
    dynamic2: float
    dynamic3: float
    branches: int
    source: str  #: "synthetic trace" or "mini-C run"

    def accuracies(self) -> tuple[float, float, float, float]:
        return (self.static, self.dynamic1, self.dynamic2, self.dynamic3)


def run_table1(synthetic_events: int = 100_000,
               seed: int = 1987) -> list[Table1Row]:
    """Regenerate Table 1. ``synthetic_events`` bounds each synthetic
    trace (the paper ran tens of millions of branches; accuracy estimates
    stabilize far earlier)."""
    rows: list[Table1Row] = []
    for name, workload in synthetic_workloads().items():
        study = PredictionStudy()
        study.observe_all(workload.generate(synthetic_events, seed))
        rows.append(_row(name, study, "synthetic trace"))
    for name in REAL_NAMES:
        program = compile_source(get_workload(name).source)
        study = measure_predictors(program)
        rows.append(_row(name, study, "mini-C run"))
    return rows


def _row(name: str, study: PredictionStudy, source: str) -> Table1Row:
    static, one, two, three = study.row()
    return Table1Row(name, static, one, two, three, study.events, source)


def format_table1(rows: list[Table1Row]) -> str:
    """Render rows the way the paper prints Table 1."""
    lines = [
        f"{'Program':<12} {'static':>7} {'1-bit':>7} {'2-bit':>7} "
        f"{'3-bit':>7} {'branches':>10}  source",
    ]
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.static:7.2f} {row.dynamic1:7.2f} "
            f"{row.dynamic2:7.2f} {row.dynamic3:7.2f} {row.branches:>10}"
            f"  {row.source}")
    return "\n".join(lines)
