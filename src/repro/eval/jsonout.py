"""Machine-readable views of every reproduced exhibit.

``crisp-eval <exhibit> --json`` prints one JSON object per exhibit so
tooling can diff reproduced numbers across runs (the same motivation as
the :mod:`repro.obs.manifest` run documents — these are the evaluation-
layer equivalent). Each document carries ``exhibit`` plus the measured
rows and, where the paper states them, the paper's numbers.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any


def table1_json(synthetic_events: int) -> dict[str, Any]:
    from repro.eval.table1 import PAPER_TABLE1, run_table1
    rows = []
    for row in run_table1(synthetic_events):
        data = asdict(row)
        data["paper"] = PAPER_TABLE1[row.program]
        rows.append(data)
    return {"exhibit": "table1", "rows": rows}


def table2_json() -> dict[str, Any]:
    from repro.eval.table2 import (
        PAPER_CRISP_COUNTS,
        PAPER_CRISP_TOTAL,
        PAPER_VAX_COUNTS,
        PAPER_VAX_TOTAL,
        run_table2,
    )
    result = run_table2()
    return {
        "exhibit": "table2",
        "crisp": {"total": result.crisp.instructions,
                  "paper_total": PAPER_CRISP_TOTAL,
                  "grouped_counts": result.crisp_grouped(),
                  "paper_counts": dict(PAPER_CRISP_COUNTS)},
        "vax": {"total": result.vax.total_instructions,
                "paper_total": PAPER_VAX_TOTAL,
                "opcode_counts": dict(result.vax.opcode_counts),
                "paper_counts": dict(PAPER_VAX_COUNTS)},
    }


def table3_json() -> dict[str, Any]:
    from repro.eval.table3 import run_table3
    result = run_table3()
    return {
        "exhibit": "table3",
        "unspread_gaps": result.unspread_gaps,
        "spread_gaps": result.spread_gaps,
        "if_branch_spread_distance": result.if_branch_spread_distance,
        "unspread_listing": result.unspread_listing,
        "spread_listing": result.spread_listing,
    }


def _table4_case_row(task: str | tuple[str, str]) -> dict[str, Any]:
    """One attributed Table-4 JSON row (parallel-runner worker).

    ``task`` is a bare case name or ``(case_name, engine)``.
    """
    from repro.eval.table4 import (
        CASE_DEFINITIONS,
        PAPER_TABLE4,
        case_program_config,
    )
    from repro.obs.attrib import attribute_run

    case_name, engine = (task, "fast") if isinstance(task, str) else task
    case = next(c for c in CASE_DEFINITIONS if c.name == case_name)
    program, config = case_program_config(case, engine=engine)
    cpu, table = attribute_run(program, config)
    return {
        "case": case.name,
        "folding": case.folding,
        "prediction": case.prediction,
        "spreading": case.spreading,
        "relative_performance": 0.0,
        "paper": PAPER_TABLE4[case.name],
        "metrics": cpu.stats.as_dict(),
        "sites": table.as_dict(),
    }


def table4_json(jobs: int | None = None,
                recorder=None,
                engine: str = "fast") -> dict[str, Any]:
    """Table 4 with a per-site attribution section per case.

    Each case runs once with an attribution sink attached (sinks do not
    change simulated timing), so ``metrics`` stays identical to
    :func:`repro.eval.table4.run_table4` while ``sites`` adds the
    per-branch-site breakdown the aggregate rows cannot show. ``jobs``
    fans the cases out over worker processes with an ordered merge —
    the emitted document is byte-identical to the serial one.
    ``recorder`` collects out-of-band campaign telemetry.
    """
    from repro.eval.parallel import map_ordered
    from repro.eval.table4 import CASE_DEFINITIONS

    rows = map_ordered(_table4_case_row,
                       [(case.name, engine) for case in CASE_DEFINITIONS],
                       jobs,
                       recorder=recorder,
                       labeler=lambda task: f"table4/{task[0]}")
    reference = rows[0]["metrics"]["cycles"]
    for row in rows:
        row["relative_performance"] = reference / row["metrics"]["cycles"]
    return {"exhibit": "table4", "rows": rows}


def dynfold_json(jobs: int | None = None,
                 recorder=None,
                 engine: str = "fast") -> dict[str, Any]:
    """The dynamic-fold exhibit: Table-4 cases × fold-policy variants."""
    from repro.eval.table4 import run_dynfold
    rows = []
    for row in run_dynfold(jobs=jobs, recorder=recorder, engine=engine):
        rows.append({
            "case": row.case.name,
            "variant": row.label,
            "confidence": row.confidence,
            "relative_performance": row.relative_performance,
            "metrics": row.stats.as_dict(),
        })
    return {"exhibit": "dynfold", "rows": rows}


def figures_json() -> dict[str, Any]:
    from repro.eval.figures import nextpc_datapath_cases, pipeline_structure
    return {
        "exhibit": "figures",
        "figure1_blocks": [asdict(report)
                           for report in pipeline_structure()],
        "figure2_nextpc_cases": [asdict(case)
                                 for case in nextpc_datapath_cases()],
    }


def branch_stats_json() -> dict[str, Any]:
    from repro.eval.branch_stats import (
        aggregate_one_parcel_fraction,
        run_branch_stats,
    )
    rows = run_branch_stats()
    return {
        "exhibit": "branch-stats",
        "rows": [asdict(row) for row in rows],
        "one_parcel_fraction": aggregate_one_parcel_fraction(rows),
    }


def exhibit_json(name: str, synthetic_events: int = 100_000,
                 jobs: int | None = None,
                 recorder=None,
                 engine: str = "fast") -> dict[str, Any]:
    """The JSON document for one exhibit name (as the CLI spells it).

    ``jobs`` parallelises exhibits built from independent simulations
    (currently table4/dynfold) and ``recorder`` collects campaign
    telemetry for them; the other exhibits ignore both. ``engine``
    selects the simulation tier for those same exhibits (documents are
    byte-identical across tiers).
    """
    builders = {
        "table1": lambda: table1_json(synthetic_events),
        "table2": table2_json,
        "table3": table3_json,
        "table4": lambda: table4_json(jobs, recorder, engine),
        "dynfold": lambda: dynfold_json(jobs, recorder, engine),
        "figures": figures_json,
        "branch-stats": branch_stats_json,
    }
    try:
        return builders[name]()
    except KeyError:
        raise ValueError(f"no JSON view for exhibit {name!r}") from None
