"""In-text claims: branch-format mix and dynamic branch frequency.

The paper states that "around 95% of the branches executed are encoded in
the one parcel instruction format" and that branches can be "as much as
one third of all instructions executed". This module measures both over
the workload suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import compile_source
from repro.sim.functional import run_program
from repro.workloads import SUITE, FIGURE3


@dataclass(frozen=True)
class BranchStatsRow:
    """Branch statistics for one workload."""

    program: str
    instructions: int
    branches: int
    branch_fraction: float
    one_parcel_fraction: float


def run_branch_stats() -> list[BranchStatsRow]:
    """Measure every suite program plus Figure 3."""
    rows = []
    sources = {"figure3": FIGURE3}
    sources.update({name: wl.source for name, wl in SUITE.items()})
    for name, source in sources.items():
        stats = run_program(compile_source(source)).stats
        rows.append(BranchStatsRow(
            program=name,
            instructions=stats.instructions,
            branches=stats.branches,
            branch_fraction=stats.branch_fraction,
            one_parcel_fraction=stats.one_parcel_branch_fraction,
        ))
    return rows


def aggregate_one_parcel_fraction(rows: list[BranchStatsRow]) -> float:
    """Dynamic one-parcel fraction over all branches in all programs."""
    total = sum(row.branches for row in rows)
    one_parcel = sum(row.branches * row.one_parcel_fraction for row in rows)
    return one_parcel / total if total else 0.0


def format_branch_stats(rows: list[BranchStatsRow]) -> str:
    lines = [f"{'Program':<12}{'Instrs':>10}{'Branches':>10}"
             f"{'Branch %':>10}{'1-parcel %':>12}"]
    for row in rows:
        lines.append(
            f"{row.program:<12}{row.instructions:>10}{row.branches:>10}"
            f"{100 * row.branch_fraction:>9.1f}%"
            f"{100 * row.one_parcel_fraction:>11.1f}%")
    lines.append(f"aggregate one-parcel fraction: "
                 f"{100 * aggregate_one_parcel_fraction(rows):.1f}% "
                 f"(paper: ~95%)")
    return "\n".join(lines)
