"""Campaign-level observability: per-task records for multi-process runs.

A *campaign* is any batch of independent tasks — a ``crisp-eval --jobs``
sweep, a ``crisp-verify fuzz`` run, a baseline regeneration. Single runs
already get run manifests and Perfetto traces; this module gives the
batch the same treatment without perturbing it:

* :class:`CampaignRecorder` collects one :class:`TaskRecord` per task —
  wall-clock, worker identity, retries, failure triage, compile-cache
  traffic, in-worker spans — **out of band**: records ride back from
  worker processes alongside results (see :mod:`repro.eval.parallel`),
  results themselves are untouched, so a recorded campaign's output is
  byte-identical to an unrecorded one.
* While the campaign runs, every record streams as one JSON line to an
  optional stream (``crisp-obs tail`` follows it live, with an ETA).
* At the end the recorder writes a **campaign manifest** (`schema` = 1,
  ``kind`` = ``crisp-campaign-manifest``) summarising totals, and a
  merged Perfetto trace with one track per worker plus a scheduler
  track (:func:`repro.obs.spans.campaign_trace_events`).

Stream line types (``crisp-obs tail`` consumes exactly these):

* ``campaign-start`` — kind, expected task count, jobs, start time;
* ``task`` — one finished task (the :meth:`TaskRecord.as_dict` fields);
* ``event`` — ad-hoc progress (fuzz heartbeats, coverage snapshots);
* ``campaign-end`` — the summary totals.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, IO

from repro.obs.spans import (
    SCHEDULER_TID,
    Span,
    SpanRecorder,
    TrackSpans,
    campaign_trace_events,
    worker_track_label,
)

SCHEMA_VERSION = 1
CAMPAIGN_KIND = "crisp-campaign-manifest"


@dataclass
class TaskRecord:
    """Everything worth knowing about one finished (or lost) task."""

    index: int  #: position in the submitted task list
    label: str  #: human-readable task identity ("table4/D", "fuzz/...")
    seed: int | None = None
    worker: int = 0  #: worker slot (0-based; serial runs use slot 0)
    pid: int = 0
    started: float = 0.0  #: epoch seconds (in-worker clock)
    wall: float = 0.0  #: in-worker execution seconds (excludes queueing)
    retries: int = 0  #: redispatches before this outcome
    failed: bool = False  #: True = persistent :class:`TaskFailure`
    error: str | None = None
    traceback: str | None = None
    cache_hits: int = 0  #: progcache hits (memory + disk) during the task
    cache_misses: int = 0
    extra: dict[str, Any] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view (spans summarised, not inlined)."""
        record: dict[str, Any] = {
            "index": self.index, "label": self.label, "seed": self.seed,
            "worker": self.worker, "pid": self.pid,
            "started": self.started, "wall": round(self.wall, 6),
            "retries": self.retries, "failed": self.failed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.traceback is not None:
            record["traceback"] = self.traceback
        if self.extra:
            record["extra"] = self.extra
        if self.spans:
            record["spans"] = [span.as_dict() for span in self.spans]
        return record


class CampaignRecorder:
    """Collects task records and scheduler spans for one campaign.

    ``stream`` (optional) receives one JSON line per record as the
    campaign runs; ``expected_tasks`` powers the ETA in ``crisp-obs
    tail``. The recorder itself never touches task results — it is
    observation only.
    """

    def __init__(self, kind: str = "campaign", *,
                 jobs: int | None = None,
                 expected_tasks: int | None = None,
                 stream: IO[str] | None = None,
                 clock=time.time) -> None:
        self.kind = kind
        self.jobs = jobs
        self.expected_tasks = expected_tasks
        self.stream = stream
        self._clock = clock
        self.started = clock()
        self.ended: float | None = None
        self.tasks: list[TaskRecord] = []
        self.events: list[dict[str, Any]] = []
        self.scheduler = SpanRecorder(clock)
        self._slots: dict[int, int] = {}
        self._emit({"type": "campaign-start", "kind": kind,
                    "started": self.started, "jobs": jobs,
                    "expected_tasks": expected_tasks})

    # ---- recording ---------------------------------------------------------

    def worker_slot(self, pid: int) -> int:
        """Stable 0-based slot for a worker process (first-seen order)."""
        slot = self._slots.get(pid)
        if slot is None:
            slot = len(self._slots)
            self._slots[pid] = slot
        return slot

    def task_done(self, record: TaskRecord) -> None:
        """Record one finished task and stream it."""
        self.tasks.append(record)
        self._emit({"type": "task", **record.as_dict()})

    def note(self, name: str, **fields: Any) -> None:
        """Record an ad-hoc campaign event (heartbeat, coverage point)."""
        event = {"type": "event", "name": name,
                 "at": self._clock() - self.started, **fields}
        self.events.append(event)
        self._emit(event)

    def finish(self) -> None:
        """Close the campaign (idempotent) and stream the summary."""
        if self.ended is None:
            self.ended = self._clock()
            self._emit({"type": "campaign-end", **self.totals()})

    def _emit(self, record: dict[str, Any]) -> None:
        if self.stream is not None:
            self.stream.write(json.dumps(record) + "\n")
            self.stream.flush()

    # ---- summaries ---------------------------------------------------------

    @property
    def workers_used(self) -> int:
        return max(len(self._slots), 1)

    def totals(self) -> dict[str, Any]:
        """The headline numbers of the campaign so far."""
        ended = self.ended if self.ended is not None else self._clock()
        campaign_wall = max(ended - self.started, 1e-9)
        task_wall = sum(record.wall for record in self.tasks)
        failed = sum(1 for record in self.tasks if record.failed)
        retried = sum(1 for record in self.tasks if record.retries)
        hits = sum(record.cache_hits for record in self.tasks)
        misses = sum(record.cache_misses for record in self.tasks)
        lanes = self.workers_used
        return {
            "tasks": len(self.tasks),
            "failed": failed,
            "retried": retried,
            "workers": lanes,
            "campaign_wall": round(campaign_wall, 6),
            "task_wall": round(task_wall, 6),
            #: busy fraction of the worker lanes actually used
            "parallel_efficiency": round(
                task_wall / (campaign_wall * lanes), 4),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": round(hits / (hits + misses), 4)
                if hits + misses else None,
        }

    def manifest(self) -> dict[str, Any]:
        """The campaign manifest document (one JSON object)."""
        from repro.obs.manifest import git_sha
        self.finish()
        return {
            "schema": SCHEMA_VERSION,
            "kind": CAMPAIGN_KIND,
            "campaign": self.kind,
            "git_sha": git_sha(),
            "started": self.started,
            "ended": self.ended,
            "jobs": self.jobs,
            "expected_tasks": self.expected_tasks,
            "totals": self.totals(),
            "tasks": [record.as_dict() for record in self.tasks],
            "events": self.events,
        }

    # ---- the merged Perfetto trace -----------------------------------------

    def trace_events(self) -> list[dict[str, Any]]:
        """Merged campaign trace: scheduler track + one track per worker.

        Worker tracks cover ``max(jobs, workers seen)`` slots, so a
        ``--jobs 4`` campaign always renders four worker rows even if
        the pool finished the work with fewer processes.
        """
        lanes = len(self._slots)
        if self.jobs is not None:
            lanes = max(lanes, self.jobs)
        lanes = max(lanes, 1)
        tracks = [TrackSpans(SCHEDULER_TID, "scheduler",
                             list(self.scheduler.spans))]
        by_slot: dict[int, list[Span]] = {slot: [] for slot in range(lanes)}
        for record in self.tasks:
            slot = record.worker if 0 <= record.worker < lanes else 0
            by_slot[slot].append(Span(
                record.label, record.started, record.started + record.wall,
                "failure" if record.failed else "task",
                (("index", record.index), ("retries", record.retries))))
            for inner in record.spans:
                by_slot[slot].append(inner)
        for slot in range(lanes):
            tracks.append(TrackSpans(slot + 1, worker_track_label(slot),
                                     by_slot[slot]))
        return campaign_trace_events(
            tracks, self.started, process_name=f"crisp campaign: {self.kind}")

    # ---- artefact writing --------------------------------------------------

    def write_artifacts(self, prefix: str) -> dict[str, str]:
        """Write ``<prefix>.json`` (manifest) and ``<prefix>_trace.json``.

        Returns ``{"manifest": path, "trace": path}``. The JSONL stream
        is the caller's (it was opened before the campaign started).
        """
        manifest_path = f"{prefix}.json"
        trace_path = f"{prefix}_trace.json"
        with open(manifest_path, "w", encoding="utf-8") as stream:
            json.dump(self.manifest(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        with open(trace_path, "w", encoding="utf-8") as stream:
            json.dump(self.trace_events(), stream)
        return {"manifest": manifest_path, "trace": trace_path}


def stream_path(prefix: str) -> str:
    """The JSONL stream path for a ``--campaign-out`` prefix."""
    return f"{prefix}.jsonl"


def open_campaign(kind: str, prefix: str | None, *,
                  jobs: int | None = None,
                  expected_tasks: int | None = None
                  ) -> tuple["CampaignRecorder | None", IO[str] | None]:
    """CLI helper: a streaming recorder for ``--campaign-out PREFIX``.

    Returns ``(None, None)`` when ``prefix`` is None so call sites can
    pass the recorder straight through. The caller owns closing the
    returned stream (after :func:`close_campaign`).
    """
    if prefix is None:
        return None, None
    stream = open(stream_path(prefix), "w", encoding="utf-8")
    return CampaignRecorder(kind, jobs=jobs, expected_tasks=expected_tasks,
                            stream=stream), stream


def close_campaign(recorder: "CampaignRecorder | None",
                   stream: IO[str] | None,
                   prefix: str | None) -> dict[str, str] | None:
    """CLI helper: finish the campaign and write its artefacts."""
    if recorder is None or prefix is None:
        return None
    recorder.finish()
    paths = recorder.write_artifacts(prefix)
    if stream is not None:
        stream.close()
    paths["stream"] = stream_path(prefix)
    return paths


# ---- the rendered campaign report ------------------------------------------


def _format_seconds(seconds: float) -> str:
    if seconds >= 120:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.2f} s"


def render_campaign_report(manifest: dict[str, Any], *,
                           slowest: int = 10) -> str:
    """Markdown report for one campaign manifest."""
    totals = manifest.get("totals", {})
    tasks = manifest.get("tasks", [])
    lines = [f"# Campaign report: {manifest.get('campaign', '?')}", ""]
    lines.append(f"- git SHA: `{manifest.get('git_sha') or 'unknown'}`")
    lines.append(f"- jobs requested: {manifest.get('jobs') or 'serial'}; "
                 f"workers used: {totals.get('workers', 1)}")
    lines.append(f"- tasks: {totals.get('tasks', 0)} "
                 f"({totals.get('failed', 0)} failed, "
                 f"{totals.get('retried', 0)} retried)")
    lines.append(f"- campaign wall-clock: "
                 f"{_format_seconds(totals.get('campaign_wall', 0.0))}; "
                 f"summed task wall: "
                 f"{_format_seconds(totals.get('task_wall', 0.0))}")
    efficiency = totals.get("parallel_efficiency")
    if efficiency is not None:
        lines.append(f"- parallel efficiency: {100 * efficiency:.0f}% "
                     f"of the used worker lanes busy")
    hit_rate = totals.get("cache_hit_rate")
    if hit_rate is not None:
        lines.append(f"- progcache: {totals.get('cache_hits', 0)} hits / "
                     f"{totals.get('cache_misses', 0)} misses "
                     f"({100 * hit_rate:.0f}% hit rate)")
    lines.append("")

    if tasks:
        ranked = sorted(tasks, key=lambda task: -task.get("wall", 0.0))
        lines += [f"## Slowest tasks (top {min(slowest, len(ranked))} "
                  f"of {len(ranked)})", "",
                  "| # | task | wall | worker | retries | cache |",
                  "|---|---|---|---|---|---|"]
        for task in ranked[:slowest]:
            cache = (f"{task.get('cache_hits', 0)}h/"
                     f"{task.get('cache_misses', 0)}m")
            lines.append(
                f"| {task.get('index')} | {task.get('label')} "
                f"| {_format_seconds(task.get('wall', 0.0))} "
                f"| {task.get('worker')} | {task.get('retries', 0)} "
                f"| {cache} |")
        lines.append("")

    failures = [task for task in tasks if task.get("failed")]
    if failures:
        lines += ["## Failures", ""]
        for task in failures:
            lines.append(f"### task {task.get('index')}: "
                         f"{task.get('label')} "
                         f"(seed {task.get('seed')}, "
                         f"{task.get('retries', 0)} retries)")
            lines.append("")
            lines.append(f"`{task.get('error', 'unknown error')}`")
            trace = task.get("traceback")
            if trace:
                lines += ["", "```", trace.rstrip(), "```"]
            lines.append("")

    retried = [task for task in tasks
               if task.get("retries") and not task.get("failed")]
    if retried:
        lines += ["## Recovered retries", ""]
        for task in retried:
            lines.append(f"- task {task.get('index')} "
                         f"({task.get('label')}): succeeded after "
                         f"{task.get('retries')} redispatch(es)")
        lines.append("")

    coverage = [event for event in manifest.get("events", [])
                if event.get("name") == "coverage"]
    if coverage:
        lines += ["## Coverage over time", "",
                  "| t (s) | programs | cells | fraction |",
                  "|---|---|---|---|"]
        for event in coverage:
            lines.append(f"| {event.get('at', 0.0):.1f} "
                         f"| {event.get('programs', '-')} "
                         f"| {event.get('cells', '-')} "
                         f"| {100 * event.get('fraction', 0.0):.1f}% |")
        lines.append("")
    return "\n".join(lines)


HTML_SHELL = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>body{{font-family:monospace;max-width:72em;margin:2em auto;
white-space:pre-wrap}}</style></head>
<body>{body}</body></html>
"""


def render_campaign_html(manifest: dict[str, Any]) -> str:
    """The same report wrapped in a minimal self-contained HTML page."""
    import html as html_module
    markdown = render_campaign_report(manifest)
    return HTML_SHELL.format(
        title=f"Campaign report: {manifest.get('campaign', '?')}",
        body=html_module.escape(markdown))


# ---- live progress (crisp-obs tail) ----------------------------------------


@dataclass
class StreamProgress:
    """Running state while consuming a campaign JSONL stream."""

    kind: str = "campaign"
    expected: int | None = None
    jobs: int | None = None
    done: int = 0
    failed: int = 0
    retried: int = 0
    task_wall: float = 0.0
    finished: bool = False
    totals: dict[str, Any] = field(default_factory=dict)

    def eta_seconds(self, workers: int | None = None) -> float | None:
        """Remaining-seconds estimate from the average task wall-clock."""
        if not self.done or not self.expected:
            return None
        remaining = self.expected - self.done
        if remaining <= 0:
            return 0.0
        lanes = workers or self.jobs or 1
        if lanes == 0:  # --jobs 0 = one per CPU, unknown here
            lanes = 1
        return remaining * (self.task_wall / self.done) / max(lanes, 1)

    def consume(self, record: dict[str, Any]) -> str | None:
        """Fold one stream record in; return a progress line to print."""
        kind = record.get("type")
        if kind == "campaign-start":
            self.kind = record.get("kind", self.kind)
            self.expected = record.get("expected_tasks")
            self.jobs = record.get("jobs")
            total = f"/{self.expected}" if self.expected else ""
            return (f"campaign {self.kind}: started "
                    f"(jobs={self.jobs or 'serial'}, tasks{total})")
        if kind == "task":
            self.done += 1
            self.task_wall += record.get("wall", 0.0)
            if record.get("failed"):
                self.failed += 1
            if record.get("retries"):
                self.retried += 1
            total = f"/{self.expected}" if self.expected else ""
            status = "FAIL" if record.get("failed") else "ok"
            eta = self.eta_seconds()
            eta_text = "" if eta is None else f"  eta {eta:.1f}s"
            return (f"[{self.done}{total}] {record.get('label', '?')} "
                    f"{status} {record.get('wall', 0.0):.2f}s "
                    f"worker {record.get('worker', '?')}"
                    f"{eta_text}")
        if kind == "event":
            fields = ", ".join(
                f"{key}={value}" for key, value in sorted(record.items())
                if key not in ("type", "name", "at"))
            return f"event {record.get('name')}: {fields}"
        if kind == "campaign-end":
            self.finished = True
            self.totals = {key: value for key, value in record.items()
                           if key != "type"}
            return (f"campaign {self.kind}: done — "
                    f"{self.totals.get('tasks', self.done)} tasks, "
                    f"{self.totals.get('failed', self.failed)} failed, "
                    f"{_format_seconds(self.totals.get('campaign_wall', 0.0))}"
                    f" wall")
        return None


def read_campaign(path: str) -> dict[str, Any]:
    """Load a campaign manifest, validating kind and schema."""
    with open(path, "r", encoding="utf-8") as stream:
        document = json.load(stream)
    if not isinstance(document, dict) \
            or document.get("kind") != CAMPAIGN_KIND:
        raise ValueError(f"{path}: not a {CAMPAIGN_KIND} document")
    if document.get("schema", 1) > SCHEMA_VERSION:
        raise ValueError(f"{path}: schema {document.get('schema')} is newer "
                         f"than this reader (max {SCHEMA_VERSION})")
    return document
