"""``crisp-obs``: telemetry artefacts, attribution and the regression gate.

Subcommands (bare flags still work and mean ``run``):

* ``run`` — simulate a workload and emit artefacts: a Perfetto trace
  (`--trace`), a run manifest (`--manifest`, with per-site attribution),
  a JSONL dump of final probe values (`--metrics`), a live JSONL event
  stream (`--events`) and a terminal summary with a cycle-breakdown bar.
* ``annotate`` — "perf annotate" for branches: the per-branch-site
  attribution table rendered over the disassembly, interleaved with the
  mini-C source lines each instruction was lowered from.
* ``diff`` — per-metric and per-site deltas between two run manifests
  (or two ``crisp-bench-baseline`` documents, paired case by case).
* ``gate`` — the regression gate: re-measure the Table-4 cases (or load
  ``--current``), compare fold rate / issued CPI / prediction accuracy
  against ``--baseline`` and fail when any degrades past ``--threshold``.
* ``report`` — render a campaign manifest (from ``--campaign-out``) as
  a markdown (or ``--html``) report: totals, slowest tasks, failures
  with replay context, recovered retries, coverage over time.
* ``tail`` — follow a campaign's live JSONL stream with per-task
  progress lines and an ETA.
* ``trend`` — perf-trend analytics over the committed trajectory /
  throughput documents and campaign manifests, with regression
  detection.

Exit codes: **0** success, **1** gate (or ``trend
--fail-on-regression``) regression, **2** usage or input/output error.

Examples::

    python -m repro.obs.cli run --workload figure3 --manifest run.json
    python -m repro.obs.cli annotate --workload figure3 --spread
    python -m repro.obs.cli diff before.json after.json
    python -m repro.obs.cli gate --baseline BENCH_obs_baseline.json \\
        --threshold 2% --update-trajectory BENCH_table4_trajectory.json
    python -m repro.obs.cli --table4-baseline BENCH_obs_baseline.json
    python -m repro.obs.cli report --campaign campaign.json --html \\
        --out report.html
    python -m repro.obs.cli tail campaign.jsonl --follow
    python -m repro.obs.cli trend
"""

from __future__ import annotations

import argparse
import json

from repro.obs.events import EventBus, JsonlSink

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2  #: bad arguments, unreadable/invalid input documents

BAR_WIDTH = 40
_BAR_GLYPHS = {"issue": "#", "penalty": "!", "other_stall": ".",
               "residual": "~"}


def breakdown_bar(breakdown: dict[str, float],
                  width: int = BAR_WIDTH) -> str:
    """Render the cycle breakdown as a fixed-width segment bar."""
    cells: list[str] = []
    for key, glyph in _BAR_GLYPHS.items():
        cells.extend(glyph * round(breakdown.get(key, 0.0) * width))
    del cells[width:]
    cells.extend("~" * (width - len(cells)))  # rounding slack
    return "[" + "".join(cells) + "]"


def _format_summary(workload: str, stats, breakdown) -> list[str]:
    lines = [f"== {workload} ==", stats.summary(), ""]
    lines.append("cycle breakdown "
                 + " ".join(f"{glyph} {key} {100 * breakdown[key]:.1f}%"
                            for key, glyph in _BAR_GLYPHS.items()))
    lines.append(f"{breakdown_bar(breakdown)} {stats.cycles} cycles")
    return lines


def _workload_source(name: str, seed: int | None = None) -> str:
    from repro.workloads import resolve_source
    return resolve_source(name, seed)


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    """The workload/compile/machine flags shared by ``run`` and ``annotate``."""
    parser.add_argument("--workload", default="figure3",
                        help="figure3, a workload-suite name, or a "
                             "gen_* synthetic workload "
                             "(default: figure3)")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="generation seed for gen_* synthetic "
                             "workloads (same seed -> byte-identical "
                             "program in every process)")
    parser.add_argument("--spread", action="store_true",
                        help="enable Branch Spreading")
    parser.add_argument("--predict", default="heuristic",
                        choices=["not_taken", "taken", "heuristic",
                                 "profile"],
                        help="static prediction-bit policy")
    parser.add_argument("--no-fold", action="store_true",
                        help="disable Branch Folding")
    parser.add_argument("--icache", type=int, default=None, metavar="N",
                        help="decoded-cache entries (power of two)")
    parser.add_argument("--mem-latency", type=int, default=None,
                        metavar="N", help="cycles per instruction fetch")
    parser.add_argument("--max-cycles", type=int, default=50_000_000)


def _compile_workload(parser: argparse.ArgumentParser, args,
                      obs: EventBus | None = None, debug: bool = False):
    """(program, config[, debug_info]) from parsed workload flags.

    Calls ``parser.error`` (exit 2) on an unknown workload or a compile
    error — both are input problems, not regressions.
    """
    from repro.core.policy import FoldPolicy
    from repro.lang import (CompilerOptions, PredictionMode,
                            compile_source, compile_with_debug)
    from repro.lang.lexer import CompileError
    from repro.sim.cpu import CpuConfig

    try:
        source = _workload_source(args.workload, getattr(args, "seed", None))
    except KeyError:
        parser.error(f"unknown workload {args.workload!r}")
    options = CompilerOptions(
        spreading=args.spread,
        prediction=PredictionMode(args.predict))
    try:
        if debug:
            program, info = compile_with_debug(source, options)
        else:
            program = compile_source(source, options,
                                     obs if obs is not None else EventBus())
            info = None
    except CompileError as error:
        parser.error(str(error))

    config_kwargs = {}
    if args.no_fold:
        config_kwargs["fold_policy"] = FoldPolicy.none()
    if args.icache is not None:
        config_kwargs["icache_entries"] = args.icache
    if args.mem_latency is not None:
        config_kwargs["mem_latency"] = args.mem_latency
    config = CpuConfig(**config_kwargs)
    return (program, config, info) if debug else (program, config)


def _cmd_run(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-obs run",
        description="Run a workload and emit telemetry artefacts "
                    "(Perfetto trace, run manifest, metrics).")
    _add_workload_arguments(parser)
    parser.add_argument("--trace", metavar="PATH",
                        help="write a Perfetto trace-event JSON file")
    parser.add_argument("--manifest", metavar="PATH",
                        help="write the run-manifest JSON document")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write final probe values as JSONL")
    parser.add_argument("--events", metavar="PATH",
                        help="stream every probe update as JSONL "
                             "(slow: attaches a live sink)")
    parser.add_argument("--window", type=int, default=0, metavar="N",
                        help="print the first N trace cycles as a "
                             "pipeline diagram")
    parser.add_argument("--table4-baseline", metavar="PATH",
                        help="emit the Table-4 A-E baseline manifests "
                             "and exit")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for multi-case artefacts "
                             "(--table4-baseline); 0 = one per CPU. "
                             "Manifests merge in case order, so the "
                             "document is byte-identical to a serial "
                             "run. Single-workload runs ignore it")
    parser.add_argument("--campaign-out", metavar="PREFIX", default=None,
                        help="with --table4-baseline: record campaign "
                             "telemetry (PREFIX.json manifest, "
                             "PREFIX.jsonl live stream, "
                             "PREFIX_trace.json merged Perfetto trace)")
    parser.add_argument("--probes", action="store_true",
                        help="print the probe catalogue and exit")
    args = parser.parse_args(argv)

    if args.probes:
        from repro.obs.registry import catalogue_rows
        for name, kind, unit, description in catalogue_rows():
            print(f"{name:<28} {kind:<10} {unit:<13} {description}")
        return EXIT_OK

    if args.table4_baseline:
        from repro.obs.campaign import close_campaign, open_campaign
        from repro.obs.manifest import (baseline_labels, table4_baseline,
                                        write_manifest)
        recorder, stream = open_campaign(
            "table4-baseline", args.campaign_out, jobs=args.jobs,
            expected_tasks=len(baseline_labels()))
        try:
            write_manifest(args.table4_baseline,
                           table4_baseline(jobs=args.jobs,
                                           recorder=recorder))
        finally:
            paths = close_campaign(recorder, stream, args.campaign_out)
        print(f"wrote Table-4 baseline -> {args.table4_baseline}")
        if paths is not None:
            print(f"campaign artefacts: {paths['manifest']}, "
                  f"{paths['trace']}, {paths['stream']}")
        return EXIT_OK

    from repro.obs.attrib import AttributionSink
    from repro.obs.export import write_metrics, write_trace
    from repro.obs.manifest import manifest_for_cpu, write_manifest
    from repro.sim.cpu import CrispCpu
    from repro.sim.tracer import PipelineTrace

    obs = EventBus()
    events_stream = None
    if args.events:
        events_stream = open(args.events, "w", encoding="utf-8")
        obs.attach(JsonlSink(events_stream))

    program, config = _compile_workload(parser, args, obs)
    sink = AttributionSink()
    obs.attach(sink)

    cpu = CrispCpu(program, config, obs=obs)
    trace = PipelineTrace(cpu)
    trace.run(args.max_cycles)
    obs.detach(sink)
    if events_stream is not None:
        events_stream.close()

    stats = cpu.stats
    for line in _format_summary(args.workload, stats, stats.breakdown()):
        print(line)

    if args.window:
        print()
        print(trace.format_window(0, args.window))

    if args.trace:
        events = write_trace(args.trace, trace.records)
        print(f"wrote {len(events)} trace events -> {args.trace} "
              f"(open at ui.perfetto.dev)")
    if args.manifest:
        write_manifest(args.manifest,
                       manifest_for_cpu(args.workload, cpu,
                                        sites=sink.table.as_dict()))
        print(f"wrote run manifest -> {args.manifest}")
    if args.metrics:
        write_metrics(args.metrics, obs)
        print(f"wrote probe metrics -> {args.metrics}")
    if args.events:
        print(f"wrote live event stream -> {args.events}")
    print()
    print("probe counters: "
          + json.dumps(obs.counters(), sort_keys=True))
    return EXIT_OK


def _cmd_annotate(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-obs annotate",
        description="Per-branch-site attribution rendered over the "
                    "disassembly, interleaved with mini-C source lines.")
    _add_workload_arguments(parser)
    parser.add_argument("--no-source", action="store_true",
                        help="omit the interleaved mini-C source lines")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the listing to a file")
    args = parser.parse_args(argv)

    from repro.obs.attrib import annotate_listing, attribute_run

    program, config, debug = _compile_workload(parser, args, debug=True)
    cpu, table = attribute_run(program, config, max_cycles=args.max_cycles)
    mismatches = table.reconcile(cpu.stats)
    listing = annotate_listing(program, table,
                               None if args.no_source else debug)
    print(listing)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(listing + "\n")
        print(f"wrote annotated listing -> {args.out}")
    if mismatches:
        print("RECONCILIATION FAILED (per-site sums != aggregates):")
        for line in mismatches:
            print(f"  {line}")
        return EXIT_REGRESSION
    return EXIT_OK


def _load_document(parser: argparse.ArgumentParser, path: str) -> dict:
    """Read a manifest/baseline JSON document; parser.error (2) on failure."""
    from repro.obs.manifest import read_manifest

    try:
        document = read_manifest(path)
    except (OSError, json.JSONDecodeError) as error:
        parser.error(f"cannot read {path}: {error}")
    if not isinstance(document, dict):
        parser.error(f"{path}: not a JSON object")
    return document


def _cmd_diff(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-obs diff",
        description="Per-metric and per-site deltas between two run "
                    "manifests or two bench-baseline documents.")
    parser.add_argument("before", help="baseline manifest JSON")
    parser.add_argument("after", help="comparison manifest JSON")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the full diff document as JSON")
    args = parser.parse_args(argv)

    from repro.obs.diff import diff_documents

    before = _load_document(parser, args.before)
    after = _load_document(parser, args.after)
    try:
        diff = diff_documents(before, after)
    except ValueError as error:
        parser.error(str(error))

    if args.as_json:
        print(json.dumps(diff, indent=2, sort_keys=True))
        return EXIT_OK
    for label, case in diff["cases"].items():
        changed = case["metrics"]
        print(f"== {label} ({case['metrics_unchanged']} metrics unchanged, "
              f"{len(changed)} changed, {len(case['sites'])} sites changed)")
        for delta in changed:
            relative = delta["relative"]
            percent = ("" if relative is None
                       else f" ({100 * relative:+.2f}%)")
            print(f"  {delta['metric']}: {delta['before']:g} -> "
                  f"{delta['after']:g}{percent}")
        for site, deltas in case["sites"].items():
            cells = ", ".join(f"{d['metric']} {d['before']:g}->"
                              f"{d['after']:g}" for d in deltas)
            print(f"  site {site}: {cells}")
    return EXIT_OK


def _cmd_gate(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-obs gate",
        description="Fail (exit 1) when fold rate, issued CPI or "
                    "prediction accuracy regressed past the threshold.")
    parser.add_argument("--baseline", required=True, metavar="PATH",
                        help="baseline document (e.g. "
                             "BENCH_obs_baseline.json)")
    parser.add_argument("--current", metavar="PATH",
                        help="current document; omitted = re-measure the "
                             "Table-4 cases now")
    parser.add_argument("--threshold", default="2%", metavar="PCT",
                        help="max relative degradation, e.g. 2%% or 0.02 "
                             "(default: 2%%)")
    parser.add_argument("--update-trajectory", metavar="PATH",
                        help="append this run's headline metrics to the "
                             "perf-trajectory document")
    args = parser.parse_args(argv)

    from repro.obs.diff import (check_gate, parse_threshold,
                                trajectory_entry, update_trajectory)
    from repro.obs.manifest import write_manifest

    try:
        threshold = parse_threshold(args.threshold)
    except ValueError as error:
        parser.error(str(error))

    baseline = _load_document(parser, args.baseline)
    if args.current:
        current = _load_document(parser, args.current)
    else:
        from repro.obs.manifest import table4_baseline
        current = table4_baseline()

    try:
        regressions, checked = check_gate(baseline, current, threshold)
    except ValueError as error:
        parser.error(str(error))

    for label, values in sorted(checked.items()):
        print(f"case {label}: "
              + "  ".join(f"{metric}={value:.4f}"
                          for metric, value in values.items()))

    if args.update_trajectory:
        from pathlib import Path

        from repro.obs.manifest import read_manifest
        path = Path(args.update_trajectory)
        document = read_manifest(str(path)) if path.exists() else None
        write_manifest(str(path),
                       update_trajectory(document, trajectory_entry(current)))
        print(f"updated perf trajectory -> {path}")

    if regressions:
        print(f"GATE FAILED: {len(regressions)} regression(s) past "
              f"{100 * threshold:g}%:")
        for regression in regressions:
            print(f"  {regression.describe()}")
        return EXIT_REGRESSION
    print(f"gate OK: {len(checked)} case(s), "
          f"{100 * threshold:g}% threshold")
    return EXIT_OK


def _cmd_report(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-obs report",
        description="Render a campaign manifest (--campaign-out) as a "
                    "markdown or HTML report.")
    parser.add_argument("--campaign", required=True, metavar="PATH",
                        help="campaign manifest JSON "
                             "(the PREFIX.json of --campaign-out)")
    parser.add_argument("--html", action="store_true",
                        help="emit a self-contained HTML page instead "
                             "of markdown")
    parser.add_argument("--out", metavar="PATH",
                        help="write the report to a file instead of "
                             "stdout")
    parser.add_argument("--slowest", type=int, default=10, metavar="N",
                        help="how many slowest tasks to list "
                             "(default: 10)")
    args = parser.parse_args(argv)

    from repro.obs.campaign import (read_campaign, render_campaign_html,
                                    render_campaign_report)
    try:
        manifest = read_campaign(args.campaign)
    except (OSError, json.JSONDecodeError, ValueError) as error:
        parser.error(f"cannot read {args.campaign}: {error}")
    report = (render_campaign_html(manifest) if args.html
              else render_campaign_report(manifest, slowest=args.slowest))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(report if report.endswith("\n") else report + "\n")
        print(f"wrote campaign report -> {args.out}")
    else:
        print(report)
    return EXIT_OK


def _cmd_tail(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-obs tail",
        description="Follow a campaign's live JSONL stream "
                    "(the PREFIX.jsonl of --campaign-out) with "
                    "per-task progress and an ETA.")
    parser.add_argument("stream", help="campaign JSONL stream path")
    parser.add_argument("--follow", action="store_true",
                        help="keep polling for new lines until the "
                             "campaign-end record (or --timeout)")
    parser.add_argument("--interval", type=float, default=0.5,
                        metavar="SECS", help="poll interval with "
                                             "--follow (default: 0.5)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECS",
                        help="give up following after this long")
    args = parser.parse_args(argv)

    import time as time_module

    from repro.obs.campaign import StreamProgress

    progress = StreamProgress()
    deadline = (time_module.monotonic() + args.timeout
                if args.timeout is not None else None)
    try:
        stream = open(args.stream, "r", encoding="utf-8")
    except OSError as error:
        parser.error(f"cannot read {args.stream}: {error}")
    with stream:
        buffered = ""
        while True:
            chunk = stream.readline()
            if chunk:
                buffered += chunk
                if not buffered.endswith("\n"):
                    continue  # partial line from a live writer
                line, buffered = buffered, ""
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                rendered = progress.consume(record)
                if rendered:
                    print(rendered, flush=True)
                if progress.finished:
                    return EXIT_OK
                continue
            if not args.follow:
                return EXIT_OK
            if deadline is not None \
                    and time_module.monotonic() >= deadline:
                print("tail: timeout before campaign-end", flush=True)
                return EXIT_OK
            time_module.sleep(args.interval)


def _cmd_trend(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-obs trend",
        description="Perf-trend analytics over the committed trajectory/"
                    "throughput documents and campaign manifests.")
    parser.add_argument("--trajectory", metavar="PATH",
                        default="BENCH_table4_trajectory.json",
                        help="trajectory document (default: "
                             "BENCH_table4_trajectory.json)")
    parser.add_argument("--throughput", metavar="PATH",
                        default="BENCH_throughput.json",
                        help="throughput baseline (default: "
                             "BENCH_throughput.json)")
    parser.add_argument("--campaign", action="append", metavar="PATH",
                        default=[],
                        help="campaign manifest(s) to include "
                             "(repeatable)")
    parser.add_argument("--threshold", default="2%", metavar="PCT",
                        help="regression threshold, e.g. 2%% or 0.02 "
                             "(default: 2%%)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the machine-readable trend document")
    parser.add_argument("--out", metavar="PATH",
                        help="write the rendered report to a file")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any series regressed past the "
                             "threshold")
    args = parser.parse_args(argv)

    import os

    from repro.obs.diff import parse_threshold
    from repro.obs.trend import render_trend_report, trend_document

    try:
        threshold = parse_threshold(args.threshold)
    except ValueError as error:
        parser.error(str(error))

    def load_optional(path: str) -> dict | None:
        """Default documents may be absent (fresh clone subsets)."""
        if not os.path.exists(path):
            return None
        return _load_document(parser, path)

    trajectory = load_optional(args.trajectory)
    throughput = load_optional(args.throughput)
    campaigns = []
    from repro.obs.campaign import read_campaign
    for path in args.campaign:
        try:
            campaigns.append(read_campaign(path))
        except (OSError, json.JSONDecodeError, ValueError) as error:
            parser.error(f"cannot read {path}: {error}")

    document = trend_document(trajectory, throughput, campaigns, threshold)
    if args.as_json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        report = render_trend_report(trajectory, throughput, campaigns,
                                     threshold)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as stream:
                stream.write(report)
            print(f"wrote trend report -> {args.out}")
        else:
            print(report)
    if args.fail_on_regression and document["regressions"]:
        print(f"TREND REGRESSED: {len(document['regressions'])} series "
              f"past {100 * threshold:g}%")
        return EXIT_REGRESSION
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    """Dispatch ``crisp-obs`` subcommands (bare flags mean ``run``).

    Returns :data:`EXIT_OK`, :data:`EXIT_REGRESSION` or
    :data:`EXIT_USAGE` — argparse's own exit-2-on-usage-error behaviour
    is converted to a return value so embedders see an int.
    """
    if argv is None:
        import sys
        argv = sys.argv[1:]
    commands = {"run": _cmd_run, "annotate": _cmd_annotate,
                "diff": _cmd_diff, "gate": _cmd_gate,
                "report": _cmd_report, "tail": _cmd_tail,
                "trend": _cmd_trend}
    command = commands.get(argv[0]) if argv else None
    try:
        if command is not None:
            return command(argv[1:])
        return _cmd_run(argv)
    except SystemExit as exc:
        code = exc.code
        if code is None:
            return EXIT_OK
        return code if isinstance(code, int) else EXIT_USAGE


if __name__ == "__main__":
    raise SystemExit(main())
