"""``crisp-obs``: run a workload with full telemetry attached.

One command produces every observability artefact for a run: a Perfetto
trace (`--trace`), a run manifest (`--manifest`), a JSONL dump of the
final probe values (`--metrics`), a live JSONL stream of every probe
update (`--events`), and a terminal summary with a cycle-breakdown bar.

Examples::

    python -m repro.obs.cli --workload figure3 --trace out.json \\
        --manifest run.json
    python -m repro.obs.cli --workload puzzle --no-fold --window 24
    python -m repro.obs.cli --table4-baseline BENCH_obs_baseline.json
    python -m repro.obs.cli --probes
"""

from __future__ import annotations

import argparse
import json

from repro.obs.events import EventBus, JsonlSink

BAR_WIDTH = 40
_BAR_GLYPHS = {"issue": "#", "penalty": "!", "other_stall": ".",
               "residual": "~"}


def breakdown_bar(breakdown: dict[str, float],
                  width: int = BAR_WIDTH) -> str:
    """Render the cycle breakdown as a fixed-width segment bar."""
    cells: list[str] = []
    for key, glyph in _BAR_GLYPHS.items():
        cells.extend(glyph * round(breakdown.get(key, 0.0) * width))
    del cells[width:]
    cells.extend("~" * (width - len(cells)))  # rounding slack
    return "[" + "".join(cells) + "]"


def _format_summary(workload: str, stats, breakdown) -> list[str]:
    lines = [f"== {workload} ==", stats.summary(), ""]
    lines.append("cycle breakdown "
                 + " ".join(f"{glyph} {key} {100 * breakdown[key]:.1f}%"
                            for key, glyph in _BAR_GLYPHS.items()))
    lines.append(f"{breakdown_bar(breakdown)} {stats.cycles} cycles")
    return lines


def _workload_source(name: str) -> str:
    if name == "figure3":
        from repro.workloads import FIGURE3
        return FIGURE3
    from repro.workloads import get_workload
    return get_workload(name).source


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-obs",
        description="Run a workload and emit telemetry artefacts "
                    "(Perfetto trace, run manifest, metrics).")
    parser.add_argument("--workload", default="figure3",
                        help="figure3 or a workload-suite name "
                             "(default: figure3)")
    parser.add_argument("--spread", action="store_true",
                        help="enable Branch Spreading")
    parser.add_argument("--predict", default="heuristic",
                        choices=["not_taken", "taken", "heuristic",
                                 "profile"],
                        help="static prediction-bit policy")
    parser.add_argument("--no-fold", action="store_true",
                        help="disable Branch Folding")
    parser.add_argument("--icache", type=int, default=None, metavar="N",
                        help="decoded-cache entries (power of two)")
    parser.add_argument("--mem-latency", type=int, default=None,
                        metavar="N", help="cycles per instruction fetch")
    parser.add_argument("--max-cycles", type=int, default=50_000_000)
    parser.add_argument("--trace", metavar="PATH",
                        help="write a Perfetto trace-event JSON file")
    parser.add_argument("--manifest", metavar="PATH",
                        help="write the run-manifest JSON document")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write final probe values as JSONL")
    parser.add_argument("--events", metavar="PATH",
                        help="stream every probe update as JSONL "
                             "(slow: attaches a live sink)")
    parser.add_argument("--window", type=int, default=0, metavar="N",
                        help="print the first N trace cycles as a "
                             "pipeline diagram")
    parser.add_argument("--table4-baseline", metavar="PATH",
                        help="emit the Table-4 A-E baseline manifests "
                             "and exit")
    parser.add_argument("--probes", action="store_true",
                        help="print the probe catalogue and exit")
    args = parser.parse_args(argv)

    if args.probes:
        from repro.obs.registry import catalogue_rows
        for name, kind, unit, description in catalogue_rows():
            print(f"{name:<28} {kind:<10} {unit:<13} {description}")
        return 0

    if args.table4_baseline:
        from repro.obs.manifest import table4_baseline, write_manifest
        write_manifest(args.table4_baseline, table4_baseline())
        print(f"wrote Table-4 baseline -> {args.table4_baseline}")
        return 0

    from repro.core.policy import FoldPolicy
    from repro.lang import CompilerOptions, PredictionMode, compile_source
    from repro.lang.lexer import CompileError
    from repro.obs.export import write_metrics, write_trace
    from repro.obs.manifest import manifest_for_cpu, write_manifest
    from repro.sim.cpu import CpuConfig, CrispCpu
    from repro.sim.tracer import PipelineTrace

    obs = EventBus()
    events_stream = None
    if args.events:
        events_stream = open(args.events, "w", encoding="utf-8")
        obs.attach(JsonlSink(events_stream))

    try:
        source = _workload_source(args.workload)
    except KeyError:
        parser.error(f"unknown workload {args.workload!r}")
    options = CompilerOptions(
        spreading=args.spread,
        prediction=PredictionMode(args.predict))
    try:
        program = compile_source(source, options, obs)
    except CompileError as error:
        print(f"error: {error}")
        return 1

    config_kwargs = {}
    if args.no_fold:
        config_kwargs["fold_policy"] = FoldPolicy.none()
    if args.icache is not None:
        config_kwargs["icache_entries"] = args.icache
    if args.mem_latency is not None:
        config_kwargs["mem_latency"] = args.mem_latency
    config = CpuConfig(**config_kwargs)

    cpu = CrispCpu(program, config, obs=obs)
    trace = PipelineTrace(cpu)
    trace.run(args.max_cycles)
    if events_stream is not None:
        events_stream.close()

    stats = cpu.stats
    for line in _format_summary(args.workload, stats, stats.breakdown()):
        print(line)

    if args.window:
        print()
        print(trace.format_window(0, args.window))

    if args.trace:
        events = write_trace(args.trace, trace.records)
        print(f"wrote {len(events)} trace events -> {args.trace} "
              f"(open at ui.perfetto.dev)")
    if args.manifest:
        write_manifest(args.manifest, manifest_for_cpu(args.workload, cpu))
        print(f"wrote run manifest -> {args.manifest}")
    if args.metrics:
        write_metrics(args.metrics, obs)
        print(f"wrote probe metrics -> {args.metrics}")
    if args.events:
        print(f"wrote live event stream -> {args.events}")
    print()
    print("probe counters: "
          + json.dumps(obs.counters(), sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
