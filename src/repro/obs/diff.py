"""Differential run manifests: deltas between runs, and a regression gate.

Two layers on top of :mod:`repro.obs.manifest` documents:

* :func:`diff_documents` — per-metric and per-site deltas between two
  manifests (or two ``crisp-bench-baseline`` documents, paired case by
  case). Diffing a document against itself yields zero deltas, a
  round-trip property the tests pin.
* :func:`check_gate` — the regression gate: for every paired case,
  compare the three headline qualities of the reproduction — **fold
  rate** (higher is better), **issued CPI** (lower is better) and
  **prediction accuracy** (higher is better) — and flag any that
  degraded by more than a relative threshold. ``crisp-obs gate`` turns
  the result into exit status 1; CI runs it against the committed
  ``BENCH_obs_baseline.json``.

The gate also appends to ``BENCH_table4_trajectory.json`` (one compact
entry of headline metrics per repository state), which is how the perf
trajectory stays populated PR over PR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator

#: gate metric -> +1 when higher is better, -1 when lower is better
GATE_METRICS = {
    "fold_rate": +1,
    "issued_cpi": -1,
    "prediction_accuracy": +1,
}

DEFAULT_THRESHOLD = 0.02


def parse_threshold(text: str) -> float:
    """``"2%"`` -> 0.02; ``"0.02"`` -> 0.02. Raises ValueError."""
    text = text.strip()
    scale = 1.0
    if text.endswith("%"):
        text, scale = text[:-1], 0.01
    value = float(text) * scale
    if not 0 <= value < 1:
        raise ValueError(f"threshold {value} outside [0, 1)")
    return value


# ---- deltas ----------------------------------------------------------------

@dataclass(frozen=True)
class Delta:
    """One metric's change between two runs."""

    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> float:
        """Change as a fraction of the baseline (inf from a zero base)."""
        if self.before == 0:
            return math.inf if self.after else 0.0
        return self.delta / self.before

    def as_dict(self) -> dict[str, Any]:
        relative = self.relative
        return {"metric": self.metric, "before": self.before,
                "after": self.after, "delta": self.delta,
                "relative": None if math.isinf(relative) else relative}


def _numeric_leaves(obj: Any, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Flatten nested dicts to dotted (name, number) pairs (bools skipped)."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from _numeric_leaves(value, f"{prefix}{key}.")
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        yield prefix[:-1], float(obj)


def diff_metrics(before: dict, after: dict) -> list[Delta]:
    """Deltas over the union of both documents' numeric leaves."""
    a = dict(_numeric_leaves(before))
    b = dict(_numeric_leaves(after))
    return [Delta(name, a.get(name, 0.0), b.get(name, 0.0))
            for name in sorted(a.keys() | b.keys())]


def diff_sites(before: dict[str, dict], after: dict[str, dict]
               ) -> dict[str, list[Delta]]:
    """Per-site deltas over two manifests' ``sites`` blocks (changed only)."""
    changed: dict[str, list[Delta]] = {}
    for site in sorted(before.keys() | after.keys(),
                       key=lambda key: int(key, 16)):
        deltas = [delta for delta
                  in diff_metrics(before.get(site, {}), after.get(site, {}))
                  if delta.delta]
        if deltas:
            changed[site] = deltas
    return changed


def diff_manifests(before: dict, after: dict) -> dict[str, Any]:
    """Diff two ``crisp-run-manifest`` documents."""
    metric_deltas = diff_metrics(before.get("metrics", {}),
                                 after.get("metrics", {}))
    changed = [delta for delta in metric_deltas if delta.delta]
    return {
        "workload": (before.get("workload"), after.get("workload")),
        "metrics": [delta.as_dict() for delta in changed],
        "metrics_unchanged": len(metric_deltas) - len(changed),
        "sites": {site: [delta.as_dict() for delta in deltas]
                  for site, deltas in
                  diff_sites(before.get("sites", {}),
                             after.get("sites", {})).items()},
    }


def _paired_cases(document: dict) -> list[tuple[str, dict]]:
    """(label, manifest) pairs for either supported document kind."""
    kind = document.get("kind")
    if kind == "crisp-run-manifest":
        return [(document.get("workload", "run"), document)]
    if kind == "crisp-bench-baseline":
        return [(case.get("extra", {}).get("case",
                                           case.get("workload", str(index))),
                 case)
                for index, case in enumerate(document.get("cases", ()))]
    raise ValueError(f"unsupported document kind {kind!r}")


def diff_documents(before: dict, after: dict) -> dict[str, Any]:
    """Diff two manifests or two baseline documents, case by case."""
    a_cases = dict(_paired_cases(before))
    b_cases = dict(_paired_cases(after))
    if a_cases.keys() != b_cases.keys():
        raise ValueError(
            f"case sets differ: {sorted(a_cases)} vs {sorted(b_cases)}")
    return {
        "kind": "crisp-manifest-diff",
        "cases": {label: diff_manifests(a_cases[label], b_cases[label])
                  for label in a_cases},
    }


# ---- the regression gate ---------------------------------------------------

def gate_values(metrics: dict) -> dict[str, float]:
    """The gated qualities, computed from a manifest's ``metrics`` block."""
    execution = metrics.get("execution", {})
    branches = execution.get("branches", 0)
    conditional = execution.get("conditional_branches", 0)
    mispredictions = metrics.get("mispredictions", 0)
    return {
        "fold_rate": (metrics.get("folded_branches", 0) / branches
                      if branches else 0.0),
        "issued_cpi": metrics.get("issued_cpi", 0.0),
        "prediction_accuracy": (1.0 - mispredictions / conditional
                                if conditional else 1.0),
    }


@dataclass(frozen=True)
class Regression:
    """One gated metric that degraded past the threshold."""

    case: str
    metric: str
    baseline: float
    current: float

    @property
    def relative(self) -> float:
        """Degradation as a fraction of the baseline value."""
        worsening = ((self.baseline - self.current)
                     if GATE_METRICS[self.metric] > 0
                     else (self.current - self.baseline))
        if self.baseline == 0:
            return math.inf if worsening > 0 else 0.0
        return worsening / abs(self.baseline)

    def describe(self) -> str:
        direction = ("fell" if GATE_METRICS[self.metric] > 0 else "rose")
        relative = self.relative
        percent = ("" if math.isinf(relative)
                   else f" ({100 * relative:.2f}%)")
        return (f"case {self.case}: {self.metric} {direction} "
                f"{self.baseline:.4f} -> {self.current:.4f}{percent}")


def check_gate(baseline: dict, current: dict,
               threshold: float = DEFAULT_THRESHOLD
               ) -> tuple[list[Regression], dict[str, dict[str, float]]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(regressions, checked)`` where ``checked`` maps each case
    label to its current gate values. Raises ValueError when the two
    documents' case sets cannot be paired.
    """
    base_cases = dict(_paired_cases(baseline))
    cur_cases = dict(_paired_cases(current))
    if base_cases.keys() != cur_cases.keys():
        raise ValueError(
            f"case sets differ: {sorted(base_cases)} vs {sorted(cur_cases)}")
    regressions: list[Regression] = []
    checked: dict[str, dict[str, float]] = {}
    for label in sorted(base_cases):
        base = gate_values(base_cases[label].get("metrics", {}))
        cur = gate_values(cur_cases[label].get("metrics", {}))
        checked[label] = cur
        for metric in GATE_METRICS:
            candidate = Regression(label, metric, base[metric], cur[metric])
            if candidate.relative > threshold:
                regressions.append(candidate)
    return regressions, checked


# ---- the committed perf trajectory -----------------------------------------

TRAJECTORY_KIND = "crisp-bench-trajectory"


def trajectory_entry(current: dict) -> dict[str, Any]:
    """One compact trajectory record for a gated document."""
    cases = {}
    for label, manifest in _paired_cases(current):
        metrics = manifest.get("metrics", {})
        cases[label] = {"cycles": metrics.get("cycles", 0),
                        **gate_values(metrics)}
    return {"git_sha": current.get("git_sha"), "cases": cases}


def update_trajectory(document: dict | None,
                      entry: dict[str, Any]) -> dict[str, Any]:
    """Append ``entry`` to a trajectory document (created when None).

    Re-gating the same repository state replaces the last entry instead
    of duplicating it, so repeated local runs stay idempotent.
    """
    if document is None:
        document = {"schema": 1, "kind": TRAJECTORY_KIND,
                    "bench": "table4_cases", "entries": []}
    entries = document.setdefault("entries", [])
    if (entries and entry.get("git_sha") is not None
            and entries[-1].get("git_sha") == entry["git_sha"]):
        entries[-1] = entry
    else:
        entries.append(entry)
    return document
