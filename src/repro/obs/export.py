"""Exporters: JSONL metrics dumps and Chrome/Perfetto trace-event files.

The trace exporter turns a :class:`~repro.sim.tracer.PipelineTrace` into
the Trace Event Format consumed by ``ui.perfetto.dev`` and
``chrome://tracing``: one timeline row per EU stage (IR/OR/RR), a one-
cycle slice per occupied stage slot, instant events for icache demand
misses, and a counter track of stage occupancy. Time is measured in
cycles (1 cycle = 1 "µs" on the viewer's axis). Every event carries the
``ph``/``ts``/``pid``/``tid``/``name`` quintuple, so the file is a plain
list of dicts that any trace tooling can parse.
"""

from __future__ import annotations

import json
from typing import Any, IO, Iterable

from repro.obs.events import EventBus

PID = 1
_STAGE_TIDS = (("ir", 1, "IR (fetch/decode read)"),
               ("or_", 2, "OR (operand)"),
               ("rr", 3, "RR (result/resolve)"))
_MISS_TID = 4


def _slice(name: str, ts: int, tid: int, *,
           dur: int = 1, cat: str = "stage",
           args: dict[str, Any] | None = None) -> dict[str, Any]:
    event: dict[str, Any] = {"ph": "X", "ts": ts, "dur": dur, "pid": PID,
                             "tid": tid, "name": name, "cat": cat}
    if args:
        event["args"] = args
    return event


def _metadata(name: str, tid: int, label: str) -> dict[str, Any]:
    return {"ph": "M", "ts": 0, "pid": PID, "tid": tid, "name": name,
            "args": {"name": label}}


def trace_events(records: Iterable[Any]) -> list[dict[str, Any]]:
    """Build Trace Event Format dicts from ``PipelineTrace`` records.

    ``records`` is any iterable of objects with the
    :class:`~repro.sim.tracer.CycleRecord` fields; the trace module is not
    imported so this stays usable on recorded/deserialized data too.
    """
    events: list[dict[str, Any]] = [
        _metadata("process_name", 0, "CrispCpu"),
        _metadata("thread_name", _MISS_TID, "icache demand misses"),
    ]
    for _, tid, label in _STAGE_TIDS:
        events.append(_metadata("thread_name", tid, label))

    for record in records:
        ts = record.cycle - 1  # record.cycle counts cycles *completed*
        occupied = 0
        for attr, tid, _ in _STAGE_TIDS:
            text = getattr(record, attr)
            if text == "-":
                continue
            occupied += 1
            squashed = text.startswith("x(")
            speculative = text.startswith("?")
            args: dict[str, Any] = {}
            if squashed:
                args["squashed"] = True
            if speculative:
                args["speculative"] = True
            events.append(_slice(
                text, ts, tid,
                cat="squash" if squashed else "stage",
                args=args or None))
        if record.icache_miss:
            events.append({"ph": "i", "ts": ts, "pid": PID,
                           "tid": _MISS_TID, "name": "icache miss",
                           "cat": "icache", "s": "t"})
        events.append({"ph": "C", "ts": ts, "pid": PID, "tid": 0,
                       "name": "eu_occupancy",
                       "args": {"stages": occupied}})
        if record.halted:
            events.append({"ph": "i", "ts": ts, "pid": PID, "tid": 3,
                           "name": "halt", "cat": "stage", "s": "g"})
    return events


def write_trace(path: str, records: Iterable[Any]) -> list[dict[str, Any]]:
    """Write a Perfetto-loadable JSON array of trace events to ``path``."""
    events = trace_events(records)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(events, stream)
    return events


def metrics_lines(bus: EventBus) -> list[str]:
    """One JSON object per probe: the JSONL metrics dump."""
    return [json.dumps({"probe": name, **snap})
            for name, snap in bus.snapshot().items()]


def write_metrics(path: str, bus: EventBus) -> None:
    """Dump every probe's final value as JSONL."""
    with open(path, "w", encoding="utf-8") as stream:
        for line in metrics_lines(bus):
            stream.write(line + "\n")


def event_stream_writer(stream: IO[str]):
    """A live sink writing every published probe update to ``stream``
    (convenience re-export of :class:`~repro.obs.events.JsonlSink`)."""
    from repro.obs.events import JsonlSink
    return JsonlSink(stream)
