"""Lightweight begin/end spans with process/worker track identities.

The per-cycle probes in :mod:`repro.obs.events` answer *microarchitectural*
questions about one simulated run. Spans answer the *campaign* question:
where did the wall-clock of a multi-process ``--jobs N`` sweep or fuzz run
actually go? A span is one named interval of real time (epoch seconds, so
spans recorded in different worker processes share a timeline), tagged
with a category and optional structured args.

Three pieces:

* :class:`SpanRecorder` — an append-only list of finished spans with a
  ``span(...)`` context manager and explicit ``begin``/``end`` for code
  that cannot nest cleanly.
* A per-process *active recorder* (:func:`activate` / :func:`current` /
  the module-level :func:`span` helper). Worker code instruments
  unconditionally via :func:`span`; when no campaign is recording the
  helper is a shared no-op context, so the instrumented path costs one
  global read per call site.
* :func:`campaign_trace_events` — merge scheduler spans plus per-task
  worker spans into one Chrome/Perfetto trace: ``tid 0`` is the
  scheduler track, ``tid 1..N`` one track per worker slot. Time is
  exported in microseconds relative to the campaign start, so a merged
  campaign reads like a single process on ``ui.perfetto.dev``.

Spans travel from worker processes back to the scheduler *by value*
(frozen dataclasses of primitives inside the task envelope — see
:mod:`repro.eval.parallel`), never through shared state, so recording
cannot perturb the byte-identical-output guarantee of the parallel
runner.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

#: the Perfetto "process" every campaign track lives under
CAMPAIGN_PID = 1

#: tid of the scheduler track; worker slot *k* renders as ``tid k + 1``
SCHEDULER_TID = 0


@dataclass(frozen=True)
class Span:
    """One finished interval: ``[start, end]`` in epoch seconds."""

    name: str
    start: float
    end: float
    category: str = "task"
    args: tuple[tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def args_dict(self) -> dict[str, Any]:
        return dict(self.args)

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "start": self.start, "end": self.end,
                "category": self.category, **self.args_dict()}


class SpanRecorder:
    """Collects finished spans; cheap enough to create per task.

    ``clock`` is injectable for tests; production code uses epoch time so
    spans from different processes merge onto one timeline.
    """

    def __init__(self, clock=time.time) -> None:
        self.spans: list[Span] = []
        self._clock = clock

    def begin(self) -> float:
        """Start an interval; pass the returned timestamp to :meth:`end`."""
        return self._clock()

    def end(self, name: str, started: float, category: str = "task",
            **args: Any) -> Span:
        """Finish the interval opened at ``started`` and record it."""
        span = Span(name, started, self._clock(), category,
                    tuple(sorted(args.items())))
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, category: str = "task",
             **args: Any) -> Iterator[None]:
        started = self._clock()
        try:
            yield
        finally:
            self.end(name, started, category, **args)


# ---- the per-process active recorder ---------------------------------------

_ACTIVE: SpanRecorder | None = None


def activate(recorder: SpanRecorder) -> None:
    """Make ``recorder`` the process's active span recorder."""
    global _ACTIVE
    _ACTIVE = recorder


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def current() -> SpanRecorder | None:
    """The active recorder, or None when no campaign is recording."""
    return _ACTIVE


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


def span(name: str, category: str = "task", **args: Any):
    """Record a span on the active recorder; a shared no-op otherwise.

    Worker code (fuzz tasks, sweep workers) calls this unconditionally;
    the cost with no campaign recording is one module-global read.
    """
    if _ACTIVE is None:
        return _NULL_CONTEXT
    return _ACTIVE.span(name, category, **args)


# ---- merged Perfetto export ------------------------------------------------


@dataclass
class TrackSpans:
    """The spans destined for one timeline row of the merged trace."""

    tid: int
    label: str
    spans: list[Span] = field(default_factory=list)


def worker_track_label(slot: int) -> str:
    return f"worker {slot}"


def _metadata(tid: int, label: str) -> dict[str, Any]:
    return {"ph": "M", "ts": 0, "pid": CAMPAIGN_PID, "tid": tid,
            "name": "thread_name", "args": {"name": label}}


def campaign_trace_events(tracks: Iterable[TrackSpans],
                          origin: float,
                          process_name: str = "crisp campaign"
                          ) -> list[dict[str, Any]]:
    """Merge per-track spans into Chrome Trace Event Format dicts.

    ``origin`` (epoch seconds, normally the campaign start) becomes
    ``ts == 0``; span timestamps are exported as integer microseconds
    after it. Every track gets a ``thread_name`` metadata record even
    when it recorded no spans, so a ``--jobs 4`` campaign always renders
    four worker rows — idle workers are visible as empty tracks, not
    absent ones.
    """
    events: list[dict[str, Any]] = [
        {"ph": "M", "ts": 0, "pid": CAMPAIGN_PID, "tid": 0,
         "name": "process_name", "args": {"name": process_name}},
    ]
    track_list = list(tracks)
    for track in track_list:
        events.append(_metadata(track.tid, track.label))
    for track in track_list:
        for item in track.spans:
            event: dict[str, Any] = {
                "ph": "X",
                "ts": max(0, round((item.start - origin) * 1e6)),
                "dur": max(1, round(item.duration * 1e6)),
                "pid": CAMPAIGN_PID,
                "tid": track.tid,
                "name": item.name,
                "cat": item.category,
            }
            args = item.args_dict()
            if args:
                event["args"] = args
            events.append(event)
    return events
