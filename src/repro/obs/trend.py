"""Perf-trend analytics over the committed benchmark documents.

The repository accumulates machine-readable perf history PR over PR:
``BENCH_table4_trajectory.json`` (one entry of headline Table-4 metrics
per repository state, appended by ``crisp-obs gate
--update-trajectory``), ``BENCH_throughput.json`` (the kernel-throughput
baseline) and, with this module's sibling :mod:`repro.obs.campaign`,
campaign manifests. ``crisp-obs trend`` reads them together and answers
the question the per-run gate cannot: *which way have the numbers been
moving, and did the latest state regress against the best one ever
recorded?*

The gate (:mod:`repro.obs.diff`) compares exactly two states with a
hard threshold; trend analysis looks at the whole series — direction of
each metric per case, latest-vs-previous and latest-vs-best deltas —
and renders a report with ASCII sparklines. Regression detection here is
advisory by default (``crisp-obs trend --fail-on-regression`` promotes
it to exit status 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.obs.diff import GATE_METRICS

#: metric name -> +1 when higher is better, -1 when lower is better.
#: Extends the gate metrics with the trajectory's cycle counts and the
#: throughput baseline's rates.
TREND_DIRECTIONS: dict[str, int] = {
    **GATE_METRICS,
    "cycles": -1,
    "cycles_per_sec": +1,
    "speedup": +1,
}

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """A compact shape-of-the-series rendering (empty for < 2 points)."""
    if len(values) < 2:
        return ""
    low, high = min(values), max(values)
    if math.isclose(low, high):
        return _SPARK_GLYPHS[0] * len(values)
    scale = (len(_SPARK_GLYPHS) - 1) / (high - low)
    return "".join(_SPARK_GLYPHS[round((value - low) * scale)]
                   for value in values)


@dataclass
class MetricSeries:
    """One (case, metric) series across trajectory entries."""

    case: str
    metric: str
    values: list[float] = field(default_factory=list)
    shas: list[str | None] = field(default_factory=list)

    @property
    def direction(self) -> int:
        return TREND_DIRECTIONS.get(self.metric, +1)

    @property
    def latest(self) -> float:
        return self.values[-1]

    @property
    def best(self) -> float:
        """The best value ever recorded (direction-aware)."""
        return (max if self.direction > 0 else min)(self.values)

    def _relative_worsening(self, reference: float) -> float:
        """How much worse ``latest`` is than ``reference`` (>= 0)."""
        worsening = (reference - self.latest) * self.direction
        if worsening <= 0:
            return 0.0
        if reference == 0:
            return math.inf
        return worsening / abs(reference)

    @property
    def vs_previous(self) -> float:
        """Relative worsening of the latest point vs the one before it."""
        if len(self.values) < 2:
            return 0.0
        return self._relative_worsening(self.values[-2])

    @property
    def vs_best(self) -> float:
        """Relative worsening of the latest point vs the best ever."""
        return self._relative_worsening(self.best)

    def as_dict(self) -> dict[str, Any]:
        return {"case": self.case, "metric": self.metric,
                "values": self.values, "latest": self.latest,
                "best": self.best, "vs_previous": self.vs_previous,
                "vs_best": self.vs_best}


@dataclass(frozen=True)
class TrendRegression:
    """The latest trajectory point degraded a (case, metric) series."""

    case: str
    metric: str
    reference: str  #: "previous" or "best"
    baseline: float
    latest: float
    relative: float

    def describe(self) -> str:
        direction = ("fell" if TREND_DIRECTIONS.get(self.metric, 1) > 0
                     else "rose")
        percent = ("" if math.isinf(self.relative)
                   else f" ({100 * self.relative:.2f}%)")
        return (f"case {self.case}: {self.metric} {direction} vs "
                f"{self.reference} {self.baseline:.4f} -> "
                f"{self.latest:.4f}{percent}")


def trajectory_series(document: dict) -> list[MetricSeries]:
    """Per-(case, metric) series from a trajectory document.

    Cases appear and disappear across entries as exhibits grow (the
    dynfold points joined mid-history); each series holds only the
    entries where its case was measured, in entry order.
    """
    if document.get("kind") != "crisp-bench-trajectory":
        raise ValueError(
            f"unsupported document kind {document.get('kind')!r}")
    series: dict[tuple[str, str], MetricSeries] = {}
    for entry in document.get("entries", []):
        sha = entry.get("git_sha")
        for case, metrics in sorted(entry.get("cases", {}).items()):
            for metric, value in sorted(metrics.items()):
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    continue
                key = (case, metric)
                if key not in series:
                    series[key] = MetricSeries(case, metric)
                series[key].values.append(float(value))
                series[key].shas.append(sha)
    return [series[key] for key in sorted(series)]


def detect_regressions(series: list[MetricSeries],
                       threshold: float = 0.02) -> list[TrendRegression]:
    """Series whose latest point is worse than previous or best.

    A vs-best finding subsumes a vs-previous one for the same series, so
    each (case, metric) contributes at most one regression — against the
    stronger reference.
    """
    regressions: list[TrendRegression] = []
    for item in series:
        if item.vs_best > threshold:
            regressions.append(TrendRegression(
                item.case, item.metric, "best", item.best, item.latest,
                item.vs_best))
        elif item.vs_previous > threshold:
            regressions.append(TrendRegression(
                item.case, item.metric, "previous", item.values[-2],
                item.latest, item.vs_previous))
    return regressions


def throughput_rows(document: dict) -> list[dict[str, Any]]:
    """Flatten a ``crisp-bench-baseline`` throughput doc to report rows."""
    rows = []
    for case in document.get("cases", []):
        label = case.get("extra", {}).get("case", case.get("workload", "?"))
        for metric, value in sorted(case.get("metrics", {}).items()):
            rows.append({"case": label, "metric": metric, "value": value})
    return rows


def campaign_rows(documents: list[dict]) -> list[dict[str, Any]]:
    """Headline totals of each campaign manifest, for the report."""
    rows = []
    for document in documents:
        totals = document.get("totals", {})
        rows.append({
            "campaign": document.get("campaign", "?"),
            "tasks": totals.get("tasks", 0),
            "failed": totals.get("failed", 0),
            "retried": totals.get("retried", 0),
            "campaign_wall": totals.get("campaign_wall", 0.0),
            "parallel_efficiency": totals.get("parallel_efficiency"),
            "cache_hit_rate": totals.get("cache_hit_rate"),
        })
    return rows


def trend_document(trajectory: dict | None = None,
                   throughput: dict | None = None,
                   campaigns: list[dict] | None = None,
                   threshold: float = 0.02) -> dict[str, Any]:
    """The machine-readable trend analysis (``crisp-obs trend --json``)."""
    series = trajectory_series(trajectory) if trajectory else []
    regressions = detect_regressions(series, threshold)
    return {
        "kind": "crisp-trend-report",
        "threshold": threshold,
        "series": [item.as_dict() for item in series],
        "regressions": [{"case": item.case, "metric": item.metric,
                         "reference": item.reference,
                         "baseline": item.baseline, "latest": item.latest,
                         "relative": None if math.isinf(item.relative)
                         else item.relative}
                        for item in regressions],
        "throughput": throughput_rows(throughput) if throughput else [],
        "campaigns": campaign_rows(campaigns or []),
    }


def render_trend_report(trajectory: dict | None = None,
                        throughput: dict | None = None,
                        campaigns: list[dict] | None = None,
                        threshold: float = 0.02) -> str:
    """The human-readable markdown trend report."""
    lines = ["# CRISP perf trend", ""]
    series = trajectory_series(trajectory) if trajectory else []
    regressions = detect_regressions(series, threshold)

    if series:
        entries = max(len(item.values) for item in series)
        lines += [f"## Table-4 trajectory ({entries} entries)", "",
                  "| case | metric | trend | latest | best | vs best |",
                  "|---|---|---|---|---|---|"]
        for item in series:
            flag = " ⚠" if item.vs_best > threshold else ""
            lines.append(
                f"| {item.case} | {item.metric} | {sparkline(item.values)} "
                f"| {item.latest:.4g} | {item.best:.4g} "
                f"| {100 * item.vs_best:+.2f}%{flag} |")
        lines.append("")

    lines.append(f"## Regressions (> {100 * threshold:g}% vs best or "
                 f"previous)")
    lines.append("")
    if regressions:
        lines += [f"- {item.describe()}" for item in regressions]
    else:
        lines.append("none — every series is at or near its best "
                     "recorded value")
    lines.append("")

    if throughput:
        lines += ["## Kernel throughput baseline", "",
                  "| case | metric | value |", "|---|---|---|"]
        for row in throughput_rows(throughput):
            lines.append(f"| {row['case']} | {row['metric']} "
                         f"| {row['value']:g} |")
        lines.append("")

    if campaigns:
        lines += ["## Recent campaigns", "",
                  "| campaign | tasks | failed | retried | wall (s) "
                  "| efficiency | cache hit rate |",
                  "|---|---|---|---|---|---|---|"]
        for row in campaign_rows(campaigns):
            efficiency = ("-" if row["parallel_efficiency"] is None
                          else f"{100 * row['parallel_efficiency']:.0f}%")
            hit_rate = ("-" if row["cache_hit_rate"] is None
                        else f"{100 * row['cache_hit_rate']:.0f}%")
            lines.append(
                f"| {row['campaign']} | {row['tasks']} | {row['failed']} "
                f"| {row['retried']} | {row['campaign_wall']:.1f} "
                f"| {efficiency} | {hit_rate} |")
        lines.append("")
    return "\n".join(lines)
