"""Unified telemetry: the ``repro.obs`` event bus and its exporters.

Every simulator component publishes named probes — counters, gauges and
histograms — to an :class:`~repro.obs.events.EventBus`. With no sink
attached the bus is a handful of integer updates per *event* (never per
cycle), cheap enough to leave on permanently
(``benchmarks/bench_obs_overhead.py`` guards the cost); attach a sink and
every probe update becomes a structured record.

Exporters (:mod:`repro.obs.export`) turn a run into machine-readable
artefacts: a JSONL metrics dump, a Chrome/Perfetto trace-event file built
from :class:`~repro.sim.tracer.PipelineTrace`, and a run manifest
(:mod:`repro.obs.manifest`) capturing config, workload, git SHA and final
metrics in one JSON document. ``crisp-obs`` (:mod:`repro.obs.cli`) drives
all of it from the command line.

Only the lightweight core is imported here; exporters and the CLI import
the simulator and are loaded on demand.
"""

from repro.obs.events import (
    Counter,
    EventBus,
    Gauge,
    Histogram,
    JsonlSink,
    MemorySink,
    NULL_BUS,
)
from repro.obs.registry import CATALOGUE, ProbeSpec, spec_for

__all__ = [
    "CATALOGUE",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "NULL_BUS",
    "ProbeSpec",
    "spec_for",
]
