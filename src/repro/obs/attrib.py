"""Per-static-branch-site attribution: the paper's tables, per PC.

Whole-run aggregates say *how many* branches folded or mispredicted;
this module says *which ones*. An :class:`AttributionSink` attached to a
run's :class:`~repro.obs.events.EventBus` folds the site-keyed events the
simulator publishes (``site=`` fields on the EU, PDU and cache probes)
into one :class:`SiteStats` row per static site, keyed by byte address:

* **branch sites** (keyed by the branch instruction's own PC, stable
  across folding): executions, taken count, fold count, CC-interlock
  speculations, mispredictions, recovery-penalty cycles, zero-cost
  prediction-bit overrides;
* **fetch/decode sites** (keyed by the decoded-entry address): decode
  count and demand-miss count.

Per-site counters reconcile *exactly* with the run's
:class:`~repro.sim.stats.PipelineStats` (:meth:`AttributionTable.reconcile`
returns the discrepancies; the test suite asserts there are none on all
Table-4 cases). :func:`annotate_listing` renders the table as a
"perf annotate"-style margin over the program's disassembly — and over
mini-C source lines when :func:`repro.lang.compile_with_debug` line-table
debug info is supplied.

Speculation bookkeeping: ``speculations`` and ``mispredicts`` both count
wrong-path slots that are later squashed (a speculative fetch is charged
when it happens, a mispredict when it resolves), so the per-site
prediction-bit hit rate ``1 - mispredicts / speculations`` is measured
over the same event population.

Event vocabularies: this is the *microarchitectural* stream — the
canonical one attribution consumes. The older
:class:`repro.trace.events.BranchEvent` vocabulary is *architectural*
(one record per dynamic branch, no pipeline context); tapes in that
format can still seed a table via :func:`table_from_branch_events`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Iterable

from repro.obs.events import EventBus


@dataclass(slots=True)
class SiteStats:
    """Attribution counters for one static site (one byte address)."""

    pc: int
    executions: int = 0  #: branch retirements at this site
    taken: int = 0  #: retirements that transferred control
    folded: int = 0  #: retirements where the branch was folded
    speculations: int = 0  #: fetches forced to trust the prediction bit
    mispredicts: int = 0  #: wrong-path resolutions charged to this site
    penalty_cycles: int = 0  #: recovery bubbles charged to this site
    overrides: int = 0  #: free fetch-time corrections of a wrong bit
    dynamic_folds: int = 0  #: dynamic-confidence fold engagements
    verify_fails: int = 0  #: shadow verifications that failed (recoveries)
    recovery_cycles: int = 0  #: flush bubbles charged to those recoveries
    decodes: int = 0  #: PDU decodes of the entry at this address
    icache_misses: int = 0  #: EU demand misses at this address

    @property
    def is_branch_site(self) -> bool:
        return self.executions > 0 or self.mispredicts > 0

    @property
    def fold_rate(self) -> float:
        """Fraction of this site's executions that folded away."""
        return self.folded / self.executions if self.executions else 0.0

    @property
    def prediction_hit_rate(self) -> float:
        """Prediction-bit accuracy over this site's speculative fetches."""
        if not self.speculations:
            return 1.0
        return 1.0 - self.mispredicts / self.speculations

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    def as_dict(self) -> dict[str, int]:
        """Nonzero counters only — the manifest/JSON representation."""
        return {field.name: value
                for field in fields(self)
                if field.name != "pc"
                and (value := getattr(self, field.name))}

    @classmethod
    def from_dict(cls, pc: int, data: dict[str, Any]) -> "SiteStats":
        known = {field.name for field in fields(cls)}
        return cls(pc=pc, **{key: value for key, value in data.items()
                             if key in known and key != "pc"})


# Per-probe updaters: one plain function per counter, dispatched once by
# probe name. The sink's handle() runs once per site-keyed event on an
# instrumented run, so it avoids the per-event getattr/setattr dance — a
# direct attribute add on the (slotted) row is all that remains.

def _upd_executed(row: SiteStats, delta: int, event: dict) -> None:
    row.executions += delta
    if event.get("taken"):
        row.taken += delta


def _upd_folded(row: SiteStats, delta: int, event: dict) -> None:
    row.folded += delta


def _upd_speculations(row: SiteStats, delta: int, event: dict) -> None:
    row.speculations += delta


def _upd_mispredicts(row: SiteStats, delta: int, event: dict) -> None:
    row.mispredicts += delta


def _upd_penalty(row: SiteStats, delta: int, event: dict) -> None:
    row.penalty_cycles += delta


def _upd_overrides(row: SiteStats, delta: int, event: dict) -> None:
    row.overrides += delta


def _upd_dynamic_folds(row: SiteStats, delta: int, event: dict) -> None:
    row.dynamic_folds += delta


def _upd_verify_fails(row: SiteStats, delta: int, event: dict) -> None:
    row.verify_fails += delta


def _upd_recovery(row: SiteStats, delta: int, event: dict) -> None:
    row.recovery_cycles += delta


def _upd_decodes(row: SiteStats, delta: int, event: dict) -> None:
    row.decodes += delta


def _upd_icache_misses(row: SiteStats, delta: int, event: dict) -> None:
    row.icache_misses += delta


#: probe -> updater applying that probe's event delta to a site row
_PROBE_UPDATERS = {
    "branch.executed": _upd_executed,
    "fold.succeeded": _upd_folded,
    "cc.interlock": _upd_speculations,
    "mispredict.count": _upd_mispredicts,
    "mispredict.penalty_cycles": _upd_penalty,
    "zero_cost.overrides": _upd_overrides,
    "fold.dynamic": _upd_dynamic_folds,
    "fold.verify_fail": _upd_verify_fails,
    "recovery.flush_cycles": _upd_recovery,
    "pdu.decoded": _upd_decodes,
    "icache.demand_miss": _upd_icache_misses,
}


class AttributionTable:
    """All sites of one run, keyed by byte address."""

    def __init__(self) -> None:
        self.sites: dict[int, SiteStats] = {}

    def site(self, pc: int) -> SiteStats:
        """Get or create the row for ``pc``."""
        row = self.sites.get(pc)
        if row is None:
            row = self.sites[pc] = SiteStats(pc)
        return row

    def branch_sites(self) -> list[SiteStats]:
        """Rows that retired at least one branch, address-ordered."""
        return [row for pc, row in sorted(self.sites.items())
                if row.is_branch_site]

    def totals(self) -> dict[str, int]:
        """Column sums over every site — what reconciliation checks."""
        keys = ("executions", "taken", "folded", "speculations",
                "mispredicts", "penalty_cycles", "overrides",
                "dynamic_folds", "verify_fails", "recovery_cycles",
                "decodes", "icache_misses")
        totals = dict.fromkeys(keys, 0)
        for row in self.sites.values():
            for key in keys:
                totals[key] += getattr(row, key)
        return totals

    def reconcile(self, stats) -> list[str]:
        """Mismatches between per-site sums and ``PipelineStats``.

        Empty means the attribution accounts for every aggregate event —
        the acceptance property the test suite enforces per Table-4 case.
        """
        totals = self.totals()
        expected = (
            ("executions", stats.execution.branches),
            ("taken", stats.execution.taken_branches),
            ("folded", stats.folded_branches),
            ("mispredicts", stats.mispredictions),
            ("penalty_cycles", stats.misprediction_penalty_cycles),
            ("overrides", stats.zero_cost_overrides),
            ("dynamic_folds", stats.dynamic_folds),
            ("verify_fails", stats.folded_mispredicts),
            ("recovery_cycles", stats.recovery_flush_cycles),
            ("icache_misses", stats.icache_misses),
        )
        return [f"{key}: per-site sum {totals[key]} != aggregate {value}"
                for key, value in expected if totals[key] != value]

    def as_dict(self) -> dict[str, dict[str, int]]:
        """JSON-ready view: hex-address keys, nonzero counters only."""
        return {f"{pc:#x}": row.as_dict()
                for pc, row in sorted(self.sites.items())
                if row.as_dict()}

    @classmethod
    def from_dict(cls, data: dict[str, dict[str, Any]]
                  ) -> "AttributionTable":
        table = cls()
        for key, row in data.items():
            pc = int(key, 16)
            table.sites[pc] = SiteStats.from_dict(pc, row)
        return table


class AttributionSink:
    """Bus sink aggregating site-keyed probe events into a table."""

    def __init__(self, table: AttributionTable | None = None) -> None:
        self.table = table if table is not None else AttributionTable()

    def handle(self, event: dict[str, Any]) -> None:
        updater = _PROBE_UPDATERS.get(event.get("probe"))
        if updater is None:
            return
        site = event.get("site")
        if site is None:
            return
        updater(self.table.site(site), event.get("delta", 1), event)


def attribute_run(program, config=None, obs: EventBus | None = None,
                  max_cycles: int = 50_000_000):
    """Run ``program`` on the cycle-accurate machine with attribution.

    Returns ``(cpu, table)``. A fresh bus is created unless one is passed
    (e.g. to keep compiler-pass probes in the same namespace). The sink
    is detached afterwards, so the bus can be snapshot without replaying.
    """
    from repro.sim.cpu import CrispCpu

    if obs is None:
        obs = EventBus()
    sink = AttributionSink()
    obs.attach(sink)
    try:
        cpu = CrispCpu(program, config, obs=obs)
        cpu.run(max_cycles)
    finally:
        obs.detach(sink)
    return cpu, sink.table


def table_from_branch_events(events: Iterable) -> AttributionTable:
    """Adapt the architectural :mod:`repro.trace` vocabulary.

    A :class:`~repro.trace.events.BranchEvent` tape carries only PC,
    outcome and conditionality, so the resulting rows have executions and
    taken counts — enough to locate hot sites in a prediction study, with
    the microarchitectural columns left at zero.
    """
    table = AttributionTable()
    for event in events:
        row = table.site(event.pc)
        row.executions += 1
        if event.taken:
            row.taken += 1
    return table


# ---- rendering ------------------------------------------------------------

_HEADER = (f"{'execs':>8} {'fold%':>6} {'pred%':>6} {'ovrd':>5} "
           f"{'penalty':>8} {'miss':>5}")
_MARGIN_WIDTH = len(_HEADER)


def _margin(row: SiteStats | None) -> str:
    if row is None:
        return ""
    cells: list[str] = []
    if row.is_branch_site:
        cells.append(f"{row.executions:>8}")
        cells.append(f"{100 * row.fold_rate:>6.1f}")
        cells.append(f"{100 * row.prediction_hit_rate:>6.1f}"
                     if row.speculations else f"{'-':>6}")
        cells.append(f"{row.overrides:>5}")
        cells.append(f"{row.penalty_cycles:>8}")
    else:
        cells.append(f"{'':>8} {'':>6} {'':>6} {'':>5} {'':>8}")
    cells.append(f"{row.icache_misses:>5}" if row.icache_misses
                 else f"{'':>5}")
    return " ".join(cells)


def annotate_listing(program, table: AttributionTable,
                     debug=None) -> str:
    """Render the per-site table as an annotated disassembly listing.

    With ``debug`` (a :class:`repro.lang.DebugInfo`), each run of
    instructions lowered from the same mini-C line is preceded by that
    source line — ``perf annotate`` over the original program text.
    """
    from repro.asm.disassembler import annotated_listing as asm_listing

    last_line: list[int | None] = [None]

    def interleave(address: int) -> list[str]:
        if debug is None:
            return []
        line = debug.line_at(address)
        if line is None or line == last_line[0]:
            return []
        last_line[0] = line
        return [f"; L{line}: {debug.source_line(line)}"]

    lines = [f"{_HEADER}  address  instruction"]
    lines.extend(asm_listing(program, lambda pc: _margin(table.sites.get(pc)),
                             margin_width=_MARGIN_WIDTH,
                             interleave=interleave))
    totals = table.totals()
    lines.append("")
    lines.append(
        f"totals: {totals['executions']} branch executions, "
        f"{totals['folded']} folded, {totals['mispredicts']} mispredicted "
        f"({totals['penalty_cycles']} penalty cycles), "
        f"{totals['overrides']} zero-cost overrides, "
        f"{totals['speculations']} CC-interlock speculations, "
        f"{totals['icache_misses']} demand misses")
    return "\n".join(lines)
