"""The probe catalogue: every canonical probe name, typed and documented.

Components may create ad-hoc probes, but everything the simulator,
predictor harness and compiler passes publish is declared here so tooling
(the manifest writer, the docs, dashboards diffing two runs) can rely on
stable names and meanings. ``docs/observability.md`` renders this
catalogue; a consistency test keeps the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import EventBus


@dataclass(frozen=True)
class ProbeSpec:
    """Declaration of one canonical probe."""

    name: str
    kind: str  #: "counter" | "gauge" | "histogram"
    unit: str
    description: str


CATALOGUE: tuple[ProbeSpec, ...] = (
    # ---- execution unit ----------------------------------------------------
    ProbeSpec("branch.executed", "counter", "branches",
              "Branches retired by the EU (folded or not)."),
    ProbeSpec("fold.succeeded", "counter", "branches",
              "Executed branches that were folded — never occupied an EU "
              "slot. Reconciles with PipelineStats.folded_branches."),
    ProbeSpec("mispredict.count", "counter", "events",
              "Wrong-path branch resolutions. Reconciles with "
              "PipelineStats.mispredictions."),
    ProbeSpec("mispredict.penalty_cycles", "counter", "cycles",
              "Recovery bubbles charged to mispredictions (3/2/1 by "
              "resolving stage)."),
    ProbeSpec("squash.slots", "counter", "slots",
              "Pipeline slots invalidated by recovery or interrupts. "
              "Reconciles with PipelineStats.squashed_slots."),
    ProbeSpec("zero_cost.overrides", "counter", "branches",
              "Fetch-time flag reads that overrode a wrong prediction bit "
              "for free (what Branch Spreading engineers)."),
    ProbeSpec("cc.interlock", "counter", "branches",
              "Conditional-branch fetches forced to speculate because the "
              "governing condition-code write was still in the pipeline "
              "(includes wrong-path fetches later squashed)."),
    ProbeSpec("eu.interrupts", "counter", "events",
              "Precise interrupts delivered to the EU."),
    ProbeSpec("fold.dynamic", "counter", "branches",
              "Dynamic-confidence fold engagements: interlocked "
              "conditional folds run down the predicted-taken path under "
              "a shadow verification record. Includes wrong-path "
              "engagements later squashed."),
    ProbeSpec("fold.verify_fail", "counter", "events",
              "Shadow verifications that failed at resolution (the real "
              "condition disagreed with the engaged prediction), forcing "
              "a flush-and-refetch recovery. forced=True marks faults "
              "injected by --inject always-wrong."),
    ProbeSpec("recovery.flush_cycles", "counter", "cycles",
              "Bubbles charged to dynamic-fold recoveries (the "
              "folded-mispredict share of mispredict.penalty_cycles). "
              "Reconciles with PipelineStats.recovery_flush_cycles."),
    # ---- decoded instruction cache ----------------------------------------
    ProbeSpec("icache.demand_hit", "counter", "fetches",
              "EU fetches served directly by the Decoded Instruction "
              "Cache."),
    ProbeSpec("icache.demand_miss", "counter", "fetches",
              "EU fetches that missed and raised a PDU demand. Reconciles "
              "with PipelineStats.icache_misses."),
    ProbeSpec("icache.miss.latency", "histogram", "cycles",
              "Cycles from a demand miss to the first hit at that address "
              "(the EU-visible fill latency)."),
    ProbeSpec("icache.fills", "counter", "entries",
              "Decoded entries written into the cache."),
    ProbeSpec("icache.conflict_evictions", "counter", "entries",
              "Fills that displaced a live entry with a different tag "
              "(direct-mapped conflicts)."),
    # ---- prefetch/decode unit ---------------------------------------------
    ProbeSpec("pdu.decoded", "counter", "entries",
              "Entries decoded by the PDR stage."),
    ProbeSpec("fold.attempted", "counter", "entries",
              "Decodes where the folder peeked past a non-branch body "
              "looking for a foldable branch."),
    ProbeSpec("fold.decoded", "counter", "entries",
              "Decodes that produced a folded (body + branch) entry."),
    ProbeSpec("pdu.memory_accesses", "counter", "accesses",
              "Four-parcel instruction-memory fetches issued."),
    ProbeSpec("pdu.queue.depth", "gauge", "parcels",
              "Instruction-queue occupancy, sampled when a fetch lands."),
    ProbeSpec("pdu.prefetch.ahead", "gauge", "entries",
              "How far decode ran past the last EU demand, sampled per "
              "decode."),
    # ---- program decode cache ----------------------------------------------
    ProbeSpec("progcache.quarantined", "counter", "entries",
              "Disk-tier cache entries whose content hash failed to "
              "verify on load; the file is renamed aside and the program "
              "is re-decoded."),
    # ---- prediction harness -----------------------------------------------
    ProbeSpec("predict.events", "counter", "branches",
              "Dynamic branch events scored by the prediction study."),
    # ---- compiler passes ---------------------------------------------------
    ProbeSpec("spread.moved", "counter", "instructions",
              "Instructions relocated by the Branch Spreading pass."),
    ProbeSpec("spread.distance", "histogram", "instructions",
              "Final compare-to-branch gap at each spreading site."),
    ProbeSpec("predict.bits_set", "counter", "branches",
              "Conditional branches whose static prediction bit was "
              "assigned."),
    ProbeSpec("predict.bit_flips", "counter", "branches",
              "Assignments that changed the branch's existing bit."),
)

_BY_NAME = {spec.name: spec for spec in CATALOGUE}


def spec_for(name: str) -> ProbeSpec | None:
    """Catalogue entry for ``name``, or None for ad-hoc probes."""
    return _BY_NAME.get(name)


def validate(bus: EventBus) -> list[str]:
    """Probe names on ``bus`` whose kind disagrees with the catalogue.

    Ad-hoc (uncatalogued) probes are allowed and not reported.
    """
    problems = []
    for name, probe in bus.probes.items():
        spec = _BY_NAME.get(name)
        if spec is not None and spec.kind != probe.kind:
            problems.append(f"{name}: declared {spec.kind}, got {probe.kind}")
    return problems


def catalogue_rows() -> list[tuple[str, str, str, str]]:
    """(name, kind, unit, description) rows for docs and ``--probes``."""
    return [(s.name, s.kind, s.unit, s.description) for s in CATALOGUE]
