"""The run manifest: one JSON document describing one simulated run.

A manifest captures everything needed to compare runs over time — the
machine configuration (:class:`~repro.sim.cpu.CpuConfig` including the
fold policy), the workload identity, the repository git SHA, the final
:class:`~repro.sim.stats.PipelineStats` metrics and the telemetry probe
snapshot. ``BENCH_obs_baseline.json`` (the perf-trajectory seed) is a
list of these, one per Table-4 case.

Schema (``schema`` = 1)::

    {
      "schema": 1,
      "kind": "crisp-run-manifest",
      "workload": "figure3",
      "git_sha": "..." | null,
      "config": {"icache_entries": ..., "fold_policy": {...}, ...},
      "metrics": PipelineStats.as_dict(),
      "probes": EventBus.snapshot(),
      "extra": {...}
    }
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any

from repro.obs.events import EventBus
from repro.sim.cpu import CpuConfig, CrispCpu
from repro.sim.stats import PipelineStats

SCHEMA_VERSION = 1
MANIFEST_KIND = "crisp-run-manifest"


def git_sha() -> str | None:
    """The repository HEAD this run was produced from, if discoverable."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def config_dict(config: CpuConfig) -> dict[str, Any]:
    """JSON-ready view of a machine configuration."""
    policy = config.fold_policy
    return {
        "icache_entries": config.icache_entries,
        "mem_latency": config.mem_latency,
        "decode_latency": config.decode_latency,
        "prefetch_depth": config.prefetch_depth,
        "fold_policy": {
            "enabled": policy.enabled,
            "body_lengths": sorted(policy.body_lengths),
            "branch_lengths": sorted(policy.branch_lengths),
            "fold_calls": policy.fold_calls,
            "next_address_fields": policy.next_address_fields,
        },
    }


def build_manifest(workload: str, config: CpuConfig,
                   stats: PipelineStats,
                   obs: EventBus | None = None,
                   extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """Assemble the manifest document for one finished run."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "workload": workload,
        "git_sha": git_sha(),
        "config": config_dict(config),
        "metrics": stats.as_dict(),
        "probes": obs.snapshot() if obs is not None else {},
        "extra": extra or {},
    }


def manifest_for_cpu(workload: str, cpu: CrispCpu,
                     extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """Manifest for a run that finished on ``cpu``."""
    return build_manifest(workload, cpu.config, cpu.stats, cpu.obs, extra)


def write_manifest(path: str, manifest: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(manifest, stream, indent=2, sort_keys=True)
        stream.write("\n")


def table4_baseline() -> dict[str, Any]:
    """Manifests for the Table-4 cases A–E: the perf-trajectory seed.

    Future PRs diff their own manifests against this document to prove a
    speedup (or catch a regression) per case.
    """
    from repro.core.policy import FoldPolicy
    from repro.eval.table4 import CASE_DEFINITIONS, run_case

    cases = []
    for case in CASE_DEFINITIONS:
        stats = run_case(case)
        config = CpuConfig(fold_policy=(FoldPolicy.crisp() if case.folding
                                        else FoldPolicy.none()))
        cases.append(build_manifest(
            f"figure3/case_{case.name}", config, stats,
            extra={"case": case.name, "folding": case.folding,
                   "prediction": case.prediction,
                   "spreading": case.spreading}))
    return {
        "schema": SCHEMA_VERSION,
        "kind": "crisp-bench-baseline",
        "bench": "table4_cases",
        "git_sha": git_sha(),
        "cases": cases,
    }
