"""The run manifest: one JSON document describing one simulated run.

A manifest captures everything needed to compare runs over time — the
machine configuration (:class:`~repro.sim.cpu.CpuConfig` including the
fold policy), the workload identity, the repository git SHA, the final
:class:`~repro.sim.stats.PipelineStats` metrics and the telemetry probe
snapshot. ``BENCH_obs_baseline.json`` (the perf-trajectory seed) is a
list of these, one per Table-4 case.

Schema (``schema`` = 3; version 1 lacked ``sites``, version 2 lacked
the histogram percentile fields ``p50``/``p90``/``p99`` inside
``probes``)::

    {
      "schema": 3,
      "kind": "crisp-run-manifest",
      "workload": "figure3",
      "git_sha": "..." | null,
      "config": {"icache_entries": ..., "fold_policy": {...}, ...},
      "metrics": PipelineStats.as_dict(),
      "probes": EventBus.snapshot(),
      "sites": AttributionTable.as_dict(),   # {} when not attributed
      "extra": {...}
    }

``sites`` keys are hex byte addresses; values are the nonzero per-site
counters of :class:`repro.obs.attrib.SiteStats`. Readers must treat the
block as optional — version-1 documents (and unattributed runs) carry
``{}`` — which keeps `crisp-obs diff`/`gate` usable across versions.
:func:`read_manifest` accepts every schema up to the current one
(documents written before the percentile fields existed still load; the
fields are simply absent) and rejects documents from a *newer* writer,
where silent misreads would be possible.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any

from repro.obs.events import EventBus
from repro.sim.cpu import CpuConfig, CrispCpu
from repro.sim.stats import PipelineStats

SCHEMA_VERSION = 3
MANIFEST_KIND = "crisp-run-manifest"

#: kinds whose ``schema`` field follows the run-manifest versioning
VERSIONED_KINDS = (MANIFEST_KIND, "crisp-bench-baseline")


def git_sha() -> str | None:
    """The repository HEAD this run was produced from, if discoverable."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def config_dict(config: CpuConfig) -> dict[str, Any]:
    """JSON-ready view of a machine configuration."""
    policy = config.fold_policy
    return {
        "icache_entries": config.icache_entries,
        "mem_latency": config.mem_latency,
        "decode_latency": config.decode_latency,
        "prefetch_depth": config.prefetch_depth,
        "engine": getattr(config, "engine", "fast"),
        "fold_policy": {
            "enabled": policy.enabled,
            "body_lengths": sorted(policy.body_lengths),
            "branch_lengths": sorted(policy.branch_lengths),
            "fold_calls": policy.fold_calls,
            "next_address_fields": policy.next_address_fields,
            "dynamic_fold": policy.dynamic_fold,
            "dyn_confidence": policy.dyn_confidence,
            "dyn_predictor": policy.dyn_predictor,
        },
    }


def build_manifest(workload: str, config: CpuConfig,
                   stats: PipelineStats,
                   obs: EventBus | None = None,
                   extra: dict[str, Any] | None = None,
                   sites: dict[str, Any] | None = None) -> dict[str, Any]:
    """Assemble the manifest document for one finished run.

    ``sites`` is an :meth:`repro.obs.attrib.AttributionTable.as_dict`
    block when the run was attributed, ``{}`` otherwise.
    """
    return {
        "schema": SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "workload": workload,
        "git_sha": git_sha(),
        "config": config_dict(config),
        "metrics": stats.as_dict(),
        "probes": obs.snapshot() if obs is not None else {},
        "sites": sites or {},
        "extra": extra or {},
    }


def manifest_for_cpu(workload: str, cpu: CrispCpu,
                     extra: dict[str, Any] | None = None,
                     sites: dict[str, Any] | None = None) -> dict[str, Any]:
    """Manifest for a run that finished on ``cpu``."""
    return build_manifest(workload, cpu.config, cpu.stats, cpu.obs, extra,
                          sites)


def read_manifest(path: str) -> dict[str, Any]:
    """Load a manifest (or baseline/trajectory) JSON document.

    Older schemas load unchanged — a schema-2 document simply lacks the
    histogram percentile fields schema 3 added — but a manifest written
    by a *newer* schema than this reader knows is rejected, because its
    fields could be silently misread.
    """
    with open(path, "r", encoding="utf-8") as stream:
        document = json.load(stream)
    if isinstance(document, dict) \
            and document.get("kind") in VERSIONED_KINDS \
            and isinstance(document.get("schema"), int) \
            and document["schema"] > SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {document['schema']} is newer than this "
            f"reader (max {SCHEMA_VERSION})")
    return document


def write_manifest(path: str, manifest: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(manifest, stream, indent=2, sort_keys=True)
        stream.write("\n")


def _baseline_case(label: str) -> dict[str, Any]:
    """One attributed Table-4 case manifest (parallel-runner worker).

    ``label`` is either a bare case name (``"D"``) or a dynfold-exhibit
    point (``"D/dyn2"`` — case D's compilation under
    ``FoldPolicy.dynamic(confidence=2)``). Workers rebuild the program
    from the case definition (compiles hit the content-hash cache), so
    the manifest a worker returns is exactly the manifest the serial
    loop would have built — including the ``git_sha`` field, which is a
    repository property, not a process property.
    """
    from repro.eval.table4 import (
        CASE_DEFINITIONS,
        case_program_config,
        dynfold_case_config,
    )
    from repro.obs.attrib import attribute_run

    case_name, _, variant = label.partition("/")
    case = next(c for c in CASE_DEFINITIONS if c.name == case_name)
    if variant:
        confidence = int(variant.removeprefix("dyn"))
        program, config = dynfold_case_config(case, confidence)
    else:
        confidence = None
        program, config = case_program_config(case)
    cpu, table = attribute_run(program, config)
    return build_manifest(
        f"figure3/case_{label}", config, cpu.stats, cpu.obs,
        extra={"case": label, "folding": case.folding,
               "prediction": case.prediction,
               "spreading": case.spreading,
               "dyn_confidence": confidence},
        sites=table.as_dict())


def baseline_labels() -> list[str]:
    """Every baseline case label: A–E plus the dynfold-exhibit points."""
    from repro.eval.table4 import CASE_DEFINITIONS, DYNFOLD_VARIANTS

    labels = [case.name for case in CASE_DEFINITIONS]
    labels += [f"{case.name}/dyn{confidence}"
               for case in CASE_DEFINITIONS
               for _label, confidence in DYNFOLD_VARIANTS
               if confidence is not None]
    return labels


def table4_baseline(jobs: int | None = None,
                    recorder=None) -> dict[str, Any]:
    """Manifests for the Table-4 cases A–E (plus the dynamic-fold
    exhibit points): the perf-trajectory seed.

    Each case runs with per-site attribution attached, so the baseline
    carries the ``sites`` blocks future PRs diff against (``crisp-obs
    diff``) and the gate metrics ``crisp-obs gate`` checks. ``jobs``
    fans the cases out over worker processes; the merged document is
    byte-identical to a serial run (ordered merge, deterministic
    simulation — see :mod:`repro.eval.parallel`). ``recorder`` collects
    out-of-band campaign telemetry without touching the document.
    """
    from repro.eval.parallel import map_ordered

    cases = map_ordered(_baseline_case, baseline_labels(), jobs,
                        recorder=recorder,
                        labeler=lambda label: f"baseline/{label}")
    return {
        "schema": SCHEMA_VERSION,
        "kind": "crisp-bench-baseline",
        "bench": "table4_cases",
        "git_sha": git_sha(),
        "cases": cases,
    }
