"""The structured event bus: named probes plus pluggable sinks.

Design goals, in order:

1. **Near-zero cost with no sink attached.** A probe update on a sink-less
   bus is one attribute store and one falsy check; a probe on a *disabled*
   bus is a shared no-op object. Components therefore instrument
   unconditionally and let the bus decide what telemetry costs.
2. **One namespace per run.** Each :class:`~repro.sim.cpu.CrispCpu` owns a
   bus, so probe values reconcile exactly with that run's
   :class:`~repro.sim.stats.PipelineStats` (a cross-check the test suite
   enforces).
3. **Structured, replayable output.** With a sink attached every update is
   delivered as a flat dict — append them to a list, a JSONL file, or
   anything implementing ``handle(event)``.

The canonical probe names and their meanings live in
:mod:`repro.obs.registry`.
"""

from __future__ import annotations

import json
from typing import Any, Callable, IO, Iterable


class _NullProbe:
    """Shared no-op probe handed out by a disabled bus."""

    __slots__ = ()

    name = "<null>"
    value = 0
    count = 0

    def inc(self, amount: int = 1, **fields: Any) -> None:
        pass

    def add(self, amount: int = 1) -> None:
        pass

    def set(self, value: float, **fields: Any) -> None:
        pass

    def set_fast(self, value: float) -> None:
        pass

    def observe(self, value: float, **fields: Any) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}


_NULL_PROBE = _NullProbe()


class Counter:
    """Monotonically increasing event count."""

    kind = "counter"
    __slots__ = ("name", "value", "_bus")

    def __init__(self, name: str, bus: "EventBus") -> None:
        self.name = name
        self.value = 0
        self._bus = bus

    def inc(self, amount: int = 1, **fields: Any) -> None:
        self.value += amount
        if self._bus._sinks:
            self._bus._publish(self.name, "counter",
                               {"value": self.value, "delta": amount,
                                **fields})

    def add(self, amount: int = 1) -> None:
        """Field-less :meth:`inc` — the hot-loop form.

        Behaviourally identical to ``inc(amount)``: same count, same
        published event. It exists so call sites in per-cycle code can
        skip keyword-dict construction when they have no fields to add
        (or, two-tier-guarded, when no sink is listening).
        """
        self.value += amount
        if self._bus._sinks:
            self._bus._publish(self.name, "counter",
                               {"value": self.value, "delta": amount})

    def snapshot(self) -> dict[str, Any]:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """Last-written value of a sampled quantity, with its running range."""

    kind = "gauge"
    __slots__ = ("name", "value", "low", "high", "samples", "_bus")

    def __init__(self, name: str, bus: "EventBus") -> None:
        self.name = name
        self.value: float = 0
        self.low: float | None = None
        self.high: float | None = None
        self.samples = 0
        self._bus = bus

    def set(self, value: float, **fields: Any) -> None:
        self.value = value
        self.samples += 1
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value
        if self._bus._sinks:
            self._bus._publish(self.name, "gauge", {"value": value, **fields})

    def set_fast(self, value: float) -> None:
        """Field-less :meth:`set` — same bookkeeping and published event,
        no keyword-dict construction (per-cycle call sites)."""
        self.value = value
        self.samples += 1
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value
        if self._bus._sinks:
            self._bus._publish(self.name, "gauge", {"value": value})

    def snapshot(self) -> dict[str, Any]:
        return {"kind": "gauge", "value": self.value, "low": self.low,
                "high": self.high, "samples": self.samples}


class Histogram:
    """Distribution of observed values in power-of-two buckets.

    Bucket ``k`` counts observations with ``2**(k-1) < value <= 2**k``
    (bucket 0 holds values <= 1, including zero) — coarse, constant-space
    and enough to read a latency distribution's shape.
    """

    kind = "histogram"
    __slots__ = ("name", "count", "total", "low", "high", "buckets", "_bus")

    def __init__(self, name: str, bus: "EventBus") -> None:
        self.name = name
        self.count = 0
        self.total: float = 0
        self.low: float | None = None
        self.high: float | None = None
        self.buckets: dict[int, int] = {}
        self._bus = bus

    def observe(self, value: float, **fields: Any) -> None:
        self.count += 1
        self.total += value
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value
        bucket = 0 if value <= 1 else (int(value) - 1).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        if self._bus._sinks:
            self._bus._publish(self.name, "histogram",
                               {"value": value, **fields})

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Bucket-resolution quantile estimate (e.g. ``0.99`` for p99).

        Walks the cumulative bucket counts and returns the upper bound
        of the bucket holding the requested rank, clamped to the
        observed ``[low, high]`` range — so the estimate is exact for
        single-bucket distributions and never overshoots the data. The
        error is bounded by the power-of-two bucket width, which is
        enough to read a latency distribution's tail shape.
        """
        if not self.count:
            return 0.0
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        rank = fraction * self.count
        cumulative = 0
        for bucket in sorted(self.buckets):
            cumulative += self.buckets[bucket]
            if cumulative >= rank:
                upper = 1.0 if bucket == 0 else float(2 ** bucket)
                assert self.low is not None and self.high is not None
                return min(max(upper, self.low), self.high)
        return float(self.high)  # fraction == 1 with rounding slack

    def snapshot(self) -> dict[str, Any]:
        return {"kind": "histogram", "count": self.count,
                "total": self.total, "mean": self.mean,
                "low": self.low, "high": self.high,
                "p50": self.percentile(0.50),
                "p90": self.percentile(0.90),
                "p99": self.percentile(0.99),
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())}}


Probe = Counter | Gauge | Histogram


class MemorySink:
    """Collects every published event in a list (tests, small runs)."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def handle(self, event: dict[str, Any]) -> None:
        self.events.append(event)


class JsonlSink:
    """Writes one JSON object per event to an open text stream."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream

    def handle(self, event: dict[str, Any]) -> None:
        self.stream.write(json.dumps(event) + "\n")


class EventBus:
    """A per-run registry of named probes plus the sinks observing them."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.probes: dict[str, Probe] = {}
        self._sinks: list[Any] = []
        self._sequence = 0

    # ---- probe creation ----------------------------------------------------

    def _probe(self, name: str, factory: Callable[[str, "EventBus"], Probe]):
        if not self.enabled:
            return _NULL_PROBE
        probe = self.probes.get(name)
        if probe is None:
            probe = factory(name, self)
            self.probes[name] = probe
            return probe
        wanted = factory(name, self).kind
        if probe.kind != wanted:
            raise ValueError(
                f"probe {name!r} already registered as {probe.kind}, "
                f"not {wanted}")
        return probe

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._probe(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._probe(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._probe(name, Histogram)

    # ---- sinks -------------------------------------------------------------

    @property
    def sinks(self) -> tuple[Any, ...]:
        return tuple(self._sinks)

    def sinks_ref(self) -> list[Any]:
        """The live sink list (a shared reference, not a copy).

        Components cache this once and test its truthiness per event, so
        a sink-less bus pays for counter bumps but never for per-event
        field formatting — and a sink attached or detached mid-run is
        still seen immediately.
        """
        return self._sinks

    def attach(self, sink: Any) -> None:
        """Start delivering every probe update to ``sink.handle(event)``."""
        if not self.enabled:
            raise ValueError("cannot attach a sink to a disabled bus")
        self._sinks.append(sink)

    def detach(self, sink: Any) -> None:
        self._sinks.remove(sink)

    def _publish(self, name: str, kind: str, fields: dict[str, Any]) -> None:
        self._sequence += 1
        event = {"seq": self._sequence, "probe": name, "kind": kind, **fields}
        for sink in self._sinks:
            sink.handle(event)

    def emit(self, name: str, **fields: Any) -> None:
        """Publish an ad-hoc structured event not tied to a probe."""
        if self._sinks:
            self._publish(name, "event", fields)

    # ---- inspection --------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Current value of every probe, keyed by name (sorted)."""
        return {name: self.probes[name].snapshot()
                for name in sorted(self.probes)}

    def counters(self) -> dict[str, int]:
        """Just the counter values — the common reconciliation view."""
        return {name: probe.value
                for name, probe in sorted(self.probes.items())
                if isinstance(probe, Counter)}

    def merge(self, others: Iterable["EventBus"]) -> None:
        """Fold other buses' counter totals into this one (aggregation
        across the runs of a sweep; gauges and histograms don't merge)."""
        for other in others:
            for name, probe in other.probes.items():
                if isinstance(probe, Counter):
                    self.counter(name).value += probe.value


NULL_BUS = EventBus(enabled=False)
"""Module-level disabled bus: the default for library code whose callers
did not ask for telemetry. All its probes are shared no-ops."""
