"""Static program statistics behind the paper's design arguments."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.cfg import build_cfg
from repro.asm.program import Program
from repro.core.policy import FoldPolicy


@dataclass(frozen=True)
class StaticProfile:
    """Static (code-layout) statistics of one program."""

    instructions: int
    length_histogram: dict[int, int]  #: parcels -> count
    branch_sites: int
    one_parcel_branch_sites: int
    foldable_sites: int  #: branch sites the given policy folds
    basic_blocks: int
    mean_block_size: float
    median_block_size: float

    @property
    def one_parcel_branch_fraction(self) -> float:
        return (self.one_parcel_branch_sites / self.branch_sites
                if self.branch_sites else 0.0)

    @property
    def fold_coverage(self) -> float:
        """Fraction of static branch sites the policy folds away."""
        return (self.foldable_sites / self.branch_sites
                if self.branch_sites else 0.0)


def length_histogram(program: Program) -> dict[int, int]:
    """Static parcel-length mix (the 1/3/5 distribution)."""
    histogram: Counter = Counter()
    for instruction in program.instructions:
        histogram[instruction.length_parcels()] += 1
    return dict(histogram)


def fold_opportunity_profile(program: Program,
                             policy: FoldPolicy | None = None
                             ) -> tuple[int, int]:
    """(branch sites, sites the policy folds into their predecessor)."""
    policy = policy or FoldPolicy.crisp()
    branches = 0
    foldable = 0
    previous = None
    for instruction in program.instructions:
        if instruction.is_branch:
            branches += 1
            if previous is not None and policy.can_fold(previous,
                                                        instruction):
                foldable += 1
        previous = instruction if not instruction.is_branch else None
    return branches, foldable


def basic_block_profile(program: Program) -> tuple[int, float, float]:
    """(block count, mean size, median size) over the program's CFG.

    The paper: "basic block sizes in CRISP are typically short, on the
    order of 3 instructions" — the reason prediction beat delay slots.
    """
    sizes = sorted(build_cfg(program).block_sizes())
    if not sizes:
        return 0, 0.0, 0.0
    mean = sum(sizes) / len(sizes)
    middle = len(sizes) // 2
    median = (sizes[middle] if len(sizes) % 2
              else (sizes[middle - 1] + sizes[middle]) / 2)
    return len(sizes), mean, float(median)


def static_profile(program: Program,
                   policy: FoldPolicy | None = None) -> StaticProfile:
    """Compute the full static profile of a program."""
    histogram = length_histogram(program)
    branches, foldable = fold_opportunity_profile(program, policy)
    one_parcel = sum(
        1 for instruction in program.instructions
        if instruction.is_branch and instruction.length_parcels() == 1)
    blocks, mean, median = basic_block_profile(program)
    return StaticProfile(
        instructions=len(program.instructions),
        length_histogram=histogram,
        branch_sites=branches,
        one_parcel_branch_sites=one_parcel,
        foldable_sites=foldable,
        basic_blocks=blocks,
        mean_block_size=mean,
        median_block_size=median,
    )
