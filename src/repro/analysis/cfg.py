"""Control-flow graph construction from an assembled Program.

Standard leader analysis at the machine level: a new basic block starts
at the program entry, at every branch target, and after every
control-transfer instruction. Edges follow the static transfers
(fall-through, branch target, both for conditionals); calls edge to the
callee *and* fall through (the return edge is implicit), and dynamic
targets (returns, indirect jumps) end their block with no static
successors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.program import Program
from repro.isa.instructions import BranchMode, Instruction
from repro.isa.opcodes import OpClass


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    start: int  #: byte address of the first instruction
    instructions: list[Instruction] = field(default_factory=list)
    addresses: list[int] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)  #: block start addrs
    predecessors: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Instruction count (the paper's basic-block-size metric)."""
        return len(self.instructions)

    @property
    def terminator(self) -> Instruction | None:
        """The control transfer ending the block, if any."""
        if self.instructions and self.instructions[-1].is_branch:
            return self.instructions[-1]
        return None


@dataclass
class ControlFlowGraph:
    """All basic blocks of a program, keyed by start address."""

    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    entry: int = 0

    def __iter__(self):
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    def block_sizes(self) -> list[int]:
        return [block.size for block in self.blocks.values()]

    def reachable_from_entry(self) -> set[int]:
        """Block start addresses reachable over static edges."""
        seen: set[int] = set()
        work = [self.entry]
        while work:
            address = work.pop()
            if address in seen or address not in self.blocks:
                continue
            seen.add(address)
            work.extend(self.blocks[address].successors)
        return seen

    def to_dot(self) -> str:
        """Graphviz rendering (block address + size per node)."""
        lines = ["digraph cfg {", "  node [shape=box];"]
        for block in self.blocks.values():
            label = f"{block.start:#x}\\n{block.size} instr"
            lines.append(f'  b{block.start:x} [label="{label}"];')
            for successor in block.successors:
                lines.append(f"  b{block.start:x} -> b{successor:x};")
        lines.append("}")
        return "\n".join(lines)


def _static_target(instruction: Instruction, address: int) -> int | None:
    spec = instruction.branch
    if spec is None:
        return None
    if spec.mode is BranchMode.PC_RELATIVE:
        return address + spec.value
    if spec.mode is BranchMode.ABSOLUTE:
        return spec.value
    return None  # indirect


def build_cfg(program: Program) -> ControlFlowGraph:
    """Build the control-flow graph of ``program``."""
    # pass 1: leaders
    leaders: set[int] = {program.entry}
    if program.addresses:
        leaders.add(program.addresses[0])
    for address, instruction in zip(program.addresses,
                                    program.instructions):
        if instruction.is_branch:
            target = _static_target(instruction, address)
            if target is not None:
                leaders.add(target)
            follower = address + instruction.length_bytes()
            if program.index_of(follower) is not None:
                leaders.add(follower)

    # pass 2: carve blocks
    cfg = ControlFlowGraph(entry=program.entry)
    current: BasicBlock | None = None
    for address, instruction in zip(program.addresses,
                                    program.instructions):
        if address in leaders or current is None:
            current = BasicBlock(address)
            cfg.blocks[address] = current
        current.instructions.append(instruction)
        current.addresses.append(address)
        if instruction.is_branch:
            current = None

    # pass 3: edges
    for block in cfg.blocks.values():
        last_address = block.addresses[-1]
        last = block.instructions[-1]
        fall_through = last_address + last.length_bytes()
        if not last.is_branch:
            if fall_through in cfg.blocks:
                block.successors.append(fall_through)
            continue
        cls = last.op_class
        target = _static_target(last, last_address)
        if target is not None and target in cfg.blocks:
            block.successors.append(target)
        if cls in (OpClass.CONDJMP, OpClass.CALL) \
                and fall_through in cfg.blocks:
            # conditional fall-through; call returns to the next block
            block.successors.append(fall_through)
    for block in cfg.blocks.values():
        for successor in block.successors:
            cfg.blocks[successor].predecessors.append(block.start)
    return cfg
