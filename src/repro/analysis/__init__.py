"""Static program analysis over assembled Programs.

Control-flow-graph construction (:mod:`repro.analysis.cfg`) and the
static statistics (:mod:`repro.analysis.static_stats`) behind two of the
paper's design arguments:

* "basic block sizes in CRISP are typically short, on the order of 3
  instructions, [so] branch prediction would be a better technique than
  delayed branch" — measured by :func:`basic_block_profile`;
* the fold policy's coverage: how many static branch sites the
  1-/3-parcel-body × 1-parcel-branch rule captures
  (:func:`fold_opportunity_profile`).
"""

from repro.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.static_stats import (
    StaticProfile,
    basic_block_profile,
    fold_opportunity_profile,
    length_histogram,
    static_profile,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "StaticProfile",
    "basic_block_profile",
    "fold_opportunity_profile",
    "length_histogram",
    "static_profile",
]
