"""Predictor factory for config-named predictors.

:class:`~repro.core.policy.FoldPolicy` names its dynamic-fold predictor
by string (the policy must stay a frozen, picklable value object), so
the simulator needs a single place that maps those names to predictor
instances. Kept separate from ``repro.predict.__init__`` so the cycle
kernels can import it without dragging in the measurement harness.
"""

from __future__ import annotations

from repro.predict.base import BranchPredictor
from repro.predict.btb import BranchTargetBuffer
from repro.predict.dynamic import CounterPredictor
from repro.predict.twolevel import GsharePredictor

#: names accepted by :func:`make_predictor` (and by FoldPolicy.dyn_predictor)
PREDICTOR_NAMES = ("1-bit", "2-bit", "3-bit", "btb", "gshare")


def make_predictor(name: str) -> BranchPredictor:
    """A fresh predictor instance for a config name.

    ``"1-bit"``/``"2-bit"``/``"3-bit"`` are the paper's infinite-table
    saturating counters; ``"btb"`` and ``"gshare"`` come from the
    comparison section. Raises ValueError on unknown names.
    """
    if name.endswith("-bit"):
        prefix = name[:-len("-bit")]
        if prefix.isdigit() and int(prefix) >= 1:
            return CounterPredictor(bits=int(prefix))
    if name == "btb":
        return BranchTargetBuffer()
    if name == "gshare":
        return GsharePredictor()
    raise ValueError(
        f"unknown predictor {name!r}; expected one of {PREDICTOR_NAMES}")
