"""The Manchester MU5 Jump Trace.

An eight-entry buffer of recent branch PCs whose last execution was
taken; a hit predicts taken (prefetch continues at the stored target).
The paper quotes MU5 results of only 40–65 % correct for this scheme —
"barely better than tossing a coin" — which the ablation bench
reproduces against the CRISP approach.
"""

from __future__ import annotations

from repro.predict.base import BranchPredictor


class JumpTrace(BranchPredictor):
    """Fully-associative FIFO buffer of recently-taken branch addresses."""

    def __init__(self, entries: int = 8) -> None:
        super().__init__()
        self.entries = entries
        self._trace: dict[int, int | None] = {}  # pc -> target (FIFO order)
        self.name = f"jump-trace-{entries}"

    def predict(self, pc: int, target: int | None = None) -> bool:
        return pc in self._trace

    def predicted_target(self, pc: int) -> int | None:
        """Cached target on a hit (what MU5 prefetch would follow)."""
        return self._trace.get(pc)

    def update(self, pc: int, taken: bool,
               target: int | None = None) -> None:
        if taken:
            if pc in self._trace:
                self._trace[pc] = target
                return
            if len(self._trace) >= self.entries:
                oldest = next(iter(self._trace))
                del self._trace[oldest]
            self._trace[pc] = target
        else:
            self._trace.pop(pc, None)

    def reset(self) -> None:
        super().reset()
        self._trace.clear()
