"""Simultaneous prediction measurement.

The paper modified a VAX C compiler so every prediction scheme measured
every branch of a real run at once, instead of replaying trace tapes.
:class:`PredictionStudy` is the same instrument: feed it dynamic branch
events (from the functional simulator's branch hook, a recorded trace, or
a synthetic generator) and every registered predictor scores each one.
"""

from __future__ import annotations

from typing import Iterable

from repro.asm.program import Program
from repro.obs.events import EventBus, NULL_BUS
from repro.predict.base import BranchPredictor
from repro.predict.dynamic import CounterPredictor
from repro.predict.static import OptimalStaticPredictor
from repro.trace.events import BranchEvent


def standard_predictors() -> list[BranchPredictor]:
    """The paper's Table-1 line-up: optimal static, 1/2/3-bit dynamic."""
    return [
        OptimalStaticPredictor(),
        CounterPredictor(1),
        CounterPredictor(2),
        CounterPredictor(3),
    ]


class PredictionStudy:
    """Applies many predictors to one stream of branch events."""

    def __init__(self, predictors: Iterable[BranchPredictor] | None = None,
                 conditional_only: bool = True,
                 obs: EventBus = NULL_BUS) -> None:
        self.predictors = (list(predictors) if predictors is not None
                           else standard_predictors())
        self.conditional_only = conditional_only
        self.events = 0
        self.obs = obs
        self._p_events = obs.counter("predict.events")

    def observe(self, event: BranchEvent) -> None:
        """Feed one dynamic branch to every predictor."""
        if self.conditional_only and not event.conditional:
            return
        self.events += 1
        self._p_events.inc()
        for predictor in self.predictors:
            predictor.observe(event.pc, event.taken, event.target)

    def observe_all(self, events: Iterable[BranchEvent]) -> None:
        for event in events:
            self.observe(event)

    def accuracies(self) -> dict[str, float]:
        """Accuracy per predictor name."""
        for predictor in self.predictors:
            self.obs.gauge(f"predict.accuracy.{predictor.name}").set(
                predictor.accuracy)
        return {p.name: p.accuracy for p in self.predictors}

    def row(self) -> list[float]:
        """Accuracies in registration order (a Table-1 row)."""
        return [p.accuracy for p in self.predictors]


def measure_predictors(program: Program,
                       predictors: Iterable[BranchPredictor] | None = None,
                       max_instructions: int = 50_000_000,
                       obs: EventBus = NULL_BUS) -> PredictionStudy:
    """Run ``program`` on the functional simulator with every predictor
    attached to the branch hook (the paper's in-situ method)."""
    from repro.sim.functional import FunctionalSimulator
    from repro.isa.instructions import BranchMode

    study = PredictionStudy(predictors, obs=obs)

    def hook(pc: int, instruction, taken: bool) -> None:
        target = None
        spec = instruction.branch
        if spec is not None and spec.mode is BranchMode.PC_RELATIVE:
            target = pc + spec.value
        elif spec is not None and spec.mode is BranchMode.ABSOLUTE:
            target = spec.value
        study.observe(BranchEvent(
            pc=pc, taken=taken,
            conditional=instruction.is_conditional_branch,
            target=target))

    simulator = FunctionalSimulator(program, branch_hook=hook)
    simulator.run(max_instructions)
    return study
