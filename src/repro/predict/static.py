"""Static prediction schemes.

The paper's "static prediction" column reports accuracy *for the optimal
setting of the branch prediction bit* — i.e. each static branch's bit
matches its majority direction over the whole run.
:class:`OptimalStaticPredictor` scores that retrospectively: it tallies
per-branch outcomes and computes ``sum(max(taken, not taken))/total``.
By construction an alternating branch scores exactly 50 % (the effect
behind the small-benchmark rows of Table 1).
"""

from __future__ import annotations

from collections import defaultdict

from repro.predict.base import BranchPredictor


class AlwaysTakenPredictor(BranchPredictor):
    """Predict every branch taken (a floor baseline)."""

    name = "always-taken"

    def predict(self, pc: int, target: int | None = None) -> bool:
        return True


class BackwardTakenPredictor(BranchPredictor):
    """The compiler heuristic: backward branches taken, forward not.

    Needs the target address; branches with unknown targets predict not
    taken.
    """

    name = "backward-taken"

    def predict(self, pc: int, target: int | None = None) -> bool:
        return target is not None and target <= pc


class OptimalStaticPredictor(BranchPredictor):
    """Optimal per-branch static bit, scored retrospectively.

    ``observe`` only tallies; :attr:`accuracy` is computed from the final
    per-branch majority. (A predictor that *learned* online would differ
    on the first few executions of each branch; the paper's definition is
    the offline optimum.)
    """

    name = "static-optimal"

    def __init__(self) -> None:
        super().__init__()
        self._taken: dict[int, int] = defaultdict(int)
        self._seen: dict[int, int] = defaultdict(int)

    def predict(self, pc: int, target: int | None = None) -> bool:
        # online majority-so-far (used only when observe() is driven for
        # the per-event interface; accuracy overrides with the optimum)
        return self._taken[pc] * 2 > self._seen[pc]

    def update(self, pc: int, taken: bool,
               target: int | None = None) -> None:
        self._seen[pc] += 1
        if taken:
            self._taken[pc] += 1

    @property
    def accuracy(self) -> float:
        total = sum(self._seen.values())
        if total == 0:
            return 0.0
        best = sum(max(taken, seen - taken)
                   for pc, seen in self._seen.items()
                   for taken in (self._taken[pc],))
        return best / total

    def optimal_bits(self) -> dict[int, bool]:
        """The per-branch optimal bit (taken iff majority taken)."""
        return {pc: self._taken[pc] * 2 > seen
                for pc, seen in self._seen.items()}

    def reset(self) -> None:
        super().reset()
        self._taken.clear()
        self._seen.clear()
