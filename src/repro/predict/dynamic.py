"""Dynamic history predictors: J. Smith's saturating counters.

The paper measures one, two and three bits of dynamic history with an
*infinite* table (one counter per static branch, never evicted) — it
notes this makes the dynamic numbers "somewhat optimistic". One bit
predicts "same as last time"; the wider counters add hysteresis
(weighting): a counter in the upper half predicts taken, increments on
taken and decrements on not-taken, saturating at the ends.
"""

from __future__ import annotations

from repro.predict.base import BranchPredictor


class CounterPredictor(BranchPredictor):
    """An n-bit saturating up/down counter per branch PC, infinite table.

    ``bits=1`` is last-direction prediction. Counters initialize to the
    weakly-not-taken value (``2**(bits-1) - 1``; 0 for one bit).
    """

    def __init__(self, bits: int = 2) -> None:
        super().__init__()
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        self.initial = self.threshold - 1
        self._counters: dict[int, int] = {}
        self.name = f"{bits}-bit-dynamic"

    def predict(self, pc: int, target: int | None = None) -> bool:
        return self._counters.get(pc, self.initial) >= self.threshold

    def update(self, pc: int, taken: bool,
               target: int | None = None) -> None:
        value = self._counters.get(pc, self.initial)
        if taken:
            value = min(self.maximum, value + 1)
        else:
            value = max(0, value - 1)
        self._counters[pc] = value

    def confidence(self, pc: int, target: int | None = None) -> int:
        value = self._counters.get(pc, self.initial)
        if value >= self.threshold:
            return value - self.threshold + 1
        return self.threshold - value

    def untrain(self, pc: int, target: int | None = None) -> None:
        self._counters[pc] = self.initial

    def reset(self) -> None:
        super().reset()
        self._counters.clear()

    @property
    def table_size(self) -> int:
        """Number of distinct branches tracked (infinite-table occupancy)."""
        return len(self._counters)


class FiniteCounterPredictor(BranchPredictor):
    """An n-bit counter table of *finite* size — a classic tagless branch
    history table.

    The paper: "The dynamic history assumes an infinite size table, this
    makes the dynamic numbers somewhat optimistic. In practice only a
    small number of recent predictions would be cached." Here counters
    are direct-mapped on the low PC bits with no tags, so distinct
    branches that collide share (and corrupt) each other's history —
    the realistic degradation the ablation bench quantifies.
    """

    def __init__(self, bits: int = 2, entries: int = 64) -> None:
        super().__init__()
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("table size must be a power of two")
        self.bits = bits
        self.entries = entries
        self.maximum = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        initial = self.threshold - 1
        self._table = [initial] * entries
        self.name = f"{bits}-bit-table{entries}"

    def _index(self, pc: int) -> int:
        return (pc >> 1) & (self.entries - 1)

    def predict(self, pc: int, target: int | None = None) -> bool:
        return self._table[self._index(pc)] >= self.threshold

    def update(self, pc: int, taken: bool,
               target: int | None = None) -> None:
        index = self._index(pc)
        value = self._table[index]
        if taken:
            self._table[index] = min(self.maximum, value + 1)
        else:
            self._table[index] = max(0, value - 1)

    def confidence(self, pc: int, target: int | None = None) -> int:
        value = self._table[self._index(pc)]
        if value >= self.threshold:
            return value - self.threshold + 1
        return self.threshold - value

    def untrain(self, pc: int, target: int | None = None) -> None:
        self._table[self._index(pc)] = self.threshold - 1

    def reset(self) -> None:
        super().reset()
        self._table = [self.threshold - 1] * self.entries
