"""Lee & Smith-style Branch Target Buffer.

The paper's comparison section: a BTB predicts from dynamic history *and*
supplies the cached target so prefetch can continue — but on most
machines the branch still costs its pipeline slot, and a 128-set ×
4-entry BTB "would be nearly as large as our entire microprocessor chip".
This model is used by the BTB-vs-folding ablation bench.

Prediction rule: a hit predicts by the entry's saturating counter; a miss
predicts not taken. Entries are allocated on taken branches (classic BTB
allocation) and replaced LRU within the set.
"""

from __future__ import annotations

from repro.predict.base import BranchPredictor


class _Entry:
    __slots__ = ("pc", "target", "counter", "stamp")

    def __init__(self, pc: int, target: int | None, counter: int,
                 stamp: int) -> None:
        self.pc = pc
        self.target = target
        self.counter = counter
        self.stamp = stamp


class BranchTargetBuffer(BranchPredictor):
    """Set-associative BTB with per-entry 2-bit counters and LRU."""

    def __init__(self, sets: int = 128, ways: int = 4,
                 counter_bits: int = 2) -> None:
        super().__init__()
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self.sets = sets
        self.ways = ways
        self.maximum = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        self._table: list[list[_Entry]] = [[] for _ in range(sets)]
        self._clock = 0
        self.target_hits = 0
        self.target_lookups = 0
        self.name = f"btb-{sets}x{ways}"

    def _set_for(self, pc: int) -> list[_Entry]:
        return self._table[(pc >> 1) & (self.sets - 1)]

    def _find(self, pc: int) -> _Entry | None:
        for entry in self._set_for(pc):
            if entry.pc == pc:
                return entry
        return None

    def predict(self, pc: int, target: int | None = None) -> bool:
        entry = self._find(pc)
        return entry is not None and entry.counter >= self.threshold

    def predicted_target(self, pc: int) -> int | None:
        """The cached target address, if this PC hits."""
        self.target_lookups += 1
        entry = self._find(pc)
        if entry is not None and entry.counter >= self.threshold:
            self.target_hits += 1
            return entry.target
        return None

    def confidence(self, pc: int, target: int | None = None) -> int:
        entry = self._find(pc)
        if entry is None:
            return 0  # a miss carries no history at all
        if entry.counter >= self.threshold:
            return entry.counter - self.threshold + 1
        return self.threshold - entry.counter

    def untrain(self, pc: int, target: int | None = None) -> None:
        entry = self._find(pc)
        if entry is not None:
            entry.counter = self.threshold - 1

    def update(self, pc: int, taken: bool,
               target: int | None = None) -> None:
        self._clock += 1
        entry = self._find(pc)
        if entry is None:
            if not taken:
                return  # allocate only on taken branches
            bucket = self._set_for(pc)
            entry = _Entry(pc, target, self.threshold, self._clock)
            if len(bucket) >= self.ways:
                bucket.remove(min(bucket, key=lambda e: e.stamp))
            bucket.append(entry)
            return
        entry.stamp = self._clock
        if taken:
            entry.counter = min(self.maximum, entry.counter + 1)
            entry.target = target
        else:
            entry.counter = max(0, entry.counter - 1)

    def reset(self) -> None:
        super().reset()
        self._table = [[] for _ in range(self.sets)]
        self._clock = 0
        self.target_hits = 0
        self.target_lookups = 0

    @property
    def occupancy(self) -> int:
        """Entries currently allocated."""
        return sum(len(bucket) for bucket in self._table)
