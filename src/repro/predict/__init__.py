"""Branch-predictor zoo and measurement harness (the Table-1 study).

The paper compares one optimally-set static bit against one, two and
three bits of dynamic history (J. Smith's saturating counters, infinite
table) by instrumenting a compiler so every scheme runs *simultaneously*
as the program executes. :class:`~repro.predict.harness.PredictionStudy`
does the same over our functional simulator's branch hook or over
recorded/synthetic traces.

Also provided, for the paper's "Comparison to Other Schemes" section: a
Lee-and-Smith set-associative Branch Target Buffer and the MU5-style
eight-entry jump trace (whose 40–65 % accuracy the paper quotes as
"barely better than tossing a coin").
"""

from repro.predict.base import BranchPredictor
from repro.predict.static import (
    AlwaysTakenPredictor,
    BackwardTakenPredictor,
    OptimalStaticPredictor,
)
from repro.predict.dynamic import CounterPredictor, FiniteCounterPredictor
from repro.predict.btb import BranchTargetBuffer
from repro.predict.jumptrace import JumpTrace
from repro.predict.twolevel import GsharePredictor
from repro.predict.factory import PREDICTOR_NAMES, make_predictor
from repro.predict.harness import PredictionStudy, measure_predictors

__all__ = [
    "PREDICTOR_NAMES",
    "make_predictor",
    "BranchPredictor",
    "AlwaysTakenPredictor",
    "BackwardTakenPredictor",
    "OptimalStaticPredictor",
    "CounterPredictor",
    "FiniteCounterPredictor",
    "BranchTargetBuffer",
    "JumpTrace",
    "GsharePredictor",
    "PredictionStudy",
    "measure_predictors",
]
