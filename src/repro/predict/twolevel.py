"""Two-level adaptive prediction (gshare) — the scheme that came after.

The paper's Table 1 stops at per-branch saturating counters; five years
later two-level adaptive predictors (Yeh & Patt) and the gshare variant
(McFarling) made dynamic prediction decisively better by correlating on
recent *global* history. Including gshare here extends the paper's
comparison forward in time: it solves exactly the alternating-branch
pathology that lets CRISP's static bit win Table 1's benchmark rows —
a period-2 branch is perfectly predictable from one bit of history.
"""

from __future__ import annotations

from repro.predict.base import BranchPredictor


class GsharePredictor(BranchPredictor):
    """Global-history XOR PC indexed table of 2-bit counters."""

    def __init__(self, history_bits: int = 8, entries: int = 1024,
                 counter_bits: int = 2) -> None:
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("table size must be a power of two")
        self.history_bits = history_bits
        self.entries = entries
        self.maximum = (1 << counter_bits) - 1
        self.threshold = 1 << (counter_bits - 1)
        self._history = 0
        self._mask = (1 << history_bits) - 1
        self._table = [self.threshold - 1] * entries
        self.name = f"gshare-h{history_bits}-{entries}"

    def _index(self, pc: int) -> int:
        return ((pc >> 1) ^ self._history) & (self.entries - 1)

    def predict(self, pc: int, target: int | None = None) -> bool:
        return self._table[self._index(pc)] >= self.threshold

    def update(self, pc: int, taken: bool,
               target: int | None = None) -> None:
        index = self._index(pc)
        value = self._table[index]
        if taken:
            self._table[index] = min(self.maximum, value + 1)
        else:
            self._table[index] = max(0, value - 1)
        self._history = ((self._history << 1) | int(taken)) & self._mask

    def confidence(self, pc: int, target: int | None = None) -> int:
        value = self._table[self._index(pc)]
        if value >= self.threshold:
            return value - self.threshold + 1
        return self.threshold - value

    def untrain(self, pc: int, target: int | None = None) -> None:
        # Reset the counter the *current* history selects; the history
        # register itself is shared state and stays untouched.
        self._table[self._index(pc)] = self.threshold - 1

    def reset(self) -> None:
        super().reset()
        self._history = 0
        self._table = [self.threshold - 1] * self.entries
