"""Common predictor interface and accuracy bookkeeping."""

from __future__ import annotations


class BranchPredictor:
    """Base class: predict a conditional branch, then learn the outcome.

    Subclasses implement :meth:`predict` and :meth:`update`. The harness
    drives :meth:`observe`, which scores the prediction and then updates —
    the order matters: a real predictor never sees the outcome before it
    predicts.
    """

    name = "base"

    def __init__(self) -> None:
        self.correct = 0
        self.total = 0

    def predict(self, pc: int, target: int | None = None) -> bool:
        """Would this branch be predicted taken?"""
        raise NotImplementedError

    def update(self, pc: int, taken: bool,
               target: int | None = None) -> None:
        """Learn the actual outcome."""

    def confidence(self, pc: int, target: int | None = None) -> int:
        """Strength of the current prediction for ``pc`` (>= 0).

        0 means "no information" (e.g. a BTB miss); larger values mean
        the predictor is deeper into saturation on the predicted side.
        The dynamic-fold unit compares this against the policy's
        confidence threshold before folding a predicted-taken branch.
        Stateless predictors report a fixed 1.
        """
        return 1

    def untrain(self, pc: int, target: int | None = None) -> None:
        """Verified-recovery feedback: the prediction for ``pc`` caused a
        pipeline flush. Knock the branch back to its weakly-not-taken
        state so a cooling branch stops being folded immediately instead
        of after ``2**bits`` wrong guesses. Default: no state, no-op.
        """

    def observe(self, pc: int, taken: bool,
                target: int | None = None) -> bool:
        """Score one dynamic branch; returns True when predicted right."""
        prediction = self.predict(pc, target)
        self.total += 1
        if prediction == taken:
            self.correct += 1
        self.update(pc, taken, target)
        return prediction == taken

    @property
    def accuracy(self) -> float:
        """Fraction of dynamic branches predicted correctly."""
        return self.correct / self.total if self.total else 0.0

    def reset(self) -> None:
        """Forget all statistics and learned state."""
        self.correct = 0
        self.total = 0
