"""VAX-like baseline: dynamic opcode counting for Table 2.

Table 2 compares dynamic instruction mixes of the Figure-3 program
compiled by "our standard compilers" for CRISP and for the VAX. We have
no VAX compiler or hardware; what the table needs is only *which VAX
instruction executes for each source construct, how many times*. This
module therefore interprets the mini-C AST directly, counting the
instructions a classic VAX code generator would select:

* ``x = 0`` → ``clrl``; ``x = e`` → ``movl``; ``x++``/``x += 1`` →
  ``incl`` (``decl`` for decrement); ``x op= e`` / ``x = x op e`` →
  ``addl2``-family two-operand forms;
* subexpressions → ``addl3``-family three-operand forms;
* ``if (a < b)`` → ``cmpl`` + ``jgeq``-family (branch around on the
  inverted condition); ``if (a & mask)`` → ``bitl`` + ``jeql``/``jneq``;
  other conditions → ``tstl`` + ``jeql``/``jneq``;
* loop back-edges and else-skips → ``jbr``; calls → ``pushl``/``calls``/
  ``ret``.

The interpreter also computes real results, making it an independent
reference implementation of mini-C semantics for the differential tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.parcels import to_s32, to_u32
from repro.lang import astnodes as ast
from repro.lang.lexer import CompileError
from repro.lang.parser import parse

_BIN2 = {"+": "addl2", "-": "subl2", "*": "mull2", "/": "divl2",
         "%": "reml2", "&": "bicl2", "|": "bisl2", "^": "xorl2",
         "<<": "ashl", ">>": "ashl"}
_BIN3 = {"+": "addl3", "-": "subl3", "*": "mull3", "/": "divl3",
         "%": "reml3", "&": "bicl3", "|": "bisl3", "^": "xorl3",
         "<<": "ashl", ">>": "ashl"}
# branch-around mnemonics: the jump taken when the source condition FAILS
_INVERTED_JUMP = {"==": "jneq", "!=": "jeql", "<": "jgeq", "<=": "jgtr",
                  ">": "jleq", ">=": "jlss"}
_JUMP = {"==": "jeql", "!=": "jneq", "<": "jlss", "<=": "jleq",
         ">": "jgtr", ">=": "jgeq"}


@dataclass
class VaxRunResult:
    """Outcome of a VAX-model run."""

    opcode_counts: Counter = field(default_factory=Counter)
    return_value: int = 0

    @property
    def total_instructions(self) -> int:
        return sum(self.opcode_counts.values())

    def table(self) -> list[tuple[str, int, float]]:
        """(opcode, count, percent) rows, Table-2 style."""
        total = self.total_instructions or 1
        return [(name, count, 100.0 * count / total)
                for name, count in self.opcode_counts.most_common()]


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: int) -> None:
        self.value = value


class VaxModel:
    """Tree-walking interpreter with VAX opcode accounting."""

    def __init__(self, unit: ast.TranslationUnit,
                 max_instructions: int = 50_000_000,
                 info=None) -> None:
        self.unit = unit
        self.info = info  #: SemaInfo for unsigned-type inference (optional)
        self.result = VaxRunResult()
        self.globals: dict[str, int] = {}
        self.arrays: dict[str, list[int]] = {}
        self.functions = {f.name: f for f in unit.functions}
        self.max_instructions = max_instructions
        for var in unit.globals:
            if var.array_size is not None:
                self.arrays[var.name] = [0] * var.array_size
            else:
                self.globals[var.name] = to_u32(var.initializer)

    # ---- accounting ----------------------------------------------------------

    def _unsigned(self, *exprs: ast.Expr) -> bool:
        if self.info is None:
            return False
        return any(self.info.expr_is_unsigned(expr) for expr in exprs)

    def count(self, opcode: str) -> None:
        self.result.opcode_counts[opcode] += 1
        if self.result.total_instructions > self.max_instructions:
            raise RuntimeError("VAX model instruction budget exhausted")

    # ---- entry ------------------------------------------------------------------

    def run(self, entry: str = "main") -> VaxRunResult:
        self.result.return_value = self.call(entry, [])
        return self.result

    def call(self, name: str, args: list[int]) -> int:
        function = self.functions[name]
        for _ in args:
            self.count("pushl")
        self.count("calls")
        frame = dict(zip(function.params, args))
        try:
            self._block(function.body, frame)
        except _Return as ret:
            self.count("ret")
            return ret.value
        self.count("ret")
        return 0

    # ---- lvalues -------------------------------------------------------------------

    def _load(self, name: str, frame: dict[str, int]) -> int:
        if name in frame:
            return frame[name]
        if name in self.globals:
            return self.globals[name]
        raise CompileError(f"undefined variable {name!r}", 0)

    def _store(self, name: str, frame: dict[str, int], value: int) -> None:
        value = to_u32(value)
        if name in frame:
            frame[name] = value
        else:
            self.globals[name] = value

    def _array_slot(self, expr: ast.ArrayIndex,
                    frame: dict[str, int]) -> tuple[list[int], int]:
        assert isinstance(expr.base, ast.VarRef)
        array = self.arrays[expr.base.name]
        index = to_s32(self._eval(expr.index, frame))
        if not 0 <= index < len(array):
            raise IndexError(
                f"{expr.base.name}[{index}] out of range (line {expr.line})")
        return array, index

    # ---- statements -------------------------------------------------------------------

    def _block(self, block: ast.Block, frame: dict[str, int]) -> None:
        for stmt in block.statements:
            self._statement(stmt, frame)

    def _statement(self, stmt: ast.Stmt, frame: dict[str, int]) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt, frame)
        elif isinstance(stmt, ast.Declaration):
            if stmt.initializer is not None:
                if (isinstance(stmt.initializer, ast.IntLiteral)
                        and stmt.initializer.value == 0):
                    self.count("clrl")
                    frame[stmt.name] = 0
                else:
                    value = self._eval(stmt.initializer, frame)
                    self.count("movl")
                    frame[stmt.name] = to_u32(value)
            else:
                frame[stmt.name] = 0
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._eval_effect(stmt.expr, frame)
        elif isinstance(stmt, ast.If):
            taken = self._condition(stmt.condition, frame)
            if taken:
                self._statement(stmt.then_branch, frame)
                if stmt.else_branch is not None:
                    self.count("jbr")  # skip the else clause
            elif stmt.else_branch is not None:
                self._statement(stmt.else_branch, frame)
        elif isinstance(stmt, ast.While):
            self._loop(stmt.condition, stmt.body, None, frame,
                       test_first=True)
        elif isinstance(stmt, ast.DoWhile):
            self._loop(stmt.condition, stmt.body, None, frame,
                       test_first=False)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._statement(stmt.init, frame)
            self._loop(stmt.condition, stmt.body, stmt.step, frame,
                       test_first=True)
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt, frame)
        elif isinstance(stmt, ast.Return):
            value = 0
            if stmt.value is not None:
                value = self._eval(stmt.value, frame)
                self.count("movl")  # result into r0
            raise _Return(to_u32(value))
        elif isinstance(stmt, ast.Break):
            self.count("jbr")
            raise _Break
        elif isinstance(stmt, ast.Continue):
            self.count("jbr")
            raise _Continue
        else:
            raise CompileError(f"unhandled {type(stmt).__name__}", stmt.line)

    def _switch(self, stmt: ast.Switch, frame: dict[str, int]) -> None:
        # VAX has a real `casel` dispatch instruction
        selector = to_s32(self._eval(stmt.selector, frame))
        self.count("casel")
        start = None
        default = None
        for index, clause in enumerate(stmt.clauses):
            if selector in clause.values and start is None:
                start = index
            if clause.is_default:
                default = index
        if start is None:
            start = default
        if start is None:
            return
        try:
            for clause in stmt.clauses[start:]:  # C fall-through
                for inner in clause.statements:
                    self._statement(inner, frame)
        except _Break:
            pass

    def _loop(self, condition: ast.Expr | None, body: ast.Stmt,
              step: ast.Expr | None, frame: dict[str, int],
              test_first: bool) -> None:
        # VAX-style test-at-top loop: cmp + conditional exit each
        # iteration test, jbr for the back edge
        first = True
        while True:
            if condition is not None and (test_first or not first):
                if not self._condition(condition, frame):
                    break
            elif condition is not None and first and not test_first:
                pass  # do-while: first iteration unconditional
            first = False
            try:
                self._statement(body, frame)
            except _Break:
                break
            except _Continue:
                pass
            if step is not None:
                self._eval_effect(step, frame)
            self.count("jbr")  # back edge
        # loop exit: the failing conditional jump was already counted

    # ---- conditions --------------------------------------------------------------------------

    def _condition(self, condition: ast.Expr, frame: dict[str, int]) -> bool:
        """Evaluate a branch condition, counting compare+jump the way a
        VAX code generator emits them."""
        if isinstance(condition, ast.Unary) and condition.op == "!":
            return not self._condition(condition.operand, frame)
        if isinstance(condition, ast.Logical):
            left = self._condition(condition.left, frame)
            if condition.op == "&&":
                return self._condition(condition.right, frame) if left else False
            return True if left else self._condition(condition.right, frame)
        if isinstance(condition, ast.Binary) and condition.op in _JUMP:
            unsigned = self._unsigned(condition.left, condition.right)
            convert = to_u32 if unsigned else to_s32
            left = convert(self._eval(condition.left, frame))
            right = convert(self._eval(condition.right, frame))
            self.count("cmpl")
            self.count(_INVERTED_JUMP[condition.op])
            return {"==": left == right, "!=": left != right,
                    "<": left < right, "<=": left <= right,
                    ">": left > right, ">=": left >= right}[condition.op]
        if isinstance(condition, ast.Binary) and condition.op == "&":
            value = self._eval(condition, frame, as_test=True)
            self.count("bitl")
            self.count("jeql")
            return value != 0
        value = self._eval(condition, frame)
        self.count("tstl")
        self.count("jeql")
        return to_u32(value) != 0

    # ---- expressions ------------------------------------------------------------------------------

    def _eval_effect(self, expr: ast.Expr, frame: dict[str, int]) -> None:
        if isinstance(expr, ast.IncDec):
            self._incdec(expr, frame)
            return
        if isinstance(expr, ast.Assign):
            self._assign(expr, frame)
            return
        if isinstance(expr, ast.Call):
            self._call_expr(expr, frame)
            return
        self._eval(expr, frame)

    def _incdec(self, expr: ast.IncDec, frame: dict[str, int]) -> int:
        self.count("incl" if expr.op == "++" else "decl")
        delta = 1 if expr.op == "++" else -1
        if isinstance(expr.target, ast.VarRef):
            old = self._load(expr.target.name, frame)
            self._store(expr.target.name, frame, old + delta)
        else:
            array, index = self._array_slot(expr.target, frame)
            old = array[index]
            array[index] = to_u32(old + delta)
        return to_u32(old + delta) if expr.is_prefix else old

    def _assign(self, expr: ast.Assign, frame: dict[str, int]) -> int:
        target = expr.target
        if expr.op != "=":
            op = expr.op[:-1]
            left = self._read_lvalue(target, frame)
            right = self._eval(expr.value, frame)
            if op in ("+", "-") and isinstance(expr.value, ast.IntLiteral) \
                    and expr.value.value == 1:
                self.count("incl" if op == "+" else "decl")
            else:
                self.count(_BIN2[op])
            value = _arith(op, left, right,
                           self._unsigned(target, expr.value))
            self._write_lvalue(target, frame, value)
            return value
        # plain assignment: recognize clrl / incl / two-operand forms
        value_expr = expr.value
        if isinstance(value_expr, ast.IntLiteral) and value_expr.value == 0:
            self.count("clrl")
            self._write_lvalue(target, frame, 0)
            return 0
        if (isinstance(value_expr, ast.Binary)
                and value_expr.op in _BIN2
                and _same_lvalue(target, value_expr.left)):
            left = self._read_lvalue(target, frame)
            right = self._eval(value_expr.right, frame)
            if value_expr.op in ("+", "-") and isinstance(
                    value_expr.right, ast.IntLiteral) \
                    and value_expr.right.value == 1:
                self.count("incl" if value_expr.op == "+" else "decl")
            else:
                self.count(_BIN2[value_expr.op])
            value = _arith(value_expr.op, left, right,
                           self._unsigned(target, value_expr.right))
            self._write_lvalue(target, frame, value)
            return value
        value = self._eval(value_expr, frame)
        self.count("movl")
        self._write_lvalue(target, frame, value)
        return to_u32(value)

    def _read_lvalue(self, target: ast.Expr, frame: dict[str, int]) -> int:
        if isinstance(target, ast.VarRef):
            return self._load(target.name, frame)
        array, index = self._array_slot(target, frame)
        return array[index]

    def _write_lvalue(self, target: ast.Expr, frame: dict[str, int],
                      value: int) -> None:
        if isinstance(target, ast.VarRef):
            self._store(target.name, frame, value)
        else:
            array, index = self._array_slot(target, frame)
            array[index] = to_u32(value)

    def _call_expr(self, expr: ast.Call, frame: dict[str, int]) -> int:
        args = [to_u32(self._eval(arg, frame)) for arg in expr.args]
        return self.call(expr.name, args)

    def _eval(self, expr: ast.Expr, frame: dict[str, int],
              as_test: bool = False) -> int:
        if isinstance(expr, ast.IntLiteral):
            return to_u32(expr.value)
        if isinstance(expr, ast.VarRef):
            return self._load(expr.name, frame)
        if isinstance(expr, ast.ArrayIndex):
            array, index = self._array_slot(expr, frame)
            return array[index]
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, frame)
            if expr.op == "-":
                self.count("mnegl")
                return to_u32(-to_s32(value))
            if expr.op == "~":
                self.count("mcoml")
                return to_u32(~value)
            self.count("tstl")
            return 0 if to_u32(value) else 1
        if isinstance(expr, ast.IncDec):
            return self._incdec(expr, frame)
        if isinstance(expr, ast.Binary):
            if expr.op in _JUMP:
                unsigned = self._unsigned(expr.left, expr.right)
                convert = to_u32 if unsigned else to_s32
                left = convert(self._eval(expr.left, frame))
                right = convert(self._eval(expr.right, frame))
                self.count("cmpl")
                self.count(_JUMP[expr.op])  # materialized via branch
                return int({"==": left == right, "!=": left != right,
                            "<": left < right, "<=": left <= right,
                            ">": left > right, ">=": left >= right}[expr.op])
            left = self._eval(expr.left, frame)
            right = self._eval(expr.right, frame)
            if not as_test:
                self.count(_BIN3[expr.op])
            return _arith(expr.op, left, right,
                          self._unsigned(expr.left, expr.right))
        if isinstance(expr, ast.Logical):
            left = self._condition(expr.left, frame)
            if expr.op == "&&":
                result = self._condition(expr.right, frame) if left else False
            else:
                result = True if left else self._condition(expr.right, frame)
            return int(result)
        if isinstance(expr, ast.Conditional):
            if self._condition(expr.condition, frame):
                value = self._eval(expr.when_true, frame)
                self.count("movl")
                self.count("jbr")
            else:
                value = self._eval(expr.when_false, frame)
                self.count("movl")
            return to_u32(value)
        if isinstance(expr, ast.Assign):
            return self._assign(expr, frame)
        if isinstance(expr, ast.Call):
            return self._call_expr(expr, frame)
        raise CompileError(f"unhandled {type(expr).__name__}", expr.line)


def _same_lvalue(a: ast.Expr, b: ast.Expr) -> bool:
    if isinstance(a, ast.VarRef) and isinstance(b, ast.VarRef):
        return a.name == b.name
    return False


def _arith(op: str, left: int, right: int, unsigned: bool = False) -> int:
    sl, sr = to_s32(left), to_s32(right)
    if op == "+":
        return to_u32(sl + sr)
    if op == "-":
        return to_u32(sl - sr)
    if op == "*":
        return to_u32(sl * sr)
    if op == "/":
        if unsigned:
            return to_u32(left) // to_u32(right) if to_u32(right) else 0
        return to_u32(int(sl / sr)) if sr else 0
    if op == "%":
        if unsigned:
            return to_u32(left) % to_u32(right) if to_u32(right) else 0
        return to_u32(sl - int(sl / sr) * sr) if sr else 0
    if op == "&":
        return to_u32(left & right)
    if op == "|":
        return to_u32(left | right)
    if op == "^":
        return to_u32(left ^ right)
    if op == "<<":
        return to_u32(left << (right & 31))
    if unsigned:
        return to_u32(left) >> (right & 31)
    return to_u32(sl >> (right & 31))


def run_vax_model(source: str,
                  max_instructions: int = 50_000_000) -> VaxRunResult:
    """Parse mini-C ``source`` and run the VAX count model.

    The source is validated with the front end's semantic analysis first,
    so the model only ever interprets well-formed programs (matching what
    crispcc accepts).
    """
    from repro.lang.sema import analyze

    unit = parse(source)
    info = analyze(unit)
    return VaxModel(unit, max_instructions, info).run()
