"""Delayed-branch baseline cost model.

The paper's Case E and its "Comparison to Other Schemes" section argue
that delayed branch is the closest software competitor to Branch Folding:
spreading-style code motion fills the slot(s) after a branch, but "the
branch itself must still be executed; this requires at least one clock
cycle" — so even a perfectly scheduled delayed-branch machine executes
one instruction *more* per branch than CRISP with folding.

The model prices a program run on a delayed-branch pipeline:

    cycles = issued instructions             (branches included)
           + unfilled delay slots            (nop-equivalent bubbles)

with the number of architectural slots and the per-slot fill probability
as parameters. McFarling & Hennessy's measurements (the paper's citation
for delayed-branch costs) put first-slot fill around 0.7 and second-slot
around 0.25; the bench sweeps these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import ExecutionStats

DEFAULT_FILL_RATES = (0.70, 0.25, 0.10)
"""Literature fill probabilities for delay slots 1..3."""


@dataclass(frozen=True)
class DelayedBranchResult:
    """Cycle estimate for one program on a delayed-branch machine."""

    instructions: int
    branches: int
    delay_slots: int
    filled_slots: float
    cycles: float

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass(frozen=True)
class DelayedBranchModel:
    """A single-issue pipeline with architectural branch delay slots.

    ``delay_slots`` is the number of instructions after each branch the
    ISA exposes (1 for MIPS R2000-style machines); ``fill_rates[i]`` is
    the probability the compiler fills slot ``i`` with useful work.
    """

    delay_slots: int = 1
    fill_rates: tuple[float, ...] = DEFAULT_FILL_RATES

    def cost(self, stats: ExecutionStats) -> DelayedBranchResult:
        """Price a run described by its architectural statistics."""
        filled_per_branch = sum(self.fill_rates[i]
                                for i in range(self.delay_slots))
        empty_per_branch = self.delay_slots - filled_per_branch
        filled = stats.branches * filled_per_branch
        cycles = stats.instructions + stats.branches * empty_per_branch
        return DelayedBranchResult(
            instructions=stats.instructions,
            branches=stats.branches,
            delay_slots=self.delay_slots,
            filled_slots=filled,
            cycles=cycles,
        )
