"""Baseline machine models the paper compares against.

* :mod:`repro.baselines.vax` — a VAX-like code-generation and dynamic
  instruction-count model (Table 2 compares CRISP and VAX opcode
  histograms for the Figure-3 program). It doubles as an independent
  tree-walking interpreter of the mini-C language, used by the
  differential tests as a second semantic reference.
* :mod:`repro.baselines.delayed` — a delayed-branch pipeline cost model
  (the paper's Case E and "Comparison to Other Schemes": with delayed
  branches "the branch itself must still be executed; this requires at
  least one clock cycle").
"""

from repro.baselines.vax import VaxRunResult, run_vax_model
from repro.baselines.delayed import DelayedBranchModel, DelayedBranchResult

__all__ = [
    "VaxRunResult",
    "run_vax_model",
    "DelayedBranchModel",
    "DelayedBranchResult",
]
