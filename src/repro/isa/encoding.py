"""Binary encoding and decoding of instructions to 16-bit parcels.

Encoding layout (self-consistent; see DESIGN.md on why bit-exactness with
the never-published CRISP format is not required):

* **Base parcel**, all instructions: bits 15..10 hold a 6-bit opcode index.
* **Non-branch**: bits 9..5 and 4..0 are 5-bit operand descriptors.
  Descriptors either encode the operand inline (accumulator modes, small
  immediates, small word-aligned stack offsets) or mark a 32-bit extension
  (two parcels, high half first) that follows the base parcel in operand
  order. Zero, one or two extensions give the architectural one/three/five
  parcel lengths.
* **Short branch**: bits 9..0 are a signed parcel displacement (the paper's
  10-bit PC-relative offset, −1024 … +1022 bytes).
* **Long branch**: bits 9..8 select absolute / indirect-absolute /
  indirect-SP; a 32-bit specifier follows in two parcels.
* **enter**: bits 9..0 are an unsigned frame size; larger frames use a
  32-bit extension.
"""

from __future__ import annotations

from typing import Sequence

from repro.isa.instructions import BranchMode, BranchSpec, Instruction
from repro.isa.opcodes import (
    OpClass,
    Opcode,
    is_short_branch_opcode,
    opcode_class,
)
from repro.isa.operands import AddrMode, Operand
from repro.isa.parcels import (
    PARCEL_BYTES,
    join_parcels,
    split_word,
    to_s10,
    to_s32,
    to_u32,
)


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or parcels decoded."""


_OPCODE_LIST = list(Opcode)
_OPCODE_INDEX = {opcode: i for i, opcode in enumerate(_OPCODE_LIST)}

# operand descriptor values
_DESC_NONE = 0
_DESC_ACC = 1
_DESC_ACC_IND = 2
_DESC_EXT_IMM = 3
_DESC_EXT_ABS = 4
_DESC_EXT_SPOFF = 5
_DESC_IMM_BASE = 6  # descs 6..21 encode immediates -8..+7
_DESC_SPOFF_BASE = 22  # descs 22..31 encode stack offsets 0,4,..,36

_BRANCH_MODE_BITS = {
    BranchMode.ABSOLUTE: 0,
    BranchMode.INDIRECT_ABS: 1,
    BranchMode.INDIRECT_SP: 2,
}
_BRANCH_MODE_FROM_BITS = {bits: mode for mode, bits in _BRANCH_MODE_BITS.items()}


def _encode_descriptor(operand: Operand) -> tuple[int, int | None]:
    """Return (descriptor, extension word or None) for an operand."""
    if operand.mode is AddrMode.ACC:
        return _DESC_ACC, None
    if operand.mode is AddrMode.ACC_IND:
        return _DESC_ACC_IND, None
    if operand.mode is AddrMode.IMM:
        value = to_s32(operand.value)
        if -8 <= value <= 7:
            return _DESC_IMM_BASE + value + 8, None
        return _DESC_EXT_IMM, to_u32(value)
    if operand.mode is AddrMode.ABS:
        return _DESC_EXT_ABS, to_u32(operand.value)
    # SP_OFF
    if operand.value % 4 == 0 and 0 <= operand.value <= 36:
        return _DESC_SPOFF_BASE + operand.value // 4, None
    return _DESC_EXT_SPOFF, to_u32(operand.value)


def _decode_descriptor(desc: int, extension: int | None) -> Operand:
    """Inverse of :func:`_encode_descriptor`."""
    if desc == _DESC_ACC:
        return Operand(AddrMode.ACC)
    if desc == _DESC_ACC_IND:
        return Operand(AddrMode.ACC_IND)
    if desc == _DESC_EXT_IMM:
        return Operand(AddrMode.IMM, to_s32(extension))
    if desc == _DESC_EXT_ABS:
        return Operand(AddrMode.ABS, extension)
    if desc == _DESC_EXT_SPOFF:
        return Operand(AddrMode.SP_OFF, extension)
    if _DESC_IMM_BASE <= desc < _DESC_SPOFF_BASE:
        return Operand(AddrMode.IMM, desc - _DESC_IMM_BASE - 8)
    if _DESC_SPOFF_BASE <= desc <= 31:
        return Operand(AddrMode.SP_OFF, (desc - _DESC_SPOFF_BASE) * 4)
    raise EncodingError(f"bad operand descriptor {desc}")


def _descriptor_needs_extension(desc: int) -> bool:
    return desc in (_DESC_EXT_IMM, _DESC_EXT_ABS, _DESC_EXT_SPOFF)


def encode_instruction(instruction: Instruction) -> list[int]:
    """Encode ``instruction`` into its list of 16-bit parcels."""
    opbits = _OPCODE_INDEX[instruction.opcode] << 10
    cls = instruction.op_class

    if cls in (OpClass.NOP, OpClass.HALT, OpClass.RETURN):
        return [opbits]

    if cls is OpClass.FRAME:
        # frame sizes 0..1022 fit in-parcel; 0x3FF marks a 32-bit extension
        size = instruction.operands[0].value
        if 0 <= size <= 1022:
            return [opbits | size]
        high, low = split_word(size)
        return [opbits | 0x3FF, high, low]

    if instruction.is_branch:
        spec = instruction.branch
        assert spec is not None
        if is_short_branch_opcode(instruction.opcode):
            displacement_parcels = spec.value // PARCEL_BYTES
            return [opbits | (displacement_parcels & 0x3FF)]
        high, low = split_word(spec.value)
        return [opbits | (_BRANCH_MODE_BITS[spec.mode] << 8), high, low]

    # ALU / compare: two operand descriptors + extensions
    parcels = [0]
    descs = []
    for operand in instruction.operands:
        desc, extension = _encode_descriptor(operand)
        descs.append(desc)
        if extension is not None:
            high, low = split_word(extension)
            parcels.extend((high, low))
    while len(descs) < 2:
        descs.append(_DESC_NONE)
    parcels[0] = opbits | (descs[0] << 5) | descs[1]
    if len(parcels) not in (1, 3, 5):
        raise EncodingError(
            f"{instruction} encoded to {len(parcels)} parcels"
        )
    return parcels


def instruction_length(first_parcel: int) -> int:
    """Return an instruction's parcel count from its base parcel alone.

    This is what the PDU's length decoder does to step the instruction
    queue (``ilen<0:2>`` in the paper's Figure 2).
    """
    opcode = _opcode_from_parcel(first_parcel)
    cls = opcode_class(opcode)
    if cls in (OpClass.NOP, OpClass.HALT, OpClass.RETURN):
        return 1
    if cls is OpClass.FRAME:
        return 3 if (first_parcel & 0x3FF) == 0x3FF else 1
    if cls in (OpClass.JMP, OpClass.CONDJMP, OpClass.CALL):
        return 1 if is_short_branch_opcode(opcode) else 3
    desc1 = (first_parcel >> 5) & 0x1F
    desc2 = first_parcel & 0x1F
    extensions = sum(
        1 for d in (desc1, desc2) if _descriptor_needs_extension(d)
    )
    return 1 + 2 * extensions


def peek_opcode(first_parcel: int) -> Opcode:
    """Extract the opcode from a base parcel without full decode
    (what the PDU's first-level decoder does)."""
    return _opcode_from_parcel(first_parcel)


def _opcode_from_parcel(parcel: int) -> Opcode:
    index = (parcel >> 10) & 0x3F
    if index >= len(_OPCODE_LIST):
        raise EncodingError(f"illegal opcode index {index}")
    return _OPCODE_LIST[index]


def decode_instruction(parcels: Sequence[int], offset: int = 0) -> Instruction:
    """Decode one instruction starting at ``parcels[offset]``.

    Raises :class:`EncodingError` on malformed input (including truncated
    extensions). Use :func:`instruction_length` on the base parcel to know
    how many parcels the instruction consumes.
    """
    if offset >= len(parcels):
        raise EncodingError("decode past end of parcel stream")
    base = parcels[offset]
    opcode = _opcode_from_parcel(base)
    cls = opcode_class(opcode)
    length = instruction_length(base)
    if offset + length > len(parcels):
        raise EncodingError(
            f"truncated instruction: {opcode.value} needs {length} parcels"
        )

    if cls in (OpClass.NOP, OpClass.HALT, OpClass.RETURN):
        return Instruction(opcode)

    if cls is OpClass.FRAME:
        size = base & 0x3FF
        if size == 0x3FF:
            size = join_parcels(parcels[offset + 1], parcels[offset + 2])
        return Instruction(opcode, (Operand(AddrMode.IMM, size),))

    if cls in (OpClass.JMP, OpClass.CONDJMP, OpClass.CALL):
        if is_short_branch_opcode(opcode):
            displacement = to_s10(base & 0x3FF) * PARCEL_BYTES
            spec = BranchSpec(BranchMode.PC_RELATIVE, displacement)
        else:
            mode_bits = (base >> 8) & 0x3
            if mode_bits not in _BRANCH_MODE_FROM_BITS:
                raise EncodingError(f"illegal long-branch mode {mode_bits}")
            value = join_parcels(parcels[offset + 1], parcels[offset + 2])
            spec = BranchSpec(_BRANCH_MODE_FROM_BITS[mode_bits], value)
        return Instruction(opcode, (), spec)

    # ALU / compare
    descs = [(base >> 5) & 0x1F, base & 0x1F]
    operands: list[Operand] = []
    cursor = offset + 1
    for desc in descs:
        if desc == _DESC_NONE:
            continue
        extension = None
        if _descriptor_needs_extension(desc):
            extension = join_parcels(parcels[cursor], parcels[cursor + 1])
            cursor += 2
        operands.append(_decode_descriptor(desc, extension))
    try:
        return Instruction(opcode, tuple(operands))
    except ValueError as exc:
        raise EncodingError(f"malformed instruction parcel: {exc}") from exc


def encode_program(instructions: Sequence[Instruction]) -> list[int]:
    """Encode a sequence of instructions into a flat parcel list."""
    parcels: list[int] = []
    for instruction in instructions:
        parcels.extend(encode_instruction(instruction))
    return parcels
