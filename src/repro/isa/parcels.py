"""Parcel-level utilities.

A *parcel* is a 16-bit instruction unit, the atom of CRISP instruction
encoding. Instructions are aligned on parcel (16-bit) boundaries and are
one, three or five parcels long. One-parcel branches carry a 10-bit signed
PC-relative offset measured in bytes, giving the paper's −1024 … +1022 byte
range (the offset is always even, so it is stored as a signed parcel count).
"""

from __future__ import annotations

PARCEL_BYTES = 2
"""Size of one instruction parcel in bytes."""

WORD_BYTES = 4
"""Size of a machine word (and of every data operand) in bytes."""

SHORT_BRANCH_MIN = -1024
"""Most negative byte displacement encodable by a one-parcel branch."""

SHORT_BRANCH_MAX = 1022
"""Most positive byte displacement encodable by a one-parcel branch."""

MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF


def to_u16(value: int) -> int:
    """Truncate ``value`` to an unsigned 16-bit parcel."""
    return value & MASK16


def to_u32(value: int) -> int:
    """Truncate ``value`` to an unsigned 32-bit word."""
    return value & MASK32


def to_s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed two's-complement word."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def to_s10(value: int) -> int:
    """Interpret the low 10 bits of ``value`` as a signed two's-complement field."""
    value &= 0x3FF
    return value - 0x400 if value & 0x200 else value


def fits_short_branch(displacement: int) -> bool:
    """Return True if a byte displacement fits a one-parcel branch.

    The displacement must be parcel-aligned (even) and within the 10-bit
    signed parcel-offset range.
    """
    if displacement % PARCEL_BYTES != 0:
        return False
    return SHORT_BRANCH_MIN <= displacement <= SHORT_BRANCH_MAX


def split_word(word: int) -> tuple[int, int]:
    """Split a 32-bit word into (high parcel, low parcel)."""
    word = to_u32(word)
    return (word >> 16) & MASK16, word & MASK16


def join_parcels(high: int, low: int) -> int:
    """Join two 16-bit parcels into a 32-bit word (high parcel first)."""
    return ((high & MASK16) << 16) | (low & MASK16)
