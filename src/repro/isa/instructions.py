"""The architectural instruction: opcode + operands + branch specifier.

An :class:`Instruction` is what the assembler produces and what both
simulators execute. Its encoded length in parcels is fully determined by
its contents (:meth:`Instruction.length_parcels`), which is what the branch
folder keys on — CRISP folds only one- and three-parcel non-branching
instructions with one-parcel branches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.opcodes import (
    OPCODE_INDEX,
    BranchKind,
    OpClass,
    Opcode,
    condjmp_predicted_taken,
    condjmp_sense,
    is_branch_opcode,
    is_short_branch_opcode,
    opcode_class,
)
from repro.isa.operands import Operand
from repro.isa.parcels import PARCEL_BYTES, fits_short_branch, to_s32


class BranchMode(enum.Enum):
    """Target addressing mode of a branch instruction."""

    PC_RELATIVE = "pcrel"  #: one-parcel form, 10-bit byte displacement
    ABSOLUTE = "abs"  #: three-parcel form, 32-bit absolute address
    INDIRECT_ABS = "ind_abs"  #: branch to M[absolute address]
    INDIRECT_SP = "ind_sp"  #: branch to M[SP + 32-bit offset]


@dataclass(frozen=True)
class BranchSpec:
    """Where a branch transfers control.

    ``value`` is a byte displacement for :attr:`BranchMode.PC_RELATIVE`
    (relative to the address of the branch instruction itself — when a
    branch is folded, the hardware applies a *branch adjust* so the stored
    displacement stays relative to the branch), an absolute address for
    :attr:`BranchMode.ABSOLUTE` / :attr:`BranchMode.INDIRECT_ABS`, and a
    stack offset for :attr:`BranchMode.INDIRECT_SP`.
    """

    mode: BranchMode
    value: int

    def __post_init__(self) -> None:
        if self.mode is BranchMode.PC_RELATIVE and not fits_short_branch(self.value):
            raise ValueError(
                f"PC-relative displacement {self.value} outside one-parcel "
                f"branch range [-1024, +1022] or not parcel-aligned"
            )

    @property
    def is_indirect(self) -> bool:
        """True if the target comes from memory at branch time."""
        return self.mode in (BranchMode.INDIRECT_ABS, BranchMode.INDIRECT_SP)

    def __str__(self) -> str:
        if self.mode is BranchMode.PC_RELATIVE:
            return f".{self.value:+d}"
        if self.mode is BranchMode.ABSOLUTE:
            return f"{self.value:#x}"
        if self.mode is BranchMode.INDIRECT_ABS:
            return f"(*{self.value:#x})"
        return f"({self.value}(sp))"


@dataclass(frozen=True)
class Instruction:
    """One architectural CRISP instruction.

    ``operands`` carries the data operands (0, 1 or 2 of them, by opcode
    class); ``branch`` carries the control-transfer specifier for branch
    opcodes. ``label`` is optional symbolic metadata preserved by the
    assembler for listings; it never affects semantics or encoding.
    """

    opcode: Opcode
    operands: tuple[Operand, ...] = ()
    branch: BranchSpec | None = None
    label: str | None = field(default=None, compare=False)

    # Everything derivable from the frozen fields — class, lengths, branch
    # metadata — is computed once here and stored as plain instance
    # attributes (not dataclass fields, so __init__/__eq__/__repr__ keep
    # their shape), because the simulators read these on every execution
    # of the instruction.

    def __post_init__(self) -> None:
        cls = opcode_class(self.opcode)
        expected = _OPERAND_COUNT[cls]
        if len(self.operands) != expected:
            raise ValueError(
                f"{self.opcode.value} takes {expected} operand(s), "
                f"got {len(self.operands)}"
            )
        if cls in (OpClass.ALU2,) and not self.operands[0].is_writable:
            raise ValueError(f"{self.opcode.value} destination must be writable")
        branching = is_branch_opcode(self.opcode)
        if branching and cls is not OpClass.RETURN:
            if self.branch is None:
                raise ValueError(f"{self.opcode.value} requires a branch target")
            if is_short_branch_opcode(self.opcode):
                if self.branch.mode is not BranchMode.PC_RELATIVE:
                    raise ValueError("short branches are PC-relative only")
            elif self.branch.mode is BranchMode.PC_RELATIVE:
                raise ValueError("long branches cannot be PC-relative")
            if self.opcode is Opcode.CALL and self.branch.mode is BranchMode.PC_RELATIVE:
                raise ValueError("call uses the three-parcel form")
        elif self.branch is not None and not branching:
            raise ValueError(f"{self.opcode.value} cannot carry a branch target")

        cache = object.__setattr__
        cache(self, "op_class", cls)
        cache(self, "is_branch", branching)
        cache(self, "is_conditional_branch", cls is OpClass.CONDJMP)
        cache(self, "sets_flag", cls is OpClass.CMP)
        cache(self, "opcode_index", OPCODE_INDEX[self.opcode])
        if cls is OpClass.CONDJMP:
            cache(self, "_branch_sense", condjmp_sense(self.opcode))
            cache(self, "_predicted_taken",
                  condjmp_predicted_taken(self.opcode))
        else:
            cache(self, "_branch_sense",
                  BranchKind.ALWAYS if branching else None)
            cache(self, "_predicted_taken", None)
        parcels = self._compute_length_parcels(cls)
        cache(self, "_length_parcels", parcels)
        cache(self, "_length_bytes", parcels * PARCEL_BYTES)

    # ---- classification ------------------------------------------------
    #
    # ``op_class`` / ``is_branch`` / ``is_conditional_branch`` /
    # ``sets_flag`` / ``opcode_index`` are plain attributes cached by
    # ``__post_init__`` (see above). The two below keep their historical
    # raising behaviour for non-branch opcodes, so they stay properties
    # over the cached values.

    @property
    def branch_sense(self) -> BranchKind:
        """ALWAYS / IF_TRUE / IF_FALSE for branch opcodes."""
        sense = self._branch_sense
        if sense is None:
            raise ValueError(f"{self.opcode.value} is not a branch")
        return sense

    @property
    def predicted_taken(self) -> bool:
        """The static branch-prediction bit (conditional branches only)."""
        predicted = self._predicted_taken
        if predicted is None:
            raise KeyError(self.opcode)
        return predicted

    # ---- encoding geometry ----------------------------------------------

    def _compute_length_parcels(self, cls: OpClass) -> int:
        if cls in (OpClass.RETURN, OpClass.NOP, OpClass.HALT):
            return 1
        if cls is OpClass.FRAME:
            # ``enter`` has a dedicated 10-bit frame-size field in-parcel;
            # the all-ones pattern marks the three-parcel extended form.
            return 1 if 0 <= self.operands[0].value <= 1022 else 3
        if is_branch_opcode(self.opcode):
            return 1 if is_short_branch_opcode(self.opcode) else 3
        extensions = sum(0 if op.fits_in_parcel else 1 for op in self.operands)
        return 1 + 2 * extensions

    def length_parcels(self) -> int:
        """Encoded length in 16-bit parcels (always 1, 3 or 5)."""
        return self._length_parcels

    def length_bytes(self) -> int:
        """Encoded length in bytes."""
        return self._length_bytes

    # ---- presentation ----------------------------------------------------

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.branch is not None:
            parts.append(str(self.branch))
        elif self.operands:
            parts.append(",".join(str(op) for op in self.operands))
        return " ".join(parts)


_OPERAND_COUNT = {
    OpClass.ALU2: 2,
    OpClass.ALU3: 2,
    OpClass.CMP: 2,
    OpClass.JMP: 0,
    OpClass.CONDJMP: 0,
    OpClass.CALL: 0,
    OpClass.RETURN: 0,
    OpClass.FRAME: 1,
    OpClass.NOP: 0,
    OpClass.HALT: 0,
}


def nop() -> Instruction:
    """A no-operation instruction."""
    return Instruction(Opcode.NOP)


def halt() -> Instruction:
    """A halt instruction (stops the simulators)."""
    return Instruction(Opcode.HALT)


def resolve_target(instruction: Instruction, pc: int, sp: int,
                   read_word) -> int:
    """Compute a branch instruction's target address.

    ``pc`` is the address of the *branch instruction itself* (displacements
    are branch-relative; folding hardware compensates with the branch
    adjust). ``read_word`` is a callable ``addr -> word`` used for the
    indirect modes. ``return`` targets are resolved by the caller from the
    stack, not here.
    """
    spec = instruction.branch
    if spec is None:
        raise ValueError(f"{instruction.opcode.value} has no branch target")
    if spec.mode is BranchMode.PC_RELATIVE:
        return pc + to_s32(spec.value)
    if spec.mode is BranchMode.ABSOLUTE:
        return spec.value
    if spec.mode is BranchMode.INDIRECT_ABS:
        return read_word(spec.value)
    return read_word(sp + spec.value)
