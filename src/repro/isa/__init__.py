"""CRISP-like instruction set architecture.

This package defines the instruction set used throughout the reproduction:

* 16-bit instruction *parcels*; instructions are one, three or five parcels
  long (:mod:`repro.isa.parcels`, :mod:`repro.isa.encoding`).
* Separate ``cmp`` and conditional-branch instructions; a single
  condition-code flag that only ``cmp`` may modify.
* One-parcel branches with a 10-bit PC-relative offset (range −1024 … +1022
  bytes) and three-parcel branches with a 32-bit specifier (absolute, or
  indirect through an absolute address / stack offset).
* A static branch-prediction bit in every conditional branch.
* No instruction side effects before the final result write, so any
  instruction can be squashed by clearing a pipeline valid bit.

The exact binary encoding of CRISP was never fully published; the encoding
here is self-consistent and preserves every property the paper's mechanisms
depend on (see DESIGN.md, "Substitutions").
"""

from repro.isa.operands import AddrMode, Operand, acc, acc_ind, imm, absolute, sp_off
from repro.isa.opcodes import (
    BranchKind,
    Condition,
    Opcode,
    OpClass,
    ALU_FUNCTIONS,
    opcode_class,
    opcode_condition,
)
from repro.isa.instructions import Instruction, BranchSpec, BranchMode
from repro.isa.encoding import (
    EncodingError,
    encode_instruction,
    decode_instruction,
    instruction_length,
)
from repro.isa.parcels import (
    PARCEL_BYTES,
    SHORT_BRANCH_MIN,
    SHORT_BRANCH_MAX,
    to_u16,
    to_s32,
    to_u32,
    fits_short_branch,
)

__all__ = [
    "AddrMode",
    "Operand",
    "acc",
    "acc_ind",
    "imm",
    "absolute",
    "sp_off",
    "BranchKind",
    "Condition",
    "Opcode",
    "OpClass",
    "ALU_FUNCTIONS",
    "opcode_class",
    "opcode_condition",
    "Instruction",
    "BranchSpec",
    "BranchMode",
    "EncodingError",
    "encode_instruction",
    "decode_instruction",
    "instruction_length",
    "PARCEL_BYTES",
    "SHORT_BRANCH_MIN",
    "SHORT_BRANCH_MAX",
    "to_u16",
    "to_s32",
    "to_u32",
    "fits_short_branch",
]
