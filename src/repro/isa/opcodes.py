"""Opcode definitions and per-opcode metadata.

Opcode families:

* **Two-operand ALU** (``dst, src``): ``dst = dst OP src`` (``mov``, ``not``
  and ``neg`` are the unary exceptions: ``dst = OP(src)``).
* **Three-operand ALU to the accumulator** (``src1, src2``):
  ``Accum = src1 OP src2`` — the paper's ``and3 i,1`` form.
* **Compare**: ``cmp.<cond> a, b`` sets the single condition-code flag.
  Compares are the *only* instructions that can modify the flag, a CRISP
  instruction-set decision the paper calls out explicitly.
* **Branches**: unconditional ``jmp``, conditional ``ifjmp`` on the flag
  being true or false, ``call``/``return``, and indirect forms. Short
  (one-parcel) and long (three-parcel) branches have distinct opcodes.
* **Frame / misc**: ``enter`` (allocate a stack frame), ``nop``, ``halt``.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.isa.parcels import to_s32, to_u32


class OpClass(enum.Enum):
    """Coarse behavioural class of an opcode."""

    ALU2 = "alu2"  #: two-operand ALU, writes first operand
    ALU3 = "alu3"  #: three-operand ALU, writes the accumulator
    CMP = "cmp"  #: compare, writes the condition-code flag
    JMP = "jmp"  #: unconditional branch
    CONDJMP = "condjmp"  #: conditional branch on the flag
    CALL = "call"  #: subroutine call (branching, pushes return address)
    RETURN = "return"  #: subroutine return (branching, pops return address)
    FRAME = "frame"  #: stack-frame management (``enter``)
    NOP = "nop"  #: no operation
    HALT = "halt"  #: stop simulation


class Condition(enum.Enum):
    """Comparison condition for ``cmp`` opcodes.

    Signed conditions carry an ``s`` prefix in assembly (``cmp.s<``),
    unsigned a ``u`` prefix, matching the paper's ``cmp.s< i,1024``.
    """

    EQ = "="
    NE = "!="
    SLT = "s<"
    SLE = "s<="
    SGT = "s>"
    SGE = "s>="
    ULT = "u<"
    ULE = "u<="
    UGT = "u>"
    UGE = "u>="


class BranchKind(enum.Enum):
    """How a branch decides whether it transfers control."""

    ALWAYS = "always"
    IF_TRUE = "if_true"  #: transfer when the flag is 1
    IF_FALSE = "if_false"  #: transfer when the flag is 0


class Opcode(enum.Enum):
    """Every opcode in the CRISP-like instruction set."""

    # two-operand ALU
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    UDIV = "udiv"
    UREM = "urem"
    NOT = "not"
    NEG = "neg"
    # three-operand ALU (accumulator destination)
    ADD3 = "add3"
    SUB3 = "sub3"
    AND3 = "and3"
    OR3 = "or3"
    XOR3 = "xor3"
    SHL3 = "shl3"
    SHR3 = "shr3"
    SAR3 = "sar3"
    MUL3 = "mul3"
    DIV3 = "div3"
    REM3 = "rem3"
    UDIV3 = "udiv3"
    UREM3 = "urem3"
    # compares (the only flag writers)
    CMP_EQ = "cmp.="
    CMP_NE = "cmp.!="
    CMP_SLT = "cmp.s<"
    CMP_SLE = "cmp.s<="
    CMP_SGT = "cmp.s>"
    CMP_SGE = "cmp.s>="
    CMP_ULT = "cmp.u<"
    CMP_ULE = "cmp.u<="
    CMP_UGT = "cmp.u>"
    CMP_UGE = "cmp.u>="
    # branches — short (one parcel, 10-bit PC-relative)
    JMP = "jmp"
    IFJMP_T_Y = "iftjmpy"  #: if flag true, predicted taken
    IFJMP_T_N = "iftjmpn"  #: if flag true, predicted not taken
    IFJMP_F_Y = "iffjmpy"  #: if flag false, predicted taken
    IFJMP_F_N = "iffjmpn"  #: if flag false, predicted not taken
    # branches — long (three parcels, 32-bit specifier)
    JMPL = "jmpl"
    IFJMPL_T_Y = "iftjmply"
    IFJMPL_T_N = "iftjmpln"
    IFJMPL_F_Y = "iffjmply"
    IFJMPL_F_N = "iffjmpln"
    # call / return / frame
    CALL = "call"
    RETURN = "return"
    RETI = "reti"  #: return from interrupt: pops saved PSW flag, then PC
    ENTER = "enter"  #: allocate a stack frame: SP -= size
    SPADD = "spadd"  #: deallocate: SP += size (function epilogues)
    # misc
    NOP = "nop"
    HALT = "halt"


def _sar(a: int, b: int) -> int:
    return to_s32(a) >> (b & 31)


def _div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero in simulated program")
    return int(to_s32(a) / to_s32(b))  # C-style truncation toward zero


def _rem(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("remainder by zero in simulated program")
    sa, sb = to_s32(a), to_s32(b)
    return sa - int(sa / sb) * sb


def _udiv(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero in simulated program")
    return to_u32(a) // to_u32(b)


def _urem(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("remainder by zero in simulated program")
    return to_u32(a) % to_u32(b)


ALU_FUNCTIONS: dict[Opcode, Callable[[int, int], int]] = {
    Opcode.MOV: lambda a, b: b,
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 31),
    Opcode.SHR: lambda a, b: to_u32(a) >> (b & 31),
    Opcode.SAR: _sar,
    Opcode.MUL: lambda a, b: to_s32(a) * to_s32(b),
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    Opcode.UDIV: _udiv,
    Opcode.UREM: _urem,
    Opcode.NOT: lambda a, b: ~b,
    Opcode.NEG: lambda a, b: -b,
    Opcode.ADD3: lambda a, b: a + b,
    Opcode.SUB3: lambda a, b: a - b,
    Opcode.AND3: lambda a, b: a & b,
    Opcode.OR3: lambda a, b: a | b,
    Opcode.XOR3: lambda a, b: a ^ b,
    Opcode.SHL3: lambda a, b: a << (b & 31),
    Opcode.SHR3: lambda a, b: to_u32(a) >> (b & 31),
    Opcode.SAR3: _sar,
    Opcode.MUL3: lambda a, b: to_s32(a) * to_s32(b),
    Opcode.DIV3: _div,
    Opcode.REM3: _rem,
    Opcode.UDIV3: _udiv,
    Opcode.UREM3: _urem,
}
"""ALU computation per opcode (inputs and result as Python ints, truncated
to 32 bits by the caller)."""

CONDITION_FUNCTIONS: dict[Condition, Callable[[int, int], bool]] = {
    Condition.EQ: lambda a, b: to_u32(a) == to_u32(b),
    Condition.NE: lambda a, b: to_u32(a) != to_u32(b),
    Condition.SLT: lambda a, b: to_s32(a) < to_s32(b),
    Condition.SLE: lambda a, b: to_s32(a) <= to_s32(b),
    Condition.SGT: lambda a, b: to_s32(a) > to_s32(b),
    Condition.SGE: lambda a, b: to_s32(a) >= to_s32(b),
    Condition.ULT: lambda a, b: to_u32(a) < to_u32(b),
    Condition.ULE: lambda a, b: to_u32(a) <= to_u32(b),
    Condition.UGT: lambda a, b: to_u32(a) > to_u32(b),
    Condition.UGE: lambda a, b: to_u32(a) >= to_u32(b),
}
"""Flag computation per compare condition."""

_TWO_OP = {
    Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.SHR, Opcode.SAR, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.UDIV, Opcode.UREM, Opcode.NOT, Opcode.NEG,
}
_THREE_OP = {
    Opcode.ADD3, Opcode.SUB3, Opcode.AND3, Opcode.OR3, Opcode.XOR3,
    Opcode.SHL3, Opcode.SHR3, Opcode.SAR3, Opcode.MUL3, Opcode.DIV3,
    Opcode.REM3, Opcode.UDIV3, Opcode.UREM3,
}
_CMP_CONDITION = {
    Opcode.CMP_EQ: Condition.EQ,
    Opcode.CMP_NE: Condition.NE,
    Opcode.CMP_SLT: Condition.SLT,
    Opcode.CMP_SLE: Condition.SLE,
    Opcode.CMP_SGT: Condition.SGT,
    Opcode.CMP_SGE: Condition.SGE,
    Opcode.CMP_ULT: Condition.ULT,
    Opcode.CMP_ULE: Condition.ULE,
    Opcode.CMP_UGT: Condition.UGT,
    Opcode.CMP_UGE: Condition.UGE,
}
_SHORT_CONDJMP = {
    Opcode.IFJMP_T_Y: (BranchKind.IF_TRUE, True),
    Opcode.IFJMP_T_N: (BranchKind.IF_TRUE, False),
    Opcode.IFJMP_F_Y: (BranchKind.IF_FALSE, True),
    Opcode.IFJMP_F_N: (BranchKind.IF_FALSE, False),
}
_LONG_CONDJMP = {
    Opcode.IFJMPL_T_Y: (BranchKind.IF_TRUE, True),
    Opcode.IFJMPL_T_N: (BranchKind.IF_TRUE, False),
    Opcode.IFJMPL_F_Y: (BranchKind.IF_FALSE, True),
    Opcode.IFJMPL_F_N: (BranchKind.IF_FALSE, False),
}
_CONDJMP = {**_SHORT_CONDJMP, **_LONG_CONDJMP}


def _classify(opcode: Opcode) -> OpClass:
    if opcode in _TWO_OP:
        return OpClass.ALU2
    if opcode in _THREE_OP:
        return OpClass.ALU3
    if opcode in _CMP_CONDITION:
        return OpClass.CMP
    if opcode in (Opcode.JMP, Opcode.JMPL):
        return OpClass.JMP
    if opcode in _CONDJMP:
        return OpClass.CONDJMP
    if opcode is Opcode.CALL:
        return OpClass.CALL
    if opcode in (Opcode.RETURN, Opcode.RETI):
        return OpClass.RETURN
    if opcode in (Opcode.ENTER, Opcode.SPADD):
        return OpClass.FRAME
    if opcode is Opcode.NOP:
        return OpClass.NOP
    return OpClass.HALT


_OPCODE_CLASS: dict[Opcode, OpClass] = {op: _classify(op) for op in Opcode}
_IS_BRANCH: dict[Opcode, bool] = {
    op: _OPCODE_CLASS[op] in (OpClass.JMP, OpClass.CONDJMP,
                              OpClass.CALL, OpClass.RETURN)
    for op in Opcode
}

OPCODE_INDEX: dict[Opcode, int] = {op: i for i, op in enumerate(Opcode)}
"""Dense ordinal per opcode: list-based dispatch tables index on this
instead of hashing enum members in the simulator's inner loop."""

NUM_OPCODES = len(OPCODE_INDEX)


def opcode_class(opcode: Opcode) -> OpClass:
    """Return the behavioural class of ``opcode``."""
    return _OPCODE_CLASS[opcode]


def opcode_condition(opcode: Opcode) -> Condition:
    """Return the compare condition of a ``cmp`` opcode."""
    return _CMP_CONDITION[opcode]


def condjmp_sense(opcode: Opcode) -> BranchKind:
    """Return whether a conditional branch transfers on flag true or false."""
    return _CONDJMP[opcode][0]


def condjmp_predicted_taken(opcode: Opcode) -> bool:
    """Return the static prediction bit baked into a conditional-jump opcode."""
    return _CONDJMP[opcode][1]


def is_branch_opcode(opcode: Opcode) -> bool:
    """True for every control-transfer opcode (jmp/ifjmp/call/return)."""
    return _IS_BRANCH[opcode]


def is_short_branch_opcode(opcode: Opcode) -> bool:
    """True for one-parcel (10-bit PC-relative) branch opcodes."""
    return opcode is Opcode.JMP or opcode in _SHORT_CONDJMP


def short_condjmp_opcode(sense: BranchKind, predicted_taken: bool) -> Opcode:
    """Build the short conditional-jump opcode for a sense/prediction pair."""
    for opcode, (kind, pred) in _SHORT_CONDJMP.items():
        if kind is sense and pred is predicted_taken:
            return opcode
    raise ValueError(f"no short conditional jump for {sense}")


def long_condjmp_opcode(sense: BranchKind, predicted_taken: bool) -> Opcode:
    """Build the long conditional-jump opcode for a sense/prediction pair."""
    for opcode, (kind, pred) in _LONG_CONDJMP.items():
        if kind is sense and pred is predicted_taken:
            return opcode
    raise ValueError(f"no long conditional jump for {sense}")


def cmp_opcode(condition: Condition) -> Opcode:
    """Build the compare opcode for ``condition``."""
    for opcode, cond in _CMP_CONDITION.items():
        if cond is condition:
            return opcode
    raise ValueError(f"no compare opcode for {condition}")
