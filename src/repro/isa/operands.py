"""Instruction operands and addressing modes.

CRISP is a memory-to-memory architecture with a stack cache; operands name
memory locations (absolute addresses or stack-pointer offsets), immediates,
or the accumulator. The paper's compiler output uses exactly these forms
(``add sum,i``, ``and3 i,1``, ``cmp.= Accum,0``).

Short (in-parcel) encodings exist for small immediates and small
word-aligned stack offsets; anything else takes a 32-bit extension, which is
what pushes an instruction from one parcel to three or five.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.parcels import to_s32

SHORT_IMM_MIN = -8
SHORT_IMM_MAX = 7
SHORT_SPOFF_MAX = 36  # word-aligned stack offsets 0..36 encode in-parcel


class AddrMode(enum.Enum):
    """Operand addressing mode."""

    IMM = "imm"  #: immediate constant
    ABS = "abs"  #: direct memory access at an absolute address
    SP_OFF = "sp"  #: memory at stack pointer + byte offset
    ACC = "acc"  #: the accumulator pseudo-register
    ACC_IND = "acc_ind"  #: memory at the address held in the accumulator


@dataclass(frozen=True)
class Operand:
    """A single instruction operand: an addressing mode plus its value.

    ``value`` is an immediate constant for :attr:`AddrMode.IMM`, a byte
    address for :attr:`AddrMode.ABS`, a byte offset for
    :attr:`AddrMode.SP_OFF`, and unused (zero) for the accumulator modes.
    """

    mode: AddrMode
    value: int = 0

    # ``fits_in_parcel`` is a plain instance attribute (not a dataclass
    # field, so __init__/__eq__/__repr__ are unchanged) cached at
    # construction — it is fixed by mode/value and read on every
    # length computation.

    def __post_init__(self) -> None:
        if self.mode in (AddrMode.ACC, AddrMode.ACC_IND) and self.value != 0:
            raise ValueError(f"{self.mode.name} operand takes no value")
        if self.mode is AddrMode.SP_OFF and self.value < 0:
            raise ValueError("stack offsets must be non-negative")
        if self.mode is AddrMode.ABS and not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError("absolute address out of 32-bit range")
        if self.mode is AddrMode.IMM and not -0x80000000 <= self.value <= 0xFFFFFFFF:
            raise ValueError("immediate out of 32-bit range")
        object.__setattr__(self, "fits_in_parcel", self._fits_in_parcel())

    @property
    def is_memory(self) -> bool:
        """True if the operand names a memory location."""
        return self.mode in (AddrMode.ABS, AddrMode.SP_OFF, AddrMode.ACC_IND)

    @property
    def is_writable(self) -> bool:
        """True if the operand may be used as a destination."""
        return self.mode is not AddrMode.IMM

    def _fits_in_parcel(self) -> bool:
        if self.mode in (AddrMode.ACC, AddrMode.ACC_IND):
            return True
        if self.mode is AddrMode.IMM:
            return SHORT_IMM_MIN <= to_s32(self.value) <= SHORT_IMM_MAX
        if self.mode is AddrMode.SP_OFF:
            return self.value % 4 == 0 and 0 <= self.value <= SHORT_SPOFF_MAX
        return False  # ABS always needs a 32-bit extension

    def __str__(self) -> str:
        if self.mode is AddrMode.IMM:
            return f"${to_s32(self.value)}"
        if self.mode is AddrMode.ABS:
            return f"*{self.value:#x}"
        if self.mode is AddrMode.SP_OFF:
            return f"{self.value}(sp)"
        if self.mode is AddrMode.ACC:
            return "Accum"
        return "(Accum)"


def imm(value: int) -> Operand:
    """Immediate operand."""
    return Operand(AddrMode.IMM, value)


def absolute(address: int) -> Operand:
    """Direct-memory operand at an absolute byte address."""
    return Operand(AddrMode.ABS, address)


def sp_off(offset: int) -> Operand:
    """Memory operand at stack pointer + ``offset`` bytes."""
    return Operand(AddrMode.SP_OFF, offset)


def acc() -> Operand:
    """The accumulator."""
    return Operand(AddrMode.ACC)


def acc_ind() -> Operand:
    """Memory at the address held in the accumulator."""
    return Operand(AddrMode.ACC_IND)
