"""The retained reference kernel: the pre-fast-path cycle simulator.

This module is a deliberate snapshot of the execution unit and CPU step
loop as they existed *before* the fast-kernel refactor (pre-decoded
dispatch tables, latch reuse, batched counters).  It re-derives every
decoded-entry control bit and instruction property on each access — the
cost model of the original code — and allocates a fresh stage latch per
fetch, exactly as the original did.

Two consumers depend on it staying put:

* the differential tests (``tests/test_sim_fastpath.py``) prove the fast
  kernel reproduces this kernel's :class:`~repro.sim.stats.PipelineStats`
  bit for bit over the Table-4 cases, the workload suite and randomly
  generated programs;
* ``benchmarks/bench_sim_throughput.py`` uses it as the serial baseline
  the fast path's cycles/sec target is measured against.

It intentionally does **not** share the optimised helpers: the point is
an independently-written (well: independently-preserved) step function.
Interrupt delivery is the one feature not carried over — the reference
exists to check the steady-state pipeline, and the interrupt tests drive
the real kernel directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.core.decoded import DecodedEntry
from repro.isa.opcodes import (
    ALU_FUNCTIONS,
    BranchKind,
    CONDITION_FUNCTIONS,
    OpClass,
    Opcode,
    opcode_class,
    opcode_condition,
)
from repro.isa.parcels import PARCEL_BYTES, to_u16, to_u32
from repro.obs.events import EventBus
from repro.sim.icache import DecodedICache
from repro.sim.memory import Memory
from repro.sim.dynfold import DynamicFoldUnit, ShadowRecord
from repro.sim.pdu import PrefetchDecodeUnit
from repro.sim.semantics import (
    MachineState,
    SimulationError,
    SimulationHungError,
)
from repro.sim.stats import PipelineStats

# ---- per-access property derivation (the pre-refactor cost model) --------


def _length_parcels(instruction) -> int:
    cls = opcode_class(instruction.opcode)
    if cls in (OpClass.RETURN, OpClass.NOP, OpClass.HALT):
        return 1
    if cls is OpClass.FRAME:
        return 1 if 0 <= instruction.operands[0].value <= 1022 else 3
    if cls in (OpClass.JMP, OpClass.CONDJMP, OpClass.CALL):
        from repro.isa.opcodes import is_short_branch_opcode
        return 1 if is_short_branch_opcode(instruction.opcode) else 3
    extensions = sum(0 if op.fits_in_parcel else 1
                     for op in instruction.operands)
    return 1 + 2 * extensions


def _length_bytes(instruction) -> int:
    return _length_parcels(instruction) * PARCEL_BYTES


def _sets_cc(entry: DecodedEntry) -> bool:
    return (entry.body is not None
            and opcode_class(entry.body.opcode) is OpClass.CMP)


def _uses_cc(entry: DecodedEntry) -> bool:
    return (entry.branch is not None
            and opcode_class(entry.branch.opcode) is OpClass.CONDJMP)


def _is_folded(entry: DecodedEntry) -> bool:
    return entry.body is not None and entry.branch is not None


def _branch_pc(entry: DecodedEntry) -> int:
    if entry.body is None:
        return entry.address
    return entry.address + _length_bytes(entry.body)


def _branch_sense(entry: DecodedEntry) -> BranchKind:
    from repro.isa.opcodes import condjmp_sense
    if opcode_class(entry.branch.opcode) is OpClass.CONDJMP:
        return condjmp_sense(entry.branch.opcode)
    return BranchKind.ALWAYS


def _taken_when(entry: DecodedEntry, flag: bool) -> bool:
    sense = _branch_sense(entry)
    if sense is BranchKind.ALWAYS:
        return True
    if sense is BranchKind.IF_TRUE:
        return flag
    return not flag


def _predicted_taken(entry: DecodedEntry) -> bool:
    from repro.isa.opcodes import condjmp_predicted_taken
    return condjmp_predicted_taken(entry.branch.opcode)


def _dyn_foldable(entry: DecodedEntry) -> bool:
    return (_uses_cc(entry) and entry.body is not None
            and entry.next_pc is not None)


def _resolve_target(instruction, pc: int, sp: int, read_word) -> int:
    from repro.isa.instructions import BranchMode
    from repro.isa.parcels import to_s32
    spec = instruction.branch
    if spec.mode is BranchMode.PC_RELATIVE:
        return pc + to_s32(spec.value)
    if spec.mode is BranchMode.ABSOLUTE:
        return spec.value
    if spec.mode is BranchMode.INDIRECT_ABS:
        return read_word(spec.value)
    return read_word(sp + spec.value)


class ReferenceMemory(Memory):
    """Byte-at-a-time word/parcel access, as before the refactor."""

    def read_parcel(self, address: int) -> int:
        return self.read_byte(address) | (self.read_byte(address + 1) << 8)

    def write_parcel(self, address: int, value: int) -> None:
        value = to_u16(value)
        self.write_byte(address, value & 0xFF)
        self.write_byte(address + 1, value >> 8)

    def read_word(self, address: int) -> int:
        return (self.read_byte(address)
                | (self.read_byte(address + 1) << 8)
                | (self.read_byte(address + 2) << 16)
                | (self.read_byte(address + 3) << 24))

    def write_word(self, address: int, value: int) -> None:
        value = to_u32(value)
        for i in range(4):
            self.write_byte(address + i, (value >> (8 * i)) & 0xFF)


def _execute(state: MachineState, instruction, pc: int):
    """The original architectural step: if-chain over opcode classes.

    Returns ``(next_pc, halted)``; mutates ``state``.
    """
    opcode = instruction.opcode
    cls = opcode_class(opcode)
    sequential = pc + _length_bytes(instruction)

    if cls is OpClass.HALT:
        state.halted = True
        return sequential, True
    if cls is OpClass.NOP:
        return sequential, False

    if cls is OpClass.ALU2:
        dst, src = instruction.operands
        left = state.read_operand(dst)
        right = state.read_operand(src)
        state.write_operand(dst, ALU_FUNCTIONS[opcode](left, right))
        return sequential, False

    if cls is OpClass.ALU3:
        left = state.read_operand(instruction.operands[0])
        right = state.read_operand(instruction.operands[1])
        state.accum = to_u32(ALU_FUNCTIONS[opcode](left, right))
        return sequential, False

    if cls is OpClass.CMP:
        left = state.read_operand(instruction.operands[0])
        right = state.read_operand(instruction.operands[1])
        state.flag = CONDITION_FUNCTIONS[opcode_condition(opcode)](left,
                                                                   right)
        return sequential, False

    if cls is OpClass.FRAME:
        size = instruction.operands[0].value
        if opcode is Opcode.ENTER:
            state.sp = to_u32(state.sp - size)
        else:
            state.sp = to_u32(state.sp + size)
        return sequential, False

    raise SimulationError(
        f"reference EU asked to execute branch opcode {opcode}")


@dataclass
class _Slot:
    """One pipeline stage latch, allocated per fetch as before."""

    entry: DecodedEntry
    seq: int
    valid: bool = True
    chosen_taken: bool | None = None
    other_pc: int | None = None
    governing_seq: int | None = None
    resolved: bool = True
    speculated: bool = False
    shadow: ShadowRecord | None = None


class ReferenceExecutionUnit:
    """The pre-refactor three-stage EU, preserved verbatim (plus the
    dynamic-fold verification path, mirrored from the fast kernel in
    this kernel's re-derive-everything style)."""

    def __init__(self, state: MachineState, stats: PipelineStats,
                 obs: EventBus, dyn: DynamicFoldUnit | None = None,
                 inject: str | None = None) -> None:
        self.state = state
        self.stats = stats
        self.obs = obs
        self._dyn = dyn
        self._inject_wrong = inject == "always-wrong"
        self._p_branch = obs.counter("branch.executed")
        self._p_folded = obs.counter("fold.succeeded")
        self._p_mispredict = obs.counter("mispredict.count")
        self._p_penalty = obs.counter("mispredict.penalty_cycles")
        self._p_squash = obs.counter("squash.slots")
        self._p_override = obs.counter("zero_cost.overrides")
        self._p_interlock = obs.counter("cc.interlock")
        self._p_interrupt = obs.counter("eu.interrupts")
        self._p_dynfold = obs.counter("fold.dynamic")
        self._p_verify_fail = obs.counter("fold.verify_fail")
        self._p_recovery = obs.counter("recovery.flush_cycles")
        self.ir: _Slot | None = None
        self.or_: _Slot | None = None
        self.rr: _Slot | None = None
        self.ir_next_pc: int | None = state.pc
        self.halted = False
        self._seq = 0
        self._redirected = False
        self.retire_next_pc: int = state.pc

    def _stage_of(self, slot: _Slot) -> str:
        if slot is self.rr:
            return "RR"
        if slot is self.or_:
            return "OR"
        return "IR"

    def _squash_younger(self, slot: _Slot, fetched: _Slot | None) -> None:
        order = [self.rr, self.or_, self.ir, fetched]
        seen = False
        for candidate in order:
            if candidate is slot:
                seen = True
                continue
            if seen and candidate is not None and candidate.valid:
                candidate.valid = False
                self.stats.squashed_slots += 1
                self._p_squash.inc()

    def tick(self, fetched_entry: DecodedEntry | None) -> None:
        fetched = None
        if fetched_entry is not None:
            self._seq += 1
            fetched = _Slot(fetched_entry, self._seq)

        self._redirected = False
        if self.rr is None or not self.rr.valid:
            self.stats.stall_cycles += 1
        self._execute_rr(fetched)

        self.rr, self.or_, self.ir = self.or_, self.ir, fetched
        if self.ir is not None and self.ir.valid:
            self._select_path(self.ir)

    def _execute_rr(self, fetched: _Slot | None) -> None:
        slot = self.rr
        if slot is None or not slot.valid:
            return
        entry = slot.entry

        self.stats.issued_instructions += 1
        self.retire_next_pc = entry.address + entry.length_bytes

        if entry.body is not None:
            _, halted = _execute(self.state, entry.body, entry.address)
            self.stats.executed_instructions += 1
            self.stats.execution.record(
                entry.body.opcode.value,
                is_branch=False, is_conditional=False, taken=False,
                one_parcel=_length_parcels(entry.body) == 1)
            if halted:
                self.halted = True
                return

        if _sets_cc(entry):
            self._resolve_dependents(slot, fetched)

        if entry.branch is not None:
            self._execute_branch_part(slot, fetched)

    def _execute_branch_part(self, slot: _Slot,
                             fetched: _Slot | None) -> None:
        entry = slot.entry
        branch = entry.branch
        state = self.state
        sequential = entry.address + entry.length_bytes
        cls = opcode_class(branch.opcode)

        if _is_folded(entry):
            self.stats.folded_branches += 1
            self._p_folded.inc(site=_branch_pc(entry))
        self.stats.executed_instructions += 1

        if cls is OpClass.RETURN:
            if branch.opcode is Opcode.RETI:
                state.flag = bool(state.memory.read_word(state.sp) & 1)
                state.sp = to_u32(state.sp + 4)
            target = state.memory.read_word(state.sp)
            state.sp = to_u32(state.sp + 4)
            self._redirect(target)
            self.retire_next_pc = target
            self._record_branch(slot, taken=True)
            return

        if entry.next_pc is None:  # dynamic target
            taken = (_taken_when(entry, state.flag)
                     if _uses_cc(entry) else True)
            if taken:
                target = _resolve_target(branch, _branch_pc(entry), state.sp,
                                         state.memory.read_word)
            else:
                target = sequential
            if cls is OpClass.CALL:
                state.sp = to_u32(state.sp - 4)
                state.memory.write_word(state.sp, sequential)
            self._redirect(target)
            self.retire_next_pc = target
            self._record_branch(slot, taken=taken)
            return

        if cls is OpClass.CALL:
            state.sp = to_u32(state.sp - 4)
            state.memory.write_word(state.sp, sequential)
            self.retire_next_pc = entry.next_pc
            self._record_branch(slot, taken=True)
            return

        if not _uses_cc(entry):
            self.retire_next_pc = entry.next_pc
            self._record_branch(slot, taken=True)
            return

        if not slot.resolved:
            correct = _taken_when(entry, self.state.flag)
            slot.resolved = True
            if slot.chosen_taken != correct:
                self.stats.mispredictions += 1
                self.stats.misprediction_penalty_cycles += 3
                self._p_mispredict.inc(stage="RR", folded=False,
                                       site=_branch_pc(entry))
                self._p_penalty.inc(3, site=_branch_pc(entry))
                slot.chosen_taken = correct
                self._squash_younger(slot, fetched)
                self._redirect(slot.other_pc)
        taken_pc = (entry.next_pc if _predicted_taken(entry)
                    else entry.alt_pc)
        self.retire_next_pc = taken_pc if slot.chosen_taken else sequential
        self._record_branch(slot, taken=bool(slot.chosen_taken))

    def _record_branch(self, slot: _Slot, *, taken: bool) -> None:
        entry = slot.entry
        branch = entry.branch
        self._p_branch.inc(site=_branch_pc(entry), taken=taken,
                           folded=_is_folded(entry),
                           speculated=slot.speculated)
        self.stats.execution.record(
            branch.opcode.value,
            is_branch=True,
            is_conditional=opcode_class(branch.opcode) is OpClass.CONDJMP,
            taken=taken,
            one_parcel=_length_parcels(branch) == 1)
        if self._dyn is not None and _uses_cc(entry):
            # train only at retirement: wrong-path slots are squashed
            # before they reach RR, so predictor state is a pure function
            # of the correct-path instruction stream
            self._dyn.train(_branch_pc(entry), taken)

    def _resolve_dependents(self, cmp_slot: _Slot,
                            fetched: _Slot | None) -> None:
        flag = self.state.flag
        for slot in (self.rr, self.or_, self.ir, fetched):
            if slot is None or not slot.valid or slot.resolved:
                continue
            if slot.governing_seq != cmp_slot.seq:
                continue
            correct = _taken_when(slot.entry, flag)
            slot.resolved = True
            shadow = slot.shadow
            forced = False
            if slot.chosen_taken == correct:
                if shadow is None or not self._inject_wrong:
                    continue
                # fault injection: treat this verified-correct dynamic
                # fold as a mismatch, exercising the full recovery path;
                # redirecting to the chosen PC refetches the correct path
                forced = True
            stage = self._stage_of(slot) if slot is not fetched else "IR"
            penalty = {"RR": 3, "OR": 2, "IR": 1}[stage]
            if slot is fetched:
                penalty = 1
            site = _branch_pc(slot.entry)
            self.stats.mispredictions += 1
            self.stats.misprediction_penalty_cycles += penalty
            if shadow is not None:
                self.stats.folded_mispredicts += 1
                self.stats.recovery_flush_cycles += penalty
                self._dyn.untrain(shadow.site)
                self._dyn.note_flush(shadow.site)
            self._p_mispredict.inc(stage=stage, folded=True, site=site)
            self._p_penalty.inc(penalty, site=site)
            if shadow is not None:
                self._p_verify_fail.inc(site=shadow.site, forced=forced)
                self._p_recovery.inc(penalty, site=shadow.site)
            slot.chosen_taken = correct
            self._squash_younger(slot, fetched)
            if forced:
                self._redirect(shadow.chosen_pc)
            else:
                self._redirect(slot.other_pc)

    def _redirect(self, target: int) -> None:
        self.ir_next_pc = target
        self._redirected = True

    def _select_path(self, slot: _Slot) -> None:
        entry = slot.entry

        if self._redirected:
            return

        if entry.branch is not None and entry.next_pc is None:
            self.ir_next_pc = None
            return

        if not _uses_cc(entry):
            self.ir_next_pc = entry.next_pc
            return

        outstanding = (_sets_cc(entry) and _uses_cc(entry)) or any(
            older is not None and older.valid and _sets_cc(older.entry)
            for older in (self.or_, self.rr))

        predicted = _predicted_taken(entry)
        taken_pc = entry.next_pc if predicted else entry.alt_pc
        fall_pc = entry.alt_pc if predicted else entry.next_pc

        if not outstanding:
            actual = _taken_when(entry, self.state.flag)
            if actual != predicted:
                self.stats.zero_cost_overrides += 1
                self._p_override.inc(site=_branch_pc(entry))
            slot.chosen_taken = actual
            slot.resolved = True
            chosen = taken_pc if actual else fall_pc
            other = fall_pc if actual else taken_pc
        else:
            self._p_interlock.inc(site=_branch_pc(entry),
                                  folded=_is_folded(entry),
                                  d0=_sets_cc(entry) and _uses_cc(entry))
            slot.chosen_taken = predicted
            slot.resolved = False
            slot.speculated = True
            chosen = entry.next_pc
            other = entry.alt_pc
            if (self._dyn is not None and _is_folded(entry)
                    and _dyn_foldable(entry)):
                confidence = self._dyn.decide(_branch_pc(entry))
                if confidence:
                    # dynamic fold engaged: run down the predicted-taken
                    # path under a shadow verification record
                    slot.chosen_taken = True
                    chosen = taken_pc
                    other = fall_pc
                    slot.shadow = ShadowRecord(
                        _branch_pc(entry), True, chosen, other, confidence)
                    self.stats.dynamic_folds += 1
                    self._dyn.note_fold(_branch_pc(entry))
                    self._p_dynfold.inc(site=_branch_pc(entry),
                                        confidence=confidence)
            if _is_folded(entry):
                governing = slot if _sets_cc(entry) else next(
                    older for older in (self.or_, self.rr)
                    if older is not None and older.valid
                    and _sets_cc(older.entry))
                slot.governing_seq = governing.seq
        slot.other_pc = other
        self.ir_next_pc = chosen


class ReferenceCpu:
    """The pre-refactor machine: per-cycle re-derivation, per-fetch
    latch allocation, unconditional probe updates."""

    def __init__(self, program: Program, config=None,
                 obs: EventBus | None = None) -> None:
        from repro.sim.cpu import CpuConfig

        self.program = program
        self.config = config or CpuConfig()
        self.obs = obs if obs is not None else EventBus()
        self.memory = ReferenceMemory()
        self.memory.load_program(program)
        self.state = MachineState(
            self.memory, pc=program.entry, sp=program.stack_top)
        self.stats = PipelineStats()
        self.icache = DecodedICache(self.config.icache_entries, obs=self.obs)
        self.dyn = (DynamicFoldUnit(self.config.fold_policy)
                    if self.config.fold_policy.dynamic_fold else None)
        self.pdu = PrefetchDecodeUnit(
            self.memory, self.icache, self.config.fold_policy,
            mem_latency=self.config.mem_latency,
            decode_latency=self.config.decode_latency,
            prefetch_depth=self.config.prefetch_depth,
            obs=self.obs, dyn=self.dyn)
        self.eu = ReferenceExecutionUnit(
            self.state, self.stats, self.obs,
            dyn=self.dyn, inject=getattr(self.config, "inject", None))
        self._p_demand_hit = self.obs.counter("icache.demand_hit")
        self._p_demand_miss = self.obs.counter("icache.demand_miss")
        self._p_miss_latency = self.obs.histogram("icache.miss.latency")
        self._miss_address: int | None = None
        self._miss_cycle = 0
        self.pdu.demand(program.entry)

    @property
    def halted(self) -> bool:
        return self.eu.halted

    def step(self) -> None:
        self.pdu.tick()

        fetched = None
        if self.eu.ir_next_pc is not None:
            address = self.eu.ir_next_pc
            entry = self.icache.lookup(address)
            if entry is not None:
                fetched = entry
                if address == self._miss_address:
                    self._p_miss_latency.observe(
                        self.stats.cycles - self._miss_cycle)
                    self._miss_address = None
            else:
                self.stats.icache_misses += 1
                self._p_demand_miss.inc(site=address)
                if address != self._miss_address:
                    self._miss_address = address
                    self._miss_cycle = self.stats.cycles
                self.pdu.demand(address)
        if fetched is not None:
            self.stats.icache_hits += 1
            self._p_demand_hit.inc()

        self.eu.tick(fetched)
        self.stats.cycles += 1

    def run(self, max_cycles: int | None = None) -> PipelineStats:
        from repro.sim.cpu import WATCHDOG_RING

        limit = self.config.max_cycles if max_cycles is None else max_cycles
        for _ in range(limit):
            if self.eu.halted:
                return self.stats
            self.step()
        # budget exhausted: sample the next fetch addresses for the
        # diagnostic, exactly as the fast kernel's watchdog does
        pcs: list[int] = []
        for _ in range(WATCHDOG_RING):
            if self.eu.halted:
                break
            if self.eu.ir_next_pc is not None:
                pcs.append(self.eu.ir_next_pc)
            self.step()
        raise SimulationHungError(
            limit, pcs,
            self.dyn.fold_counts if self.dyn is not None else None,
            self.dyn.flush_counts if self.dyn is not None else None)

    def warm_cache(self) -> None:
        """Pre-decode the whole program, as :meth:`CrispCpu.warm_cache`.

        Lets differential checks put both kernels in the same
        steady-state cache condition before comparing their timing.
        """
        from repro.sim.progcache import predecode_cached
        for entry in predecode_cached(self.program, self.config.fold_policy):
            self.icache.fill(entry)

    def read_symbol(self, name: str) -> int:
        return self.memory.read_word(self.program.symbol(name))


def run_reference(program: Program, config=None,
                  max_cycles: int | None = None,
                  obs: EventBus | None = None) -> ReferenceCpu:
    """Run ``program`` on the reference machine and return the CPU."""
    cpu = ReferenceCpu(program, config, obs=obs)
    cpu.run(max_cycles)
    return cpu
