"""Sparse byte-addressable memory.

Backs both simulators. Instructions live in memory as little-endian 16-bit
parcels, data as little-endian 32-bit words; the same address space holds
both, as on the real machine.
"""

from __future__ import annotations

from repro.asm.program import Program
from repro.isa.parcels import to_u16, to_u32


class Memory:
    """Sparse memory with byte, parcel (16-bit) and word (32-bit) access."""

    def __init__(self) -> None:
        self._bytes: dict[int, int] = {}

    # ---- byte access -----------------------------------------------------

    def read_byte(self, address: int) -> int:
        """Read one byte (unmapped locations read as zero)."""
        return self._bytes.get(to_u32(address), 0)

    def write_byte(self, address: int, value: int) -> None:
        """Write one byte."""
        self._bytes[to_u32(address)] = value & 0xFF

    # ---- parcel access -----------------------------------------------------

    # The multi-byte accessors hit the byte map directly instead of going
    # through read_byte/write_byte — four method calls per simulated word
    # access is measurable in the cycle simulator's hot loop.

    def read_parcel(self, address: int) -> int:
        """Read a 16-bit instruction parcel (little-endian)."""
        data = self._bytes
        return (data.get(address & 0xFFFFFFFF, 0)
                | data.get((address + 1) & 0xFFFFFFFF, 0) << 8)

    def write_parcel(self, address: int, value: int) -> None:
        """Write a 16-bit instruction parcel."""
        value = to_u16(value)
        data = self._bytes
        data[address & 0xFFFFFFFF] = value & 0xFF
        data[(address + 1) & 0xFFFFFFFF] = value >> 8

    # ---- word access -------------------------------------------------------

    def read_word(self, address: int) -> int:
        """Read a 32-bit word (little-endian)."""
        data = self._bytes
        return (data.get(address & 0xFFFFFFFF, 0)
                | data.get((address + 1) & 0xFFFFFFFF, 0) << 8
                | data.get((address + 2) & 0xFFFFFFFF, 0) << 16
                | data.get((address + 3) & 0xFFFFFFFF, 0) << 24)

    def write_word(self, address: int, value: int) -> None:
        """Write a 32-bit word."""
        value = to_u32(value)
        data = self._bytes
        data[address & 0xFFFFFFFF] = value & 0xFF
        data[(address + 1) & 0xFFFFFFFF] = (value >> 8) & 0xFF
        data[(address + 2) & 0xFFFFFFFF] = (value >> 16) & 0xFF
        data[(address + 3) & 0xFFFFFFFF] = (value >> 24) & 0xFF

    # ---- loading -------------------------------------------------------------

    def load_program(self, program: Program) -> None:
        """Load a program's code parcels and data words."""
        for address, parcel in program.parcel_image().items():
            self.write_parcel(address, parcel)
        for address, word in program.data_image().items():
            self.write_word(address, word)

    def snapshot(self) -> dict[int, int]:
        """Copy of the raw byte map (for state comparison in tests)."""
        return dict(self._bytes)
