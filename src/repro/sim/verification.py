"""Differential verification utilities.

The functional simulator is the golden reference; anything the
cycle-accurate machine computes must match it exactly. These helpers run
a program on both and compare every architectural observable — used
throughout the test suite and available to library users as a
self-checking harness for their own programs and configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.sim.cpu import CpuConfig, CrispCpu
from repro.sim.functional import FunctionalSimulator
from repro.sim.stats import ExecutionStats, PipelineStats


class VerificationError(AssertionError):
    """Raised when the pipeline diverges from the architectural model."""


@dataclass
class VerificationResult:
    """Both runs' results, already checked for equivalence."""

    functional: ExecutionStats
    pipeline: PipelineStats
    cycles: int

    @property
    def speedup_headroom(self) -> float:
        """Apparent instructions per cycle achieved by the pipeline."""
        return self.pipeline.apparent_ipc


def verify_program(program: Program,
                   config: CpuConfig | None = None,
                   max_instructions: int = 10_000_000,
                   max_cycles: int = 50_000_000) -> VerificationResult:
    """Run ``program`` both ways; raise on any observable divergence.

    Checks: every data-segment word, the accumulator, the flag, the stack
    pointer, and the executed-instruction count.
    """
    reference = FunctionalSimulator(program)
    reference.run(max_instructions)

    cpu = CrispCpu(program, config)
    cpu.run(max_cycles)

    _check("executed instructions",
           cpu.stats.executed_instructions,
           reference.stats.instructions)
    _check("accumulator", cpu.state.accum, reference.state.accum)
    _check("condition flag", cpu.state.flag, reference.state.flag)
    _check("stack pointer", cpu.state.sp, reference.state.sp)
    for item in program.data:
        _check(f"memory[{item.name or hex(item.address)}"
               f"+{item.address - program.symbol(item.name):#x}]"
               if item.name else f"memory[{item.address:#x}]",
               cpu.memory.read_word(item.address),
               reference.memory.read_word(item.address))
    return VerificationResult(reference.stats, cpu.stats, cpu.stats.cycles)


def _check(what: str, measured, expected) -> None:
    if measured != expected:
        raise VerificationError(
            f"pipeline diverged from the architectural model: "
            f"{what} = {measured!r}, expected {expected!r}")
