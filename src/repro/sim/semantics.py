"""Architectural instruction semantics, shared by both simulators.

The cycle simulator's three-stage EU is in-order and squashes wrong-path
instructions before any result write (the ISA was designed without side
effects for exactly this), so architecturally an instruction's effects can
be applied atomically; the pipeline model adds *timing* (and wrong-path
fetch) on top of these semantics, never different results. The
differential tests in ``tests/test_sim_differential.py`` enforce this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction, resolve_target
from repro.isa.opcodes import (
    ALU_FUNCTIONS,
    NUM_OPCODES,
    OPCODE_INDEX,
    BranchKind,
    CONDITION_FUNCTIONS,
    OpClass,
    Opcode,
    opcode_condition,
    opcode_class,
)
from repro.isa.operands import AddrMode, Operand
from repro.isa.parcels import to_u32
from repro.sim.memory import Memory


class SimulationError(RuntimeError):
    """Raised when a simulated program does something unrecoverable."""


class SimulationHungError(SimulationError):
    """The cycle-budget watchdog fired: the machine did not halt.

    Carries enough to diagnose the hang without re-running: the PCs the
    EU fetched right after the budget expired (a tight loop shows up as
    a short repeating cycle), and the per-site dynamic-fold and
    recovery-flush tallies — the m2sim2 hang signature is a site whose
    fold count grows without bound while its flush count stays zero.
    """

    def __init__(self, max_cycles: int, pcs: list[int],
                 fold_counts: dict[int, int] | None = None,
                 flush_counts: dict[int, int] | None = None) -> None:
        self.max_cycles = max_cycles
        self.pcs = list(pcs)
        self.fold_counts = dict(fold_counts or {})
        self.flush_counts = dict(flush_counts or {})
        distinct = sorted(set(self.pcs))
        parts = [f"machine did not halt within {max_cycles} cycles; "
                 f"looping over {len(distinct)} PCs: "
                 + ", ".join(f"{pc:#x}" for pc in distinct[:16])]
        if self.fold_counts:
            hot = sorted(self.fold_counts.items(),
                         key=lambda item: -item[1])[:4]
            parts.append("hot fold sites: " + ", ".join(
                f"{site:#x}(folds={count}, "
                f"flushes={self.flush_counts.get(site, 0)})"
                for site, count in hot))
        super().__init__("; ".join(parts))


@dataclass
class MachineState:
    """Architectural state: PC, SP, accumulator, the CC flag and memory."""

    memory: Memory
    pc: int = 0
    sp: int = 0
    accum: int = 0
    flag: bool = False
    halted: bool = False

    def read_operand(self, operand: Operand) -> int:
        """Read an operand's 32-bit value."""
        if operand.mode is AddrMode.IMM:
            return to_u32(operand.value)
        if operand.mode is AddrMode.ACC:
            return self.accum
        if operand.mode is AddrMode.ACC_IND:
            return self.memory.read_word(self.accum)
        if operand.mode is AddrMode.ABS:
            return self.memory.read_word(operand.value)
        return self.memory.read_word(to_u32(self.sp + operand.value))

    def write_operand(self, operand: Operand, value: int) -> None:
        """Write a 32-bit value to a writable operand."""
        value = to_u32(value)
        if operand.mode is AddrMode.ACC:
            self.accum = value
        elif operand.mode is AddrMode.ACC_IND:
            self.memory.write_word(self.accum, value)
        elif operand.mode is AddrMode.ABS:
            self.memory.write_word(operand.value, value)
        elif operand.mode is AddrMode.SP_OFF:
            self.memory.write_word(to_u32(self.sp + operand.value), value)
        else:
            raise SimulationError(f"write to non-writable operand {operand}")


@dataclass(frozen=True)
class StepResult:
    """Outcome of executing one instruction.

    ``taken`` is meaningful only when ``is_branch`` — True when control
    actually transferred away from the sequential path.
    """

    next_pc: int
    is_branch: bool = False
    is_conditional: bool = False
    taken: bool = False
    halted: bool = False


def branch_decision(instruction: Instruction, flag: bool) -> bool:
    """Would this branch transfer control, given the flag value?"""
    sense = instruction.branch_sense
    if sense is BranchKind.ALWAYS:
        return True
    if sense is BranchKind.IF_TRUE:
        return flag
    return not flag


# ---- pre-decoded body dispatch -------------------------------------------
#
# The cycle simulator executes entry *bodies* (never branches — those are
# routed by the decoded cache's next-address fields) millions of times per
# run. Dispatching through a list indexed by ``Instruction.opcode_index``
# replaces the class if-chain and every enum hash with one list load. Each
# handler returns True when the machine halts.


def _make_alu2(fn):
    def run(state: MachineState, instruction: Instruction) -> bool:
        dst, src = instruction.operands
        state.write_operand(dst, fn(state.read_operand(dst),
                                    state.read_operand(src)))
        return False
    return run


def _make_alu3(fn):
    def run(state: MachineState, instruction: Instruction) -> bool:
        operands = instruction.operands
        state.accum = to_u32(fn(state.read_operand(operands[0]),
                                state.read_operand(operands[1])))
        return False
    return run


def _make_cmp(fn):
    def run(state: MachineState, instruction: Instruction) -> bool:
        operands = instruction.operands
        state.flag = fn(state.read_operand(operands[0]),
                        state.read_operand(operands[1]))
        return False
    return run


def _run_enter(state: MachineState, instruction: Instruction) -> bool:
    state.sp = to_u32(state.sp - instruction.operands[0].value)
    return False


def _run_spadd(state: MachineState, instruction: Instruction) -> bool:
    state.sp = to_u32(state.sp + instruction.operands[0].value)
    return False


def _run_nop(state: MachineState, instruction: Instruction) -> bool:
    return False


def _run_halt(state: MachineState, instruction: Instruction) -> bool:
    state.halted = True
    return True


def _body_handler(opcode: Opcode):
    cls = opcode_class(opcode)
    if cls is OpClass.ALU2:
        return _make_alu2(ALU_FUNCTIONS[opcode])
    if cls is OpClass.ALU3:
        return _make_alu3(ALU_FUNCTIONS[opcode])
    if cls is OpClass.CMP:
        return _make_cmp(CONDITION_FUNCTIONS[opcode_condition(opcode)])
    if opcode is Opcode.ENTER:
        return _run_enter
    if opcode is Opcode.SPADD:
        return _run_spadd
    if cls is OpClass.NOP:
        return _run_nop
    if cls is OpClass.HALT:
        return _run_halt
    return None  # branch classes: never a decoded-entry body


BODY_EXECUTORS: list = [None] * NUM_OPCODES
for _opcode, _index in OPCODE_INDEX.items():
    BODY_EXECUTORS[_index] = _body_handler(_opcode)
"""Per-opcode body handlers indexed by ``Instruction.opcode_index``;
None for branch opcodes (which cannot appear as an entry body)."""


def execute_body(state: MachineState, instruction: Instruction) -> bool:
    """Execute a non-branching instruction; return True on ``halt``.

    Equivalent to :func:`execute` for the opcode classes that can appear
    as a :class:`~repro.core.decoded.DecodedEntry` body, minus the
    :class:`StepResult` allocation — the cycle simulator's hot path.
    """
    handler = BODY_EXECUTORS[instruction.opcode_index]
    if handler is None:
        raise SimulationError(
            f"branch opcode {instruction.opcode.value} cannot execute "
            f"as an entry body")
    return handler(state, instruction)


def execute(state: MachineState, instruction: Instruction,
            pc: int) -> StepResult:
    """Execute ``instruction`` located at ``pc``; mutate ``state`` and
    return where control goes next.

    ``state.pc`` is *not* updated here — callers own control flow (the
    pipeline simulator routes next-PC through the decoded-cache fields
    instead of this function's return value; they must agree).
    """
    opcode = instruction.opcode
    cls = instruction.op_class
    sequential = pc + instruction.length_bytes()

    handler = BODY_EXECUTORS[instruction.opcode_index]
    if handler is not None:  # ALU / compare / frame / nop / halt
        return StepResult(sequential, halted=handler(state, instruction))

    if cls is OpClass.JMP:
        target = resolve_target(instruction, pc, state.sp,
                                state.memory.read_word)
        return StepResult(target, is_branch=True, taken=True)

    if cls is OpClass.CONDJMP:
        taken = branch_decision(instruction, state.flag)
        target = resolve_target(instruction, pc, state.sp,
                                state.memory.read_word)
        return StepResult(target if taken else sequential,
                          is_branch=True, is_conditional=True, taken=taken)

    if cls is OpClass.CALL:
        target = resolve_target(instruction, pc, state.sp,
                                state.memory.read_word)
        state.sp = to_u32(state.sp - 4)
        state.memory.write_word(state.sp, sequential)
        return StepResult(target, is_branch=True, taken=True)

    # RETURN / RETI
    if opcode is Opcode.RETI:
        # return from interrupt: restore the saved PSW flag, then the PC
        state.flag = bool(state.memory.read_word(state.sp) & 1)
        state.sp = to_u32(state.sp + 4)
    target = state.memory.read_word(state.sp)
    state.sp = to_u32(state.sp + 4)
    return StepResult(target, is_branch=True, taken=True)
