"""The whole machine: PDU + Decoded Instruction Cache + EU (Figure 1).

:class:`CrispCpu` wires the three blocks together and steps them one clock
at a time. Each cycle:

1. the PDU advances (memory access, decode/fold, cache fill);
2. the EU's ``IR.Next-PC`` register addresses the Decoded Instruction
   Cache — a miss sends a demand to the PDU;
3. the EU executes its RR stage (resolving branches, possibly squashing
   and redirecting) and latches its stages.

Configuration knobs cover everything the benchmarks sweep: the fold
policy, cache size, memory latency, decode depth and prefetch distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.program import Program
from repro.core.policy import FoldPolicy
from repro.obs.events import EventBus
from repro.sim.dynfold import DynamicFoldUnit
from repro.sim.eu import ExecutionUnit
from repro.sim.icache import DecodedICache
from repro.sim.memory import Memory
from repro.sim.pdu import PrefetchDecodeUnit
from repro.sim.semantics import MachineState, SimulationHungError
from repro.sim.stats import PipelineStats

#: how many post-budget fetch addresses the watchdog samples for the
#: SimulationHungError diagnostic ring buffer
WATCHDOG_RING = 64


@dataclass(frozen=True)
class CpuConfig:
    """Microarchitectural parameters of the simulated machine."""

    fold_policy: FoldPolicy = field(default_factory=FoldPolicy.crisp)
    icache_entries: int = 32
    mem_latency: int = 2  #: cycles per four-parcel instruction fetch
    decode_latency: int = 2  #: PDR + PIR stages
    prefetch_depth: int = 16  #: entries decoded ahead of the last demand
    max_cycles: int = 50_000_000  #: watchdog budget for :meth:`CrispCpu.run`
    #: fault injection mode (None or "always-wrong"); see
    #: :mod:`repro.sim.dynfold`
    inject: str | None = None
    #: execution engine tier: "fast" (per-cycle kernel), "blockspec"
    #: (trace-compiled hot loops; falls back to the per-cycle kernel
    #: outside steady state and entirely under dynamic-fold policies) or
    #: "batched" (the lock-step campaign tier's quantum-sliced loop;
    #: same dynamic-fold fallback) — all bit-identical in results; see
    #: :mod:`repro.sim.blockspec` and :mod:`repro.sim.batched`
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "blockspec", "batched"):
            raise ValueError(f"unknown engine {self.engine!r}")


class CrispCpu:
    """Cycle-accurate simulator of the CRISP-like machine."""

    def __init__(self, program: Program,
                 config: CpuConfig | None = None,
                 obs: EventBus | None = None) -> None:
        self.program = program
        self.config = config or CpuConfig()
        #: per-run telemetry namespace; pass a shared bus to aggregate, or
        #: ``EventBus(enabled=False)`` to strip instrumentation entirely
        self.obs = obs if obs is not None else EventBus()
        self.memory = Memory()
        self.memory.load_program(program)
        self.state = MachineState(
            self.memory, pc=program.entry, sp=program.stack_top)
        self.stats = PipelineStats()
        self.icache = DecodedICache(self.config.icache_entries, obs=self.obs)
        #: one dynamic-fold unit per machine, shared by the PDU (queries
        #: only) and the EU (folds, trains, untrains)
        self.dyn = (DynamicFoldUnit(self.config.fold_policy)
                    if self.config.fold_policy.dynamic_fold else None)
        self.pdu = PrefetchDecodeUnit(
            self.memory, self.icache, self.config.fold_policy,
            mem_latency=self.config.mem_latency,
            decode_latency=self.config.decode_latency,
            prefetch_depth=self.config.prefetch_depth,
            obs=self.obs, dyn=self.dyn)
        self.eu = ExecutionUnit(self.state, self.stats, obs=self.obs,
                                dyn=self.dyn, inject=self.config.inject)
        self._pending_interrupt: int | None = None
        self.interrupts_taken = 0
        self._obs_on = self.obs.enabled
        self._obs_sinks = self.obs.sinks_ref()
        self._p_demand_hit = self.obs.counter("icache.demand_hit")
        self._p_demand_miss = self.obs.counter("icache.demand_miss")
        self._p_miss_latency = self.obs.histogram("icache.miss.latency")
        self._miss_address: int | None = None  #: demand miss being timed
        self._miss_cycle = 0
        self._blockspec = None  #: lazily-built BlockSpecEngine
        # cold start: the PDU begins decoding at the entry point
        self.pdu.demand(program.entry)

    @property
    def halted(self) -> bool:
        """True once a ``halt`` has executed at the RR stage."""
        return self.eu.halted

    def step(self) -> None:
        """Advance the machine by one clock cycle."""
        self.pdu.tick()

        # one probe-guard read per cycle, not one per stage probe: the
        # enabled/sink state cannot change mid-cycle
        obs_on = self._obs_on
        fetched = None
        if self.eu.ir_next_pc is not None:
            address = self.eu.ir_next_pc
            entry = self.icache.lookup(address)
            if entry is not None:
                fetched = entry
                if address == self._miss_address:
                    if obs_on:
                        self._p_miss_latency.observe(
                            self.stats.cycles - self._miss_cycle)
                    self._miss_address = None
            else:
                self.stats.icache_misses += 1
                if obs_on:
                    if self._obs_sinks:
                        self._p_demand_miss.inc(site=address)
                    else:
                        self._p_demand_miss.add()
                if address != self._miss_address:
                    self._miss_address = address
                    self._miss_cycle = self.stats.cycles
                self.pdu.demand(address)
        if fetched is not None:
            self.stats.icache_hits += 1
            if obs_on:
                self._p_demand_hit.add()

        self.eu.tick(fetched)
        self.stats.cycles += 1

        if self._pending_interrupt is not None and not self.eu.halted:
            vector = self._pending_interrupt
            self._pending_interrupt = None
            self.eu.take_interrupt(vector)
            self.pdu.demand(vector)
            self.interrupts_taken += 1

    def interrupt(self, vector: int) -> None:
        """Raise an interrupt: taken precisely at the next clock edge.

        The handler at ``vector`` runs with the interrupted program's PSW
        flag and resume PC on the stack; it returns with ``reti``.
        """
        self._pending_interrupt = vector

    def run(self, max_cycles: int | None = None) -> PipelineStats:
        """Run to ``halt``; the cycle-budget watchdog raises a diagnostic
        :class:`~repro.sim.semantics.SimulationHungError` on exhaustion.

        ``max_cycles`` overrides ``config.max_cycles`` when given.
        """
        limit = self.config.max_cycles if max_cycles is None else max_cycles
        if self.config.engine == "blockspec" and self.dyn is None:
            # dynamic-fold policies carry shadow records through the
            # latches, which the trace compiler never admits — running
            # them through the per-cycle loop keeps --engine trivially
            # bit-identical across the whole config space
            return self._run_blockspec(limit)
        if self.config.engine == "batched" and self.dyn is None:
            # the lock-step campaign tier's single-instance loop; the
            # dynamic-fold fallback mirrors blockspec (shadow records
            # are per-run predictor state the common path refuses)
            from repro.sim.batched import run_single
            return run_single(self, limit)
        eu = self.eu
        step = self.step
        for _ in range(limit):
            if eu.halted:
                eu.flush_execution()  # idempotent: batch already folded
                return self.stats
            step()
        eu.flush_execution()
        raise self._watchdog_error(limit)

    def _run_blockspec(self, limit: int) -> PipelineStats:
        """The blockspec run loop: per-cycle steps interleaved with
        compiled-trace bursts whenever the machine reaches a traced
        steady state. The cycle budget is shared exactly — a trace burst
        consumes its cycle count from the same ``limit``, and traces are
        bounded so the watchdog semantics match the per-cycle loop."""
        from repro.sim.blockspec import BlockSpecEngine
        if self._blockspec is None:
            self._blockspec = BlockSpecEngine(self)
        try_trace = self._blockspec.try_trace
        eu = self.eu
        step = self.step
        steps = 0
        while steps < limit:
            if eu.halted:
                eu.flush_execution()
                return self.stats
            consumed = try_trace(limit - steps)
            if consumed:
                steps += consumed
                continue
            step()
            steps += 1
        eu.flush_execution()
        raise self._watchdog_error(limit)

    def _watchdog_error(self, limit: int) -> SimulationHungError:
        """Budget exhausted: sample the next fetch addresses (a hang shows
        up as a short repeating PC cycle) and attach the dynamic-fold
        unit's per-site tallies. Sampling *after* exhaustion keeps the
        hot run loop free of ring-buffer bookkeeping."""
        pcs: list[int] = []
        for _ in range(WATCHDOG_RING):
            if self.eu.halted:
                break
            if self.eu.ir_next_pc is not None:
                pcs.append(self.eu.ir_next_pc)
            self.step()
        return SimulationHungError(
            limit, pcs,
            self.dyn.fold_counts if self.dyn is not None else None,
            self.dyn.flush_counts if self.dyn is not None else None)

    # ---- conveniences ------------------------------------------------------

    def warm_cache(self) -> None:
        """Pre-decode every instruction into the Decoded Instruction Cache.

        Useful for microbenchmarks that measure steady-state pipeline
        behaviour (e.g. the per-distance misprediction penalties) without
        cold-start miss noise. Only meaningful when the program fits the
        cache without conflicts. Decode results are memoized per
        (program image, fold policy) — see :mod:`repro.sim.progcache` —
        so repeated runs of the same program decode once.
        """
        from repro.sim.progcache import predecode_cached
        for entry in predecode_cached(self.program, self.config.fold_policy):
            self.icache.fill(entry)

    def read_symbol(self, name: str) -> int:
        """Read the word at a data symbol's address."""
        return self.memory.read_word(self.program.symbol(name))


def run_cycle_accurate(program: Program,
                       config: CpuConfig | None = None,
                       max_cycles: int | None = None,
                       obs: EventBus | None = None) -> CrispCpu:
    """Run ``program`` on the cycle-accurate machine and return the CPU."""
    cpu = CrispCpu(program, config, obs=obs)
    cpu.run(max_cycles)
    return cpu
