"""The whole machine: PDU + Decoded Instruction Cache + EU (Figure 1).

:class:`CrispCpu` wires the three blocks together and steps them one clock
at a time. Each cycle:

1. the PDU advances (memory access, decode/fold, cache fill);
2. the EU's ``IR.Next-PC`` register addresses the Decoded Instruction
   Cache — a miss sends a demand to the PDU;
3. the EU executes its RR stage (resolving branches, possibly squashing
   and redirecting) and latches its stages.

Configuration knobs cover everything the benchmarks sweep: the fold
policy, cache size, memory latency, decode depth and prefetch distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.program import Program
from repro.core.policy import FoldPolicy
from repro.sim.eu import ExecutionUnit
from repro.sim.icache import DecodedICache
from repro.sim.memory import Memory
from repro.sim.pdu import PrefetchDecodeUnit
from repro.sim.semantics import MachineState, SimulationError
from repro.sim.stats import PipelineStats


@dataclass(frozen=True)
class CpuConfig:
    """Microarchitectural parameters of the simulated machine."""

    fold_policy: FoldPolicy = field(default_factory=FoldPolicy.crisp)
    icache_entries: int = 32
    mem_latency: int = 2  #: cycles per four-parcel instruction fetch
    decode_latency: int = 2  #: PDR + PIR stages
    prefetch_depth: int = 16  #: entries decoded ahead of the last demand


class CrispCpu:
    """Cycle-accurate simulator of the CRISP-like machine."""

    def __init__(self, program: Program,
                 config: CpuConfig | None = None) -> None:
        self.program = program
        self.config = config or CpuConfig()
        self.memory = Memory()
        self.memory.load_program(program)
        self.state = MachineState(
            self.memory, pc=program.entry, sp=program.stack_top)
        self.stats = PipelineStats()
        self.icache = DecodedICache(self.config.icache_entries)
        self.pdu = PrefetchDecodeUnit(
            self.memory, self.icache, self.config.fold_policy,
            mem_latency=self.config.mem_latency,
            decode_latency=self.config.decode_latency,
            prefetch_depth=self.config.prefetch_depth)
        self.eu = ExecutionUnit(self.state, self.stats)
        self._pending_interrupt: int | None = None
        self.interrupts_taken = 0
        # cold start: the PDU begins decoding at the entry point
        self.pdu.demand(program.entry)

    @property
    def halted(self) -> bool:
        """True once a ``halt`` has executed at the RR stage."""
        return self.eu.halted

    def step(self) -> None:
        """Advance the machine by one clock cycle."""
        self.pdu.tick()

        fetched = None
        if self.eu.ir_next_pc is not None:
            entry = self.icache.lookup(self.eu.ir_next_pc)
            if entry is not None:
                fetched = entry
            else:
                self.stats.icache_misses += 1
                self.pdu.demand(self.eu.ir_next_pc)
        if fetched is not None:
            self.stats.icache_hits += 1

        self.eu.tick(fetched)
        self.stats.cycles += 1

        if self._pending_interrupt is not None and not self.eu.halted:
            vector = self._pending_interrupt
            self._pending_interrupt = None
            self.eu.take_interrupt(vector)
            self.pdu.demand(vector)
            self.interrupts_taken += 1

    def interrupt(self, vector: int) -> None:
        """Raise an interrupt: taken precisely at the next clock edge.

        The handler at ``vector`` runs with the interrupted program's PSW
        flag and resume PC on the stack; it returns with ``reti``.
        """
        self._pending_interrupt = vector

    def run(self, max_cycles: int = 50_000_000) -> PipelineStats:
        """Run to ``halt``; raise if the cycle budget is exhausted."""
        for _ in range(max_cycles):
            if self.halted:
                return self.stats
            self.step()
        raise SimulationError(
            f"machine did not halt within {max_cycles} cycles")

    # ---- conveniences ------------------------------------------------------

    def warm_cache(self) -> None:
        """Pre-decode every instruction into the Decoded Instruction Cache.

        Useful for microbenchmarks that measure steady-state pipeline
        behaviour (e.g. the per-distance misprediction penalties) without
        cold-start miss noise. Only meaningful when the program fits the
        cache without conflicts.
        """
        folder = self.pdu.folder
        for address in self.program.addresses:
            self.icache.fill(folder.decode(address))

    def read_symbol(self, name: str) -> int:
        """Read the word at a data symbol's address."""
        return self.memory.read_word(self.program.symbol(name))


def run_cycle_accurate(program: Program,
                       config: CpuConfig | None = None,
                       max_cycles: int = 50_000_000) -> CrispCpu:
    """Run ``program`` on the cycle-accurate machine and return the CPU."""
    cpu = CrispCpu(program, config)
    cpu.run(max_cycles)
    return cpu
