"""Workload compile cache: content-hash-keyed memoization of build steps.

The evaluation layer recompiles the same handful of mini-C sources dozens
of times per run — every Table-4 case, every sweep point, every parallel
worker. The compiler is deterministic, so all of that is wasted work.
This module memoizes the expensive build steps behind a content hash:

* :func:`compile_cached` — source text + compiler options → ``Program``;
* :func:`predecode_cached` — program image + fold policy → the tuple of
  :class:`~repro.core.decoded.DecodedEntry` records ``warm_cache`` wants.

Keys are SHA-256 digests over the *content* of the inputs (source text,
option fields, parcel image, policy fields), never over object identities,
so a cache hit is exactly as good as a rebuild: two processes computing
the same key are guaranteed to want the same artifact. That property is
what lets the parallel sweep runner (:mod:`repro.eval.parallel`) recompile
in worker processes without ever diverging from the serial path.

Storage is a small in-memory LRU (:class:`ProgramCache`), optionally
backed by an on-disk pickle store so repeated CLI invocations skip
compilation entirely. The disk store is opt-in: pass ``disk_dir=`` or set
the ``CRISP_CACHE_DIR`` environment variable (conventionally
``.crisp-cache/``). Every disk entry is prefixed with a SHA-256 digest of
its pickle payload, verified on load; corrupt or truncated entries are
*quarantined* (renamed to ``<key>.pkl.corrupt``, counted by the
``progcache.quarantined`` probe and the ``quarantined`` stat) and rebuilt
— the store is a pure accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Any, Callable

#: default in-memory capacity; sweeps touch far fewer distinct artifacts
DEFAULT_CAPACITY = 128

#: environment variable naming the on-disk store directory (opt-in)
CACHE_DIR_ENV = "CRISP_CACHE_DIR"

#: conventional on-disk store location relative to the working directory
DEFAULT_DISK_DIR = ".crisp-cache"


def cache_key(kind: str, *parts: str) -> str:
    """SHA-256 digest over ``kind`` and the content parts.

    Parts are joined with NUL separators so distinct part lists can never
    collide by concatenation (``("ab", "c")`` vs ``("a", "bc")``).
    """
    hasher = hashlib.sha256()
    hasher.update(kind.encode())
    for part in parts:
        hasher.update(b"\x00")
        hasher.update(part.encode())
    return hasher.hexdigest()


class ProgramCache:
    """Content-addressed LRU cache with an optional on-disk pickle store.

    The in-memory tier is an :class:`~collections.OrderedDict` used as an
    LRU: hits move to the back, inserts evict from the front once
    ``capacity`` is exceeded. The disk tier (when ``disk_dir`` is set)
    stores one pickle file per key, written atomically (temp file +
    ``os.replace``) so concurrent writers — parallel sweep workers —
    can only ever observe complete files.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 disk_dir: str | None = None, obs: Any = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.disk_dir = disk_dir
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.quarantined = 0
        #: blockspec trace-compiler telemetry (see repro.sim.blockspec)
        self.blocks_compiled = 0
        self.generated_bytes = 0
        self._p_quarantined = (obs.counter("progcache.quarantined")
                               if obs is not None else None)

    def get_or_build(self, key: str, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            pass
        else:
            self._entries.move_to_end(key)
            self.hits += 1
            return value
        value = self._disk_load(key)
        if value is _MISSING or value is _QUARANTINED:
            # a quarantined entry is already counted by `quarantined`;
            # counting it as a miss too would double-book the rebuild
            if value is _MISSING:
                self.misses += 1
            value = build()
            self._disk_store(key, value)
        else:
            self.disk_hits += 1
        self._insert(key, value)
        return value

    def _insert(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and the disk tier when ``disk``)."""
        self._entries.clear()
        self.hits = self.misses = self.disk_hits = self.evictions = 0
        self.blocks_compiled = self.generated_bytes = 0
        if disk and self.disk_dir and os.path.isdir(self.disk_dir):
            for name in os.listdir(self.disk_dir):
                if name.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(self.disk_dir, name))
                    except OSError:
                        pass

    def stats(self) -> dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "quarantined": self.quarantined,
                "blocks_compiled": self.blocks_compiled,
                "generated_bytes": self.generated_bytes}

    # ---- disk tier ---------------------------------------------------------
    #
    # On-disk format: one line holding the SHA-256 hex digest of the
    # pickle payload, then the payload itself. The digest is verified on
    # every load; a mismatch (bit rot, torn write from a crashed worker,
    # a file from before this format existed) quarantines the entry and
    # reports a miss, so the caller recompiles instead of crashing or —
    # worse — simulating from a silently corrupted artifact.

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"{key}.pkl")

    def _quarantine(self, key: str) -> None:
        self.quarantined += 1
        if self._p_quarantined is not None:
            self._p_quarantined.add()
        path = self._disk_path(key)
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            pass  # racing worker already handled it

    def _disk_load(self, key: str) -> Any:
        if not self.disk_dir:
            return _MISSING
        try:
            with open(self._disk_path(key), "rb") as fh:
                blob = fh.read()
        except OSError:
            return _MISSING  # not cached yet: a plain miss
        digest, sep, payload = blob.partition(b"\n")
        if (not sep or len(digest) != 64
                or hashlib.sha256(payload).hexdigest().encode() != digest):
            self._quarantine(key)
            return _QUARANTINED
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # digest-valid but unreadable: written by an incompatible
            # version. Not corruption — just a miss (the rebuild
            # overwrites it with the current format).
            return _MISSING

    def _disk_store(self, key: str, value: Any) -> None:
        if not self.disk_dir:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            os.makedirs(self.disk_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(hashlib.sha256(payload).hexdigest().encode())
                    fh.write(b"\n")
                    fh.write(payload)
                os.replace(tmp, self._disk_path(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except (OSError, pickle.PicklingError):
            pass  # read-only filesystem etc.: caching is best-effort


class _Missing:
    __slots__ = ()


_MISSING = _Missing()

#: distinct from a plain miss so quarantined loads are not *also*
#: counted as misses (the rebuild still happens either way)
_QUARANTINED = _Missing()

_default: ProgramCache | None = None


def default_cache() -> ProgramCache:
    """The process-wide cache (created on first use).

    Honours ``CRISP_CACHE_DIR`` at creation time; call :func:`reset_default`
    after changing the environment to pick up a new directory.
    """
    global _default
    if _default is None:
        _default = ProgramCache(disk_dir=os.environ.get(CACHE_DIR_ENV) or None)
    return _default


def reset_default() -> None:
    """Drop the process-wide cache (tests, env-var changes)."""
    global _default
    _default = None


# ---- cached build steps ----------------------------------------------------


def options_key(options: Any) -> str:
    """Deterministic text form of a ``CompilerOptions``.

    The dataclass repr is stable for the field types involved (bools,
    ints, strings, enums) and changes whenever any option changes, which
    is exactly the invalidation we want.
    """
    return repr(options)


def policy_key(policy: Any) -> str:
    """Deterministic text form of a ``FoldPolicy``.

    Spelled out field by field (frozensets sorted) rather than via repr so
    set iteration order can never leak into the key.
    """
    return (f"enabled={policy.enabled};"
            f"body={sorted(policy.body_lengths)};"
            f"branch={sorted(policy.branch_lengths)};"
            f"calls={policy.fold_calls};"
            f"nextpc={policy.next_address_fields};"
            f"dynfold={policy.dynamic_fold};"
            f"dynconf={policy.dyn_confidence};"
            f"dynpred={policy.dyn_predictor}")


def compile_cached(source: str, options: Any = None, *,
                   cache: ProgramCache | None = None) -> Any:
    """Compile ``source`` with ``options``, memoized by content hash.

    The returned :class:`~repro.asm.program.Program` may be shared between
    callers; programs are treated as immutable everywhere downstream
    (simulators copy the image into their own :class:`Memory`).
    """
    from repro.lang import CompilerOptions, compile_source
    if options is None:
        options = CompilerOptions()
    if cache is None:
        cache = default_cache()
    key = cache_key("compile", source, options_key(options))
    return cache.get_or_build(key, lambda: compile_source(source, options))


def predecode_cached(program: Any, policy: Any, *,
                     cache: ProgramCache | None = None) -> tuple:
    """Decode every instruction of ``program`` under ``policy``, memoized.

    Returns the tuple of :class:`~repro.core.decoded.DecodedEntry` records
    in program order — what :meth:`CrispCpu.warm_cache` fills the Decoded
    Instruction Cache with. Entries are frozen, so sharing one tuple
    between many CPU instances is safe.

    The key hashes the *rendered parcel image*, not the Program object,
    so two structurally identical programs (e.g. compiled in different
    worker processes) hit the same entry.
    """
    from repro.core.folder import BranchFolder
    if cache is None:
        cache = default_cache()
    image = program.parcel_image()
    image_part = ",".join(
        f"{addr:x}:{parcel:x}" for addr, parcel in sorted(image.items()))
    addr_part = ",".join(f"{addr:x}" for addr in program.addresses)
    key = cache_key("predecode", image_part, addr_part, policy_key(policy))

    def build() -> tuple:
        folder = BranchFolder(
            lambda address: image.get(address & 0xFFFFFFFF, 0), policy)
        return tuple(folder.decode(address) for address in program.addresses)

    return cache.get_or_build(key, build)
