"""Architectural (instruction-at-a-time) simulator.

Runs a :class:`~repro.asm.program.Program` directly — no pipeline, no
cache, no timing — and is therefore the golden reference the cycle
simulator is differentially tested against. It is also the engine behind
branch-trace capture: the paper instrumented a VAX C compiler to apply
several prediction schemes *as the program ran*; here a ``branch_hook``
receives every dynamic branch the same way
(:mod:`repro.predict.harness` plugs into it).
"""

from __future__ import annotations

from typing import Callable

from repro.asm.program import Program
from repro.isa.instructions import Instruction
from repro.sim.memory import Memory
from repro.sim.semantics import MachineState, SimulationError, execute
from repro.sim.stats import ExecutionStats

BranchHook = Callable[[int, Instruction, bool], None]
"""Called for every executed branch: (pc, instruction, taken)."""


class FunctionalSimulator:
    """Executes a program architecturally, collecting
    :class:`~repro.sim.stats.ExecutionStats`."""

    def __init__(self, program: Program,
                 branch_hook: BranchHook | None = None) -> None:
        self.program = program
        self.memory = Memory()
        self.memory.load_program(program)
        self.state = MachineState(
            self.memory, pc=program.entry, sp=program.stack_top)
        self.stats = ExecutionStats()
        self.branch_hook = branch_hook

    def step(self) -> bool:
        """Execute one instruction; return False once halted."""
        state = self.state
        if state.halted:
            return False
        index = self.program.index_of(state.pc)
        if index is None:
            raise SimulationError(
                f"control reached {state.pc:#x}, not an instruction boundary")
        instruction = self.program.instructions[index]
        result = execute(state, instruction, state.pc)
        self.stats.record(
            instruction.opcode.value,
            is_branch=result.is_branch,
            is_conditional=result.is_conditional,
            taken=result.taken,
            one_parcel=instruction.length_parcels() == 1,
        )
        if result.is_branch and self.branch_hook is not None:
            self.branch_hook(state.pc, instruction, result.taken)
        state.pc = result.next_pc
        return not result.halted

    def run(self, max_instructions: int = 10_000_000) -> ExecutionStats:
        """Run to ``halt``; raise if the instruction budget is exhausted."""
        for _ in range(max_instructions):
            if not self.step():
                return self.stats
        raise SimulationError(
            f"program did not halt within {max_instructions} instructions")

    # ---- conveniences used throughout tests and benches ------------------

    def read_symbol(self, name: str) -> int:
        """Read the word at a data symbol's address."""
        return self.memory.read_word(self.program.symbol(name))

    def write_symbol(self, name: str, value: int) -> None:
        """Write the word at a data symbol's address."""
        self.memory.write_word(self.program.symbol(name), value)


def run_program(program: Program,
                max_instructions: int = 10_000_000) -> FunctionalSimulator:
    """Run ``program`` to completion and return the simulator."""
    simulator = FunctionalSimulator(program)
    simulator.run(max_instructions)
    return simulator
