"""The Prefetch and Decode Unit (PDU).

Three pipelined stages fetch parcels from main memory into an eight-parcel
instruction queue, decode them — folding branches per the
:class:`~repro.core.policy.FoldPolicy` — and write canonical
:class:`~repro.core.decoded.DecodedEntry` records into the Decoded
Instruction Cache. The cache decouples the PDU from the execution unit:
"if the PDU has to wait for memory, this does not necessarily stall the
EU".

Timing model:

* Memory delivers four parcels (the queue's four inputs) per access after
  ``mem_latency`` cycles; the queue holds eight parcels.
* An instruction decodes once the queue holds all its parcels *plus* the
  one-parcel fold lookahead when the policy may fold
  (:meth:`~repro.core.folder.BranchFolder.parcels_needed` — the QA..QE
  window).
* A decoded entry spends ``decode_latency`` cycles in the PDR/PIR stages
  before its cache fill; one entry enters decode per cycle.
* After decoding an entry the PDU continues along the entry's Next-PC
  (prefetching down the *predicted* path), resetting the queue whenever
  the path leaves the sequential stream, and pausing ``prefetch_depth``
  entries past the last execution-unit demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decoded import DecodedEntry
from repro.core.folder import BranchFolder
from repro.core.policy import FoldPolicy
from repro.isa.encoding import EncodingError
from repro.isa.parcels import PARCEL_BYTES
from repro.obs.events import EventBus, NULL_BUS
from repro.sim.icache import DecodedICache
from repro.sim.memory import Memory


@dataclass
class _InFlight:
    """A decoded entry moving through the PDR/PIR stages."""

    entry: DecodedEntry
    cycles_left: int


class PrefetchDecodeUnit:
    """Cycle-level model of CRISP's three-stage prefetch/decode pipeline."""

    QUEUE_PARCELS = 8
    FETCH_PARCELS = 4

    def __init__(self, memory: Memory, icache: DecodedICache,
                 policy: FoldPolicy, *, mem_latency: int = 2,
                 decode_latency: int = 2, prefetch_depth: int = 16,
                 obs: EventBus = NULL_BUS, dyn=None) -> None:
        self.memory = memory
        self.icache = icache
        self.folder = BranchFolder(memory.read_parcel, policy)
        #: dynamic-fold unit shared with the EU; the PDU only *queries*
        #: it (a pure read of predictor state) to steer prefetch down
        #: the predicted-taken path of a dynamically foldable entry
        self._dyn = dyn
        self.mem_latency = mem_latency
        self.decode_latency = decode_latency
        self.prefetch_depth = prefetch_depth
        self.obs = obs
        self._obs_on = obs.enabled  #: skip probe updates on a disabled bus
        self._obs_sinks = obs.sinks_ref()  #: field formatting only if truthy
        self._p_decoded = obs.counter("pdu.decoded")
        self._p_fold_attempted = obs.counter("fold.attempted")
        self._p_fold_decoded = obs.counter("fold.decoded")
        self._p_accesses = obs.counter("pdu.memory_accesses")
        self._p_queue_depth = obs.gauge("pdu.queue.depth")
        self._p_ahead = obs.gauge("pdu.prefetch.ahead")

        self.decode_pc: int | None = None  #: next address to decode
        self.queue_base = 0  #: byte address of the first buffered parcel
        self.queue_parcels = 0  #: contiguous parcels buffered from queue_base
        self.fetch_countdown = 0  #: cycles until the outstanding access lands
        self.inflight: list[_InFlight] = []
        self.entries_ahead = 0  #: entries decoded since the last demand
        self.memory_accesses = 0
        self.decoded_entries = 0
        self._starved = False  #: decoder waiting on parcels this cycle

    # ---- execution-unit interface -----------------------------------------

    def demand(self, address: int) -> None:
        """The EU missed the cache at ``address``: redirect decoding there.

        If the entry is already in the PDR/PIR stages the PDU lets it
        arrive; otherwise the queue and decode pipeline restart at the
        demanded address.
        """
        self.entries_ahead = 0
        if any(flight.entry.address == address for flight in self.inflight):
            return
        if self.decode_pc == address and (
                self._parcels_buffered(address) > 0 or self.fetch_countdown > 0):
            return  # already being fetched/decoded
        self.decode_pc = address
        self.queue_base = address
        self.queue_parcels = 0
        self.fetch_countdown = 0
        self.inflight = []

    # ---- per-cycle behaviour -------------------------------------------------

    def tick(self) -> None:
        """Advance the PDU by one clock."""
        self._advance_decode_pipeline()
        self._advance_memory()
        self._starved = False
        self._maybe_decode()
        self._maybe_start_fetch()

    def _advance_decode_pipeline(self) -> None:
        for flight in self.inflight:
            flight.cycles_left -= 1
        while self.inflight and self.inflight[0].cycles_left <= 0:
            self.icache.fill(self.inflight.pop(0).entry)

    def _advance_memory(self) -> None:
        if self.fetch_countdown > 0:
            self.fetch_countdown -= 1
            if self.fetch_countdown == 0:
                self.queue_parcels += self.FETCH_PARCELS
                if self._obs_on:
                    self._p_queue_depth.set_fast(self.queue_parcels)

    def _parcels_buffered(self, address: int) -> int:
        """How many buffered parcels are available from ``address`` on."""
        offset = (address - self.queue_base) // PARCEL_BYTES
        if offset < 0 or offset > self.queue_parcels:
            return 0
        return self.queue_parcels - offset

    def _maybe_decode(self) -> None:
        if self.decode_pc is None:
            return
        if self.entries_ahead >= self.prefetch_depth:
            return
        if len(self.inflight) >= self.decode_latency:
            return  # PDR stage occupied
        available = self._parcels_buffered(self.decode_pc)
        if available <= 0:
            return
        try:
            needed = self.folder.parcels_needed(self.decode_pc)
            if available < needed:
                self._starved = True
                return
            entry = self.folder.decode(self.decode_pc)
        except EncodingError:
            # prefetch ran past the program into undecodable bytes — stop
            # until the EU demands a real address
            self.decode_pc = None
            return
        self.inflight.append(_InFlight(entry, self.decode_latency))
        self.decoded_entries += 1
        self.entries_ahead += 1
        if self._obs_on:
            detail = self._obs_sinks
            if detail:
                self._p_decoded.inc(site=entry.address)
            else:
                self._p_decoded.add()
            self._p_ahead.set_fast(self.entries_ahead)
            if entry.is_folded:
                if detail:
                    self._p_fold_attempted.inc(site=entry._branch_pc)
                    self._p_fold_decoded.inc(site=entry._branch_pc)
                else:
                    self._p_fold_attempted.add()
                    self._p_fold_decoded.add()
            elif (entry.body is not None
                  and self.folder.policy.enabled
                  and entry.body.length_parcels()
                  in self.folder.policy.body_lengths):
                # peeked at a follower, no fold
                if detail:
                    self._p_fold_attempted.inc(site=entry.address)
                else:
                    self._p_fold_attempted.add()

        sequential = entry.sequential
        follow = entry.next_pc
        if (self._dyn is not None and entry.dyn_foldable
                and self._dyn.decide(entry._branch_pc)):
            # dynamic fold engaged: prefetch continues down the
            # predicted-taken path instead of the static-bit path
            follow = (entry.next_pc if entry._predicted_taken
                      else entry.alt_pc)
        if follow is None:
            self.decode_pc = None  # dynamic target: wait for a demand
        elif follow == sequential:
            self.decode_pc = sequential
        else:
            # predicted-path prefetch leaves the sequential stream: the
            # queue contents past this point are the wrong path
            self.decode_pc = follow
            self.queue_base = follow
            self.queue_parcels = 0
            self.fetch_countdown = 0
        if entry.halts:
            self.decode_pc = None

    def _maybe_start_fetch(self) -> None:
        if self.fetch_countdown > 0 or self.decode_pc is None:
            return
        if self.entries_ahead >= self.prefetch_depth:
            return
        if self.queue_parcels + self.FETCH_PARCELS > self.QUEUE_PARCELS:
            # drop parcels the decoder has moved past to make room
            consumed = (self.decode_pc - self.queue_base) // PARCEL_BYTES
            if consumed > 0:
                drop = min(consumed, self.queue_parcels)
                self.queue_base += drop * PARCEL_BYTES
                self.queue_parcels -= drop
            if self.queue_parcels + self.FETCH_PARCELS > self.QUEUE_PARCELS \
                    and not self._starved:
                # full — unless the decoder is starved for parcels (a
                # window wider than the queue, only possible under the
                # fold-everything ablation), in which case overfetch into
                # a skid rather than deadlock
                return
        self.fetch_countdown = self.mem_latency
        self.memory_accesses += 1
        if self._obs_on:
            self._p_accesses.add()
