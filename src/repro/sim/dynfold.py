"""Dynamic-confidence conditional-branch folding with verified recovery.

The paper folds branches whose direction is *statically* predicted; the
m2sim2 bug report (SNIPPETS.md) documents the failure mode of extending
folding to *dynamically* predicted conditionals without a verification
path: the folded branch never occupies an execution slot, so a wrong
prediction is never detected and ``branch_hot_loop`` spins forever.

This module is the verification path. One :class:`DynamicFoldUnit` is
shared by the PDU and the EU of a CPU:

* at fetch/decode time the unit is *queried only* — :meth:`decide` is a
  pure function of predictor state, so wrong-path fetches can probe it
  freely without perturbing training;
* when the EU folds on the unit's say-so it attaches a frozen
  :class:`ShadowRecord` (predicted direction, fold site, alternate
  next-PC) to the pipeline slot. The record rides down the pipeline with
  the merged entry and is checked the moment the governing compare
  retires;
* on a verified mismatch the EU flushes younger stages, restores PC from
  the record's alternate next-PC and calls :meth:`untrain`, knocking the
  branch's counter back below the fold threshold;
* actual outcomes train the predictor only at retirement
  (:meth:`train`), so squashed wrong-path slots never teach it anything.

``inject="always-wrong"`` flips the unit into fault-injection mode: the
EU treats every *verified-correct* shadow fold as a mismatch too, forcing
a full flush/recovery on every dynamic fold. A machine that survives an
``always-wrong`` campaign with architectural state intact has proven its
recovery is total — the regression test that would have caught the
m2sim2 bug on day one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import FoldPolicy
from repro.predict.factory import make_predictor

#: the fault-injection mode names accepted by CpuConfig.inject
INJECT_MODES = ("always-wrong",)


@dataclass(frozen=True)
class ShadowRecord:
    """The verification record that flows down the pipeline with a
    dynamically folded conditional branch."""

    site: int  #: byte address of the branch instruction (the fold site)
    predicted_taken: bool  #: direction the fold committed to (always True)
    chosen_pc: int  #: next-PC of the predicted path
    alternate_pc: int  #: recovery next-PC when verification fails
    confidence: int  #: predictor confidence at fold time


class DynamicFoldUnit:
    """Confidence-gated fold decisions plus training/untraining feedback.

    Also keeps per-site fold/flush tallies — pure diagnostics (never
    part of :class:`~repro.sim.stats.PipelineStats`), surfaced by
    :class:`~repro.sim.semantics.SimulationHungError` so a hung run
    names its hottest fold sites.
    """

    def __init__(self, policy: FoldPolicy) -> None:
        self.predictor = make_predictor(policy.dyn_predictor)
        self.threshold = policy.dyn_confidence
        self.fold_counts: dict[int, int] = {}
        self.flush_counts: dict[int, int] = {}

    def decide(self, site: int) -> int:
        """Confidence of folding the branch at ``site`` taken; 0 = don't.

        Pure: no predictor state changes, so the PDU and wrong-path
        fetches may call this speculatively.
        """
        predictor = self.predictor
        if not predictor.predict(site):
            return 0
        confidence = predictor.confidence(site)
        return confidence if confidence >= self.threshold else 0

    def train(self, site: int, taken: bool) -> None:
        """Retirement feedback: the branch at ``site`` actually went
        ``taken``. Only architecturally retired branches reach here."""
        self.predictor.observe(site, taken)

    def untrain(self, site: int) -> None:
        """Verified-recovery feedback: the fold at ``site`` was wrong."""
        self.predictor.untrain(site)

    def note_fold(self, site: int) -> None:
        self.fold_counts[site] = self.fold_counts.get(site, 0) + 1

    def note_flush(self, site: int) -> None:
        self.flush_counts[site] = self.flush_counts.get(site, 0) + 1
