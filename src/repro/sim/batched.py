"""Batched lock-step simulation: the ``batched`` engine tier.

Campaign-scale experiments — a 1000-seed fuzz round, a Table-4 config
sweep, a statistical timing study that re-runs one program hundreds of
times — all share one shape: many *independent* simulations whose
results are consumed together. Until now every one of them paid a full
interpreter loop. This module runs a whole batch through one scheduler
that advances all instances in lock-step supersteps, holding **one
array per architectural/pipeline field across all instances** (numpy
when available, a pure-Python column store otherwise, so the dependency
stays strictly optional).

The design splits the batch along two axes:

* **Cohorts.** The simulator is deterministic and closed (no external
  input once a run starts), so two instances with the same *trajectory
  key* — program image, machine configuration, cycle budget, cache
  warm-up — are provably on bit-identical trajectories. A cohort
  advances **one leader** on the fast per-cycle kernel; every follower
  tracks the leader through the batch arrays and is finalized from the
  leader's end state, bit-identically (fresh :class:`PipelineStats`
  per instance, shared read-only memory snapshot). This is where the
  vector win comes from: a 256-instance case-E batch is one leader run
  plus 255 array broadcasts.
* **Masks.** Every instance has a row in the ``active`` mask. Instances
  whose behaviour the lock-step common path does not model **peel off**
  and are finalized individually by the fast kernel, bit-identically:
  dynamic-fold configs (``"fold"``) and fault-injection configs
  (``"flush"``) at batch build time — their shadow/recovery machinery
  is per-run predictor state the common path refuses, exactly like the
  blockspec tier — and instances with an interrupt schedule
  (``"interrupt"``). In-flight, a cohort leaves the common path when it
  halts (``"retire"``), exhausts its cycle budget (``"watchdog"``,
  with the same diagnostic :class:`SimulationHungError` the fast
  kernel raises) or faults (``"fault"``, e.g. a division by zero).

Every superstep advances each live cohort by at most ``quantum``
cycles, then scatters the leader's live counters into the arrays, so
ragged batches retire progressively and a campaign heartbeat can read
aggregate progress with one vectorized reduction
(:meth:`BatchResult.totals`).

``CpuConfig(engine="batched")`` on a single :class:`CrispCpu` routes
through :func:`run_single` — the same quantum-sliced loop, bit-identical
to the fast kernel's ``run`` including the watchdog firing point —
while dynamic-fold configs fall back to the plain stepping loop (the
dispatch mirrors the blockspec tier).

Correctness is enforced by ``tests/test_batched.py`` (per-case bitwise
parity, peel-off semantics, ragged batches), the 5-way differential
(``crisp-verify fuzz --engine all``) and the throughput floor in
``benchmarks/bench_sim_throughput.py``.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field

from repro.asm.program import Program
from repro.obs.events import EventBus
from repro.sim.cpu import CpuConfig, CrispCpu
from repro.sim.semantics import SimulationError
from repro.sim.stats import ExecutionStats, PipelineStats

try:  # optional acceleration; the column store below is the contract
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-free installs
    _np = None

HAVE_NUMPY = _np is not None

#: cycles a cohort leader advances per lock-step superstep
DEFAULT_QUANTUM = 4096

#: peel-off reasons an instance can leave the lock-step common path for
PEEL_FOLD = "fold"  #: dynamic-fold policy: per-run predictor state
PEEL_FLUSH = "flush"  #: fault injection: forced recovery flushes
PEEL_INTERRUPT = "interrupt"  #: per-instance interrupt schedule
PEEL_RETIRE = "retire"  #: halted normally
PEEL_WATCHDOG = "watchdog"  #: cycle budget exhausted
PEEL_FAULT = "fault"  #: architectural fault (e.g. division by zero)

#: the integer counters of :class:`PipelineStats`, one batch column each
STAT_FIELDS = (
    "cycles", "issued_instructions", "executed_instructions",
    "folded_branches", "mispredictions", "misprediction_penalty_cycles",
    "zero_cost_overrides", "dynamic_folds", "folded_mispredicts",
    "recovery_flush_cycles", "icache_misses", "icache_hits",
    "stall_cycles", "squashed_slots",
)

#: architectural scalar fields, one batch column each (``flag`` as 0/1)
ARCH_FIELDS = ("accum", "sp", "flag")

#: pipeline-front fields: the EU's next fetch address (-1 once retired)
PIPE_FIELDS = ("fetch_pc",)


class BatchArrays:
    """One array per simulated field across all batch instances.

    The numpy backend holds one ``int64`` vector per field plus a bool
    ``active`` mask; the pure-Python backend holds plain lists with the
    same interface, so every caller is backend-agnostic and the numpy
    dependency stays optional. Columns are scattered into at superstep
    boundaries (cohort rows share one scalar, so updates are broadcast
    writes, not per-instance Python loops) and reduced with one
    vectorized ``sum`` per field for campaign aggregates.
    """

    FIELDS = STAT_FIELDS + ARCH_FIELDS + PIPE_FIELDS

    def __init__(self, size: int, numpy: bool | None = None) -> None:
        if numpy is None:
            numpy = HAVE_NUMPY
        if numpy and not HAVE_NUMPY:
            raise RuntimeError("numpy backend requested but numpy is "
                               "not installed (pip install numpy, or "
                               "the 'batched' extra)")
        self.size = size
        self.backend = "numpy" if numpy else "python"
        if numpy:
            self.active = _np.zeros(size, dtype=bool)
            self._columns = {name: _np.zeros(size, dtype=_np.int64)
                            for name in self.FIELDS}
        else:
            self.active = [False] * size
            self._columns = {name: [0] * size for name in self.FIELDS}

    # ---- writes ------------------------------------------------------------

    def activate(self, rows: list[int]) -> None:
        if self.backend == "numpy":
            self.active[rows] = True
        else:
            for row in rows:
                self.active[row] = True

    def deactivate(self, rows: list[int]) -> None:
        if self.backend == "numpy":
            self.active[rows] = False
        else:
            for row in rows:
                self.active[row] = False

    def broadcast(self, name: str, rows: list[int], value: int) -> None:
        """Scatter one scalar into every row of a column (cohort write)."""
        column = self._columns[name]
        if self.backend == "numpy":
            column[rows] = value
        else:
            for row in rows:
                column[row] = value

    def scatter_row(self, row: int, values: dict[str, int]) -> None:
        for name, value in values.items():
            self._columns[name][row] = value

    # ---- reads -------------------------------------------------------------

    def column(self, name: str):
        return self._columns[name]

    def value(self, name: str, row: int) -> int:
        return int(self._columns[name][row])

    def row(self, row: int) -> dict[str, int]:
        return {name: int(column[row])
                for name, column in self._columns.items()}

    def active_count(self) -> int:
        if self.backend == "numpy":
            return int(self.active.sum())
        return sum(1 for live in self.active if live)

    def totals(self) -> dict[str, int]:
        """One vectorized reduction per field across the whole batch."""
        if self.backend == "numpy":
            return {name: int(column.sum())
                    for name, column in self._columns.items()}
        return {name: sum(column)
                for name, column in self._columns.items()}


# ---- batch description -----------------------------------------------------


@dataclass(frozen=True)
class BatchItem:
    """One simulation instance: everything needed to run it, by value.

    ``warm`` pre-decodes the program into the decoded cache before the
    first cycle (the differential runner's ideal regime); ``interrupts``
    is a schedule of ``(cycle, vector)`` pairs delivered when the
    machine's cycle counter reaches each cycle — part of the trajectory,
    so an instance carrying one peels off to individual execution.
    """

    program: Program
    config: CpuConfig
    max_cycles: int | None = None
    warm: bool = False
    interrupts: tuple[tuple[int, int], ...] = ()


@dataclass
class InstanceResult:
    """One finalized instance, bit-identical to a fast-kernel run."""

    index: int
    stats: PipelineStats
    memory: dict[int, int]  #: read-only snapshot (shared within a cohort)
    accum: int = 0
    sp: int = 0
    flag: bool = False
    interrupts_taken: int = 0
    error: SimulationError | ZeroDivisionError | None = None
    #: how the instance left the common path ("retire"/"watchdog"/...)
    peel: str = PEEL_RETIRE
    #: leader instance this result was replicated from (None = simulated)
    shared_with: int | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def clone_stats(stats: PipelineStats) -> PipelineStats:
    """An independent, value-equal copy of one run's statistics."""
    execution = ExecutionStats(
        instructions=stats.execution.instructions,
        opcode_counts=Counter(stats.execution.opcode_counts),
        branches=stats.execution.branches,
        conditional_branches=stats.execution.conditional_branches,
        taken_branches=stats.execution.taken_branches,
        one_parcel_branches=stats.execution.one_parcel_branches)
    copied = dataclasses.replace(stats, execution=execution)
    return copied


def instance_key(item: BatchItem) -> tuple:
    """The trajectory key: instances sharing it are bit-identical.

    The simulator is deterministic and closed, so the key only needs
    the program content, the machine configuration (engine tier
    normalized away — the leader always runs the fast kernel), the
    cycle budget, warm-up, and the interrupt schedule.
    """
    program = item.program
    image = tuple(sorted(program.parcel_image().items()))
    data = tuple(sorted(program.data_image().items()))
    config = dataclasses.replace(item.config, engine="fast")
    return (image, data, program.entry, program.stack_top, config,
            item.max_cycles, item.warm, item.interrupts)


# ---- execution -------------------------------------------------------------


def _build_cpu(item: BatchItem) -> CrispCpu:
    config = (item.config if item.config.engine == "fast"
              else dataclasses.replace(item.config, engine="fast"))
    cpu = CrispCpu(item.program, config, obs=EventBus(enabled=False))
    if item.warm:
        cpu.warm_cache()
    return cpu


def _run_individual(item: BatchItem, index: int, peel: str) -> InstanceResult:
    """Finalize one peeled-off instance with the fast kernel."""
    cpu = _build_cpu(item)
    error: SimulationError | ZeroDivisionError | None = None
    try:
        if item.interrupts:
            _run_with_interrupts(cpu, item)
        else:
            cpu.run(item.max_cycles)
    except (SimulationError, ZeroDivisionError) as exc:
        error = exc
    return InstanceResult(
        index=index, stats=cpu.stats, memory=cpu.memory.snapshot(),
        accum=cpu.state.accum, sp=cpu.state.sp, flag=cpu.state.flag,
        interrupts_taken=cpu.interrupts_taken, error=error, peel=peel)


def _run_with_interrupts(cpu: CrispCpu, item: BatchItem) -> None:
    """The fast run loop with an interrupt schedule folded in.

    Interrupts are raised when the cycle counter reaches each scheduled
    cycle — the same observable behaviour as a driver calling
    :meth:`CrispCpu.interrupt` at that point of a manual stepping loop.
    """
    limit = (cpu.config.max_cycles if item.max_cycles is None
             else item.max_cycles)
    pending = sorted(item.interrupts)
    cursor = 0
    eu = cpu.eu
    step = cpu.step
    for _ in range(limit):
        if eu.halted:
            eu.flush_execution()
            return
        while cursor < len(pending) \
                and cpu.stats.cycles >= pending[cursor][0]:
            cpu.interrupt(pending[cursor][1])
            cursor += 1
        step()
    eu.flush_execution()
    raise cpu._watchdog_error(limit)


class _Cohort:
    """A set of instances sharing one trajectory; the leader simulates."""

    __slots__ = ("rows", "item", "cpu", "limit", "taken", "error", "peel")

    def __init__(self, rows: list[int], item: BatchItem) -> None:
        self.rows = rows  #: batch indices, leader first
        self.item = item
        self.cpu = _build_cpu(item)
        self.limit = (self.cpu.config.max_cycles if item.max_cycles is None
                      else item.max_cycles)
        self.taken = 0  #: budgeted steps consumed so far
        self.error: SimulationError | ZeroDivisionError | None = None
        self.peel: str | None = None

    def advance(self, quantum: int) -> None:
        """One lock-step superstep: at most ``quantum`` budgeted cycles.

        Reproduces the fast kernel's run-loop semantics exactly: halt is
        observed *before* a step, and a program that halts on its very
        last budgeted cycle still trips the watchdog — so the budget
        exhaustion point, the diagnostic error and the final counters
        are all bit-identical to ``CrispCpu.run(limit)``.
        """
        cpu = self.cpu
        eu = cpu.eu
        step = cpu.step
        budget = min(quantum, self.limit - self.taken)
        n = 0
        try:
            while n < budget:
                if eu.halted:
                    break
                step()
                n += 1
        except (SimulationError, ZeroDivisionError) as exc:
            self.taken += n
            self.error = exc
            self.peel = PEEL_FAULT
            return
        self.taken += n
        if n < budget or (eu.halted and self.taken < self.limit):
            eu.flush_execution()
            self.peel = PEEL_RETIRE
        elif self.taken >= self.limit:
            eu.flush_execution()
            self.error = cpu._watchdog_error(self.limit)
            self.peel = PEEL_WATCHDOG


@dataclass
class BatchResult:
    """All finalized instances plus the batch-level array view."""

    instances: list[InstanceResult]
    arrays: BatchArrays
    cohorts: int = 0  #: distinct trajectories simulated
    peeled: dict[str, int] = field(default_factory=dict)
    leader_cycles: int = 0  #: cycles actually stepped by leaders
    supersteps: int = 0

    def totals(self) -> dict[str, int]:
        """Vectorized whole-campaign reductions (one per field)."""
        return self.arrays.totals()

    @property
    def aggregate_cycles(self) -> int:
        """Total simulated cycles credited across all instances."""
        return self.totals()["cycles"]

    @property
    def shared_cycles(self) -> int:
        """Cycles delivered by cohort sharing rather than stepping."""
        return self.aggregate_cycles - self.leader_cycles


class BatchedSimulator:
    """Advance N independent simulations in lock-step supersteps."""

    def __init__(self, items: list[BatchItem] | tuple[BatchItem, ...],
                 *, quantum: int = DEFAULT_QUANTUM,
                 numpy: bool | None = None) -> None:
        self.items = list(items)
        self.quantum = quantum
        self.arrays = BatchArrays(len(self.items), numpy=numpy)
        self._results: list[InstanceResult | None] = [None] * len(self.items)
        self._peel_counts: Counter[str] = Counter()
        self._individual: list[tuple[int, str]] = []
        self.cohorts: list[_Cohort] = []
        by_key: dict[tuple, _Cohort] = {}
        for index, item in enumerate(self.items):
            peel = self._build_time_peel(item)
            if peel is not None:
                self._individual.append((index, peel))
                continue
            key = instance_key(item)
            cohort = by_key.get(key)
            if cohort is None:
                cohort = _Cohort([index], item)
                by_key[key] = cohort
                self.cohorts.append(cohort)
            else:
                cohort.rows.append(index)

    @staticmethod
    def _build_time_peel(item: BatchItem) -> str | None:
        """Why an instance can never join the lock-step common path."""
        if item.config.fold_policy.dynamic_fold:
            return PEEL_FOLD
        if item.config.inject is not None:
            return PEEL_FLUSH
        if item.interrupts:
            return PEEL_INTERRUPT
        return None

    # ---- the lock-step loop ------------------------------------------------

    def run(self) -> BatchResult:
        arrays = self.arrays
        # instances outside the common path: finalized individually by
        # the fast kernel, bit-identically, before lock-step starts
        for index, peel in self._individual:
            result = _run_individual(self.items[index], index, peel)
            self._results[index] = result
            self._peel_counts[peel] += 1
            self._scatter_final(result)
        live = list(self.cohorts)
        for cohort in live:
            arrays.activate(cohort.rows)
        supersteps = 0
        leader_cycles = 0
        while live:
            supersteps += 1
            still = []
            for cohort in live:
                before = cohort.cpu.stats.cycles
                cohort.advance(self.quantum)
                leader_cycles += cohort.cpu.stats.cycles - before
                self._scatter_live(cohort)
                if cohort.peel is None:
                    still.append(cohort)
                else:
                    self._finalize_cohort(cohort)
                    arrays.deactivate(cohort.rows)
            live = still
        return BatchResult(
            instances=[result for result in self._results
                       if result is not None],
            arrays=arrays, cohorts=len(self.cohorts),
            peeled=dict(self._peel_counts),
            leader_cycles=leader_cycles, supersteps=supersteps)

    # ---- array bookkeeping -------------------------------------------------

    def _scatter_live(self, cohort: _Cohort) -> None:
        """Broadcast the leader's live counters to every cohort row."""
        arrays = self.arrays
        rows = cohort.rows
        cpu = cohort.cpu
        stats = cpu.stats
        for name in STAT_FIELDS:
            arrays.broadcast(name, rows, getattr(stats, name))
        arrays.broadcast("accum", rows, cpu.state.accum)
        arrays.broadcast("sp", rows, cpu.state.sp)
        arrays.broadcast("flag", rows, int(cpu.state.flag))
        fetch = cpu.eu.ir_next_pc
        arrays.broadcast("fetch_pc", rows,
                         -1 if cpu.eu.halted or fetch is None else fetch)

    def _scatter_final(self, result: InstanceResult) -> None:
        values = {name: getattr(result.stats, name) for name in STAT_FIELDS}
        values["accum"] = result.accum
        values["sp"] = result.sp
        values["flag"] = int(result.flag)
        values["fetch_pc"] = -1
        self.arrays.scatter_row(result.index, values)

    # ---- finalization ------------------------------------------------------

    def _finalize_cohort(self, cohort: _Cohort) -> None:
        """Materialize the leader's end state for every cohort member.

        The leader's own row keeps its live objects; every follower gets
        an independent :class:`PipelineStats` clone and shares the
        read-only memory snapshot — bit-identical by construction, since
        followers are on the same deterministic trajectory.
        """
        assert cohort.peel is not None
        cpu = cohort.cpu
        snapshot = cpu.memory.snapshot()
        leader = cohort.rows[0]
        self._peel_counts[cohort.peel] += len(cohort.rows)
        for row in cohort.rows:
            stats = cpu.stats if row == leader else clone_stats(cpu.stats)
            result = InstanceResult(
                index=row, stats=stats, memory=snapshot,
                accum=cpu.state.accum, sp=cpu.state.sp,
                flag=cpu.state.flag,
                interrupts_taken=cpu.interrupts_taken,
                error=cohort.error, peel=cohort.peel,
                shared_with=None if row == leader else leader)
            self._results[row] = result
            self._scatter_final(result)


def run_batch(items: list[BatchItem] | tuple[BatchItem, ...],
              *, quantum: int = DEFAULT_QUANTUM,
              numpy: bool | None = None) -> BatchResult:
    """Run a whole batch in lock-step and return every finalized instance."""
    return BatchedSimulator(items, quantum=quantum, numpy=numpy).run()


# ---- single-instance dispatch (CpuConfig(engine="batched")) ----------------


def run_single(cpu: CrispCpu, limit: int,
               quantum: int = DEFAULT_QUANTUM) -> PipelineStats:
    """The batched tier's run loop for one machine: quantum-sliced
    stepping with the fast kernel's exact halt/watchdog semantics.

    ``CrispCpu.run`` dispatches here for ``engine="batched"`` (except
    dynamic-fold configs, which take the plain stepping loop — same
    fallback contract as the blockspec tier). A batch of one is the
    degenerate lock-step campaign, so a plain ``crisp-sim --engine
    batched`` run exercises the same superstep accounting the campaign
    scheduler relies on.
    """
    eu = cpu.eu
    step = cpu.step
    taken = 0
    while taken < limit:
        if eu.halted:
            eu.flush_execution()
            return cpu.stats
        budget = min(quantum, limit - taken)
        n = 0
        while n < budget:
            if eu.halted:
                break
            step()
            n += 1
        taken += n
        # a mid-quantum halt loops back to the outer check, which
        # returns — unless the budget is already exhausted, in which
        # case the watchdog fires exactly like the fast kernel's loop
    eu.flush_execution()
    raise cpu._watchdog_error(limit)
