"""``crisp-sim``: assemble and run a program on either simulator."""

from __future__ import annotations

import argparse
import sys

from repro.asm.assembler import AssemblyError, assemble
from repro.core.policy import FoldPolicy
from repro.sim.cpu import CpuConfig, run_cycle_accurate
from repro.sim.functional import run_program


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-sim",
        description="Run CRISP assembly on the functional or "
                    "cycle-accurate simulator.")
    parser.add_argument("source", help="assembly source file ('-' for stdin)")
    parser.add_argument("--functional", action="store_true",
                        help="architectural simulation only (no timing)")
    parser.add_argument("--no-fold", action="store_true",
                        help="disable branch folding")
    parser.add_argument("--fold-all", action="store_true",
                        help="fold every combination (ablation policy)")
    parser.add_argument("--icache", type=int, default=32,
                        help="decoded instruction cache entries")
    parser.add_argument("--mem-latency", type=int, default=2,
                        help="memory latency in cycles per 4-parcel fetch")
    parser.add_argument("--print-symbols", action="store_true",
                        help="dump data-symbol values after the run")
    args = parser.parse_args(argv)

    if args.source == "-":
        text = sys.stdin.read()
    else:
        with open(args.source, encoding="utf-8") as handle:
            text = handle.read()
    try:
        program = assemble(text)
    except AssemblyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.functional:
        simulator = run_program(program)
        stats = simulator.stats
        print(f"{stats.instructions} instructions, {stats.branches} branches"
              f" ({100 * stats.branch_fraction:.1f}% dynamic)")
        reader = simulator.read_symbol
    else:
        policy = FoldPolicy.crisp()
        if args.no_fold:
            policy = FoldPolicy.none()
        elif args.fold_all:
            policy = FoldPolicy.fold_all()
        config = CpuConfig(fold_policy=policy, icache_entries=args.icache,
                           mem_latency=args.mem_latency)
        cpu = run_cycle_accurate(program, config)
        print(cpu.stats.summary())
        reader = cpu.read_symbol

    if args.print_symbols:
        for name, address in sorted(program.symbols.items(),
                                    key=lambda kv: kv[1]):
            if address >= min((i.address for i in program.data),
                              default=1 << 62):
                print(f"  {name} = {reader(name)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
