"""The Decoded Instruction Cache.

Thirty-two entries of canonical decoded instructions sit between the
prefetch/decode unit and the execution unit — the architectural centrepiece
of Branch Folding. The cache is direct-mapped: "the low five bits [of the
IR Next-PC register] are used to address the Decoded Instruction Cache",
i.e. the index is the low bits of the *parcel-aligned* address, with the
full PC kept as the tag.

Entries carry the Next-PC and Alternate Next-PC fields (the 64 extra bits
that, on the die, "turned out not to cost any area ... since the pitch of
the datapath was the constraining factor").
"""

from __future__ import annotations

from repro.core.decoded import DecodedEntry
from repro.isa.parcels import PARCEL_BYTES
from repro.obs.events import EventBus, NULL_BUS


class DecodedICache:
    """Direct-mapped cache of :class:`~repro.core.decoded.DecodedEntry`."""

    def __init__(self, entries: int = 32, *,
                 obs: EventBus = NULL_BUS) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("cache size must be a positive power of two")
        self.size = entries
        self._lines: list[DecodedEntry | None] = [None] * entries
        self.hits = 0
        self.misses = 0
        #: bumped on every content change; lets the blockspec engine
        #: skip line-by-line residency revalidation between fills
        self.generation = 0
        self._obs_on = obs.enabled  #: skip probe updates on a disabled bus
        self._p_fills = obs.counter("icache.fills")
        self._p_evictions = obs.counter("icache.conflict_evictions")

    def index_of(self, address: int) -> int:
        """Cache index: low bits of the parcel-aligned address."""
        return (address // PARCEL_BYTES) % self.size

    def lookup(self, address: int) -> DecodedEntry | None:
        """Return the entry tagged with ``address``, or None on a miss."""
        entry = self._lines[self.index_of(address)]
        if entry is not None and entry.address == address:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def probe(self, address: int) -> bool:
        """Hit test without disturbing the statistics (used by prefetch)."""
        entry = self._lines[self.index_of(address)]
        return entry is not None and entry.address == address

    def fill(self, entry: DecodedEntry) -> None:
        """Write a decoded entry (replacing any conflicting line)."""
        index = self.index_of(entry.address)
        if self._obs_on:
            previous = self._lines[index]
            if previous is not None and previous.address != entry.address:
                self._p_evictions.add()
            self._p_fills.add()
        self._lines[index] = entry
        self.generation += 1

    def invalidate(self) -> None:
        """Clear every line (machine reset)."""
        self._lines = [None] * self.size
        self.generation += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
