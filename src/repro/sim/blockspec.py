"""Block-specializing trace compiler: the ``blockspec`` engine tier.

The decoded-instruction stream of a hot program is dominated by a few
short loops whose pipeline behaviour repeats exactly: the same entries
stream through IR -> OR -> RR, the same compares resolve the same folded
branches, and the only thing that changes is the data. The per-cycle
fast kernel still pays full Python dispatch for every one of those
cycles. This module removes that cost the same way the paper's PDU
removes branch cost — by doing the work once, ahead of time, and caching
the result keyed on the decoded content.

:class:`BlockSpecEngine` watches the fetch stream for hot addresses,
then *abstractly interprets* the three-stage pipeline over the canonical
pre-decoded entries starting from the live latch signature: every
control decision that depends on the runtime CC flag becomes an
``if f:`` fork in the generated code, and a path that returns to the
head state becomes a loop closure (a superblock across the loop's
folded branches). The result is one specialized Python function per
(head address, latch signature): opcode dispatch unrolled, operand
constants baked in, and the per-cycle stats bookkeeping collapsed into
per-leaf count deltas applied once when the trace exits.

Deoptimization points — the trace is never entered, or exits, so the
per-cycle kernel handles these bit-identically (``docs/pipeline.md``
lists the invariants; ``repro.verify`` enforces them differentially):

* icache misses, non-resident or stale cache lines (a generation
  counter on :class:`~repro.sim.icache.DecodedICache` revalidates);
* CC interlocks live in the latches (unresolved slots) and dynamic-fold
  shadow records (a dynamic-fold config never traces at all);
* pending interrupts, PDU activity, watchdog-budget proximity;
* attached observability sinks (per-event ``site=`` attribution needs
  the per-cycle path; sink-less counter probes are batched instead);
* any instruction the emitter does not admit: ``halt``, returns and
  indirect branches (dynamic targets), and the division family (whose
  ``ZeroDivisionError`` must surface at an exact cycle boundary).

Caching: compiled code objects are process-local (code objects do not
pickle); the generated *source* plus its leaf metadata is cached in
:mod:`repro.sim.progcache` — the in-memory tier and, when enabled, the
sha256-verified/quarantined disk tier — keyed on parcel image, fold
policy, head address, latch signature and emitter version, so two
processes always emit byte-identical source for the same content.
"""

from __future__ import annotations

import sys

from repro.isa.opcodes import Condition, OpClass, Opcode, opcode_condition
from repro.isa.operands import AddrMode
from repro.isa.parcels import PARCEL_BYTES, to_u32
from repro.sim.eu import StageSlot
from repro.sim.progcache import (
    cache_key,
    default_cache,
    policy_key,
    predecode_cached,
)

#: emitter version: part of the disk-cache key, bump on any change to the
#: generated-code shape or the leaf/closure metadata layout
VERSION = "1"

#: fetches of the same address before a trace head is considered hot
HOT_THRESHOLD = 8

#: longest path (in cycles) the compiler follows before forcing an exit
MAX_PATH_CYCLES = 48

#: most exit leaves + loop closures per trace before rejecting it
MAX_LEAVES = 24

#: most (head, signature) compile attempts per head address
MAX_VARIANTS = 4

_MASK = 0xFFFFFFFF

#: division can raise ZeroDivisionError mid-trace, which must surface at
#: an exact cycle boundary with consistent stats — excluded from traces
_DIV_OPCODES = frozenset({
    Opcode.DIV, Opcode.REM, Opcode.UDIV, Opcode.UREM,
    Opcode.DIV3, Opcode.REM3, Opcode.UDIV3, Opcode.UREM3,
})


def _admissible(entry) -> bool:
    """May this decoded entry execute inside a trace?"""
    if entry.halts or entry.dynamic_target:
        return False
    body = entry.body
    if body is not None and body.opcode in _DIV_OPCODES:
        return False
    return True


# ---- expression emitter ----------------------------------------------------
#
# Generated code runs over six locals: ``a`` (accumulator), ``sp``,
# ``f`` (the CC flag), ``rw``/``ww`` (bound Memory.read_word/write_word)
# and the cycle budget ``limit``. All values are kept in the same
# canonical forms the interpreter uses: a/sp and every operand read are
# u32, f is a bool. to_s32 is inlined as ``((x ^ 2**31) - 2**31)``.


def _s32(expr: str) -> str:
    return f"(({expr} ^ 2147483648) - 2147483648)"


def _read_expr(operand) -> str:
    mode = operand.mode
    if mode is AddrMode.IMM:
        return str(to_u32(operand.value))
    if mode is AddrMode.ACC:
        return "a"
    if mode is AddrMode.ACC_IND:
        return "rw(a)"
    if mode is AddrMode.ABS:
        return f"rw({operand.value})"
    if operand.value == 0:
        return "rw(sp)"
    return f"rw((sp + {operand.value}) & {_MASK})"


def _write_stmt(operand, expr: str) -> str:
    mode = operand.mode
    if mode is AddrMode.ACC:
        return f"a = ({expr}) & {_MASK}"  # write_operand masks; ww masks too
    if mode is AddrMode.ACC_IND:
        return f"ww(a, {expr})"
    if mode is AddrMode.ABS:
        return f"ww({operand.value}, {expr})"
    if operand.value == 0:
        return f"ww(sp, {expr})"
    return f"ww((sp + {operand.value}) & {_MASK}, {expr})"


_ALU_TEMPLATES = {
    "mov": lambda x, y: y,
    "add": lambda x, y: f"({x} + {y})",
    "sub": lambda x, y: f"({x} - {y})",
    "and": lambda x, y: f"({x} & {y})",
    "or": lambda x, y: f"({x} | {y})",
    "xor": lambda x, y: f"({x} ^ {y})",
    "shl": lambda x, y: f"({x} << ({y} & 31))",
    "shr": lambda x, y: f"({x} >> ({y} & 31))",  # x is already u32
    "sar": lambda x, y: f"({_s32(x)} >> ({y} & 31))",
    "mul": lambda x, y: f"({_s32(x)} * {_s32(y)})",
    "not": lambda x, y: f"(~{y})",
    "neg": lambda x, y: f"(-{y})",
}

_CMP_TEMPLATES = {
    Condition.EQ: lambda x, y: f"({x} == {y})",
    Condition.NE: lambda x, y: f"({x} != {y})",
    Condition.SLT: lambda x, y: f"({_s32(x)} < {_s32(y)})",
    Condition.SLE: lambda x, y: f"({_s32(x)} <= {_s32(y)})",
    Condition.SGT: lambda x, y: f"({_s32(x)} > {_s32(y)})",
    Condition.SGE: lambda x, y: f"({_s32(x)} >= {_s32(y)})",
    Condition.ULT: lambda x, y: f"({x} < {y})",
    Condition.ULE: lambda x, y: f"({x} <= {y})",
    Condition.UGT: lambda x, y: f"({x} > {y})",
    Condition.UGE: lambda x, y: f"({x} >= {y})",
}


def _alu_template(opcode: Opcode):
    name = opcode.value
    if name.endswith("3"):
        name = name[:-1]
    return _ALU_TEMPLATES[name]


# ---- abstract pipeline state ----------------------------------------------


class _Slot:
    """Compile-time mirror of a :class:`~repro.sim.eu.StageSlot`.

    ``ord`` is the fetch order inside the trace: the head latches are
    0 (IR), -1 (OR) and -2 (RR); the entry fetched during trace cycle
    ``c`` (1-based) gets ord ``c``. At runtime a slot's seq is
    recovered as ``eu._seq - (leaf_cycles - ord)`` because every trace
    cycle fetches exactly one entry.
    """

    __slots__ = ("addr", "ord", "valid", "chosen_taken", "resolved",
                 "speculated", "governing", "other_pc")

    def __init__(self, addr, ordinal, valid=True, chosen_taken=None,
                 resolved=True, speculated=False, governing=None,
                 other_pc=None):
        self.addr = addr
        self.ord = ordinal
        self.valid = valid
        self.chosen_taken = chosen_taken
        self.resolved = resolved
        self.speculated = speculated
        self.governing = governing
        self.other_pc = other_pc

    def clone(self) -> "_Slot":
        return _Slot(self.addr, self.ord, self.valid, self.chosen_taken,
                     self.resolved, self.speculated, self.governing,
                     self.other_pc)


class _Path:
    """One control-flow path through the abstract interpretation."""

    __slots__ = ("cyc", "rr", "or_", "ir", "fetched", "nextpc", "flag",
                 "redirected", "retire", "d", "opc", "indent", "addrs")

    def clone(self) -> "_Path":
        q = _Path.__new__(_Path)
        q.cyc = self.cyc
        q.rr = self.rr.clone() if self.rr is not None else None
        q.or_ = self.or_.clone() if self.or_ is not None else None
        q.ir = self.ir.clone() if self.ir is not None else None
        q.fetched = self.fetched.clone() if self.fetched is not None else None
        q.nextpc = self.nextpc
        q.flag = self.flag
        q.redirected = self.redirected
        q.retire = self.retire
        q.d = dict(self.d)
        q.opc = dict(self.opc)
        q.indent = self.indent
        q.addrs = list(self.addrs)
        return q


class _Reject(Exception):
    """Trace rejected at compile time (too many leaves, etc.)."""


# ---- the trace compiler ----------------------------------------------------

#: latch positions and their head ordinals, oldest first (matches the
#: (rr, or_, ir) order the execution unit iterates everywhere)
_HEAD_ORDS = (-2, -1, 0)


class _TraceCompiler:
    """Abstractly interpret the EU from one head state; emit Python.

    The interpretation mirrors :meth:`repro.sim.eu.ExecutionUnit.tick`
    statement for statement over the *canonical* pre-decoded entries
    (deterministic across processes, unlike live icache content). Stats
    and batched ExecutionStats counters become per-path delta dicts;
    architectural effects become generated statements; a runtime flag
    test becomes an ``if f:`` fork duplicating the rest of the cycle.
    """

    def __init__(self, entries, head, sig, icache_size, allowed=None):
        self.entries = entries
        self.head = head
        self.sig = sig
        self.icache_size = icache_size
        #: when set, only these addresses may be fetched in-trace; a
        #: fetch outside the set becomes an exit leaf. Phase 1 explores
        #: unrestricted to find the loop; phase 2 restricts to the
        #: closure-path ("hot") addresses so runtime icache validation
        #: only covers lines that are actually resident in steady state.
        self.allowed = allowed
        self.hot: set[int] = set()  # addresses on some closure path
        self.lines: list[tuple[int, object]] = []
        self.leaves: list[dict] = []
        self.closures: list[dict] = []
        self.used: dict[int, int] = {}  # icache index -> trace address
        self.used_addrs: list[int] = []
        self.max_path = 0

    # -- bookkeeping helpers --

    def _w(self, path, text) -> None:
        self.lines.append((path.indent, text))

    def _bump(self, path, key, amount=1) -> None:
        d = path.d
        d[key] = d.get(key, 0) + amount

    def _opc(self, path, name) -> None:
        opc = path.opc
        opc[name] = opc.get(name, 0) + 1

    def _reserve(self, addr) -> bool:
        """Claim a direct-mapped icache index for ``addr``.

        Two trace addresses sharing an index would conflict-miss on the
        real machine, so the trace cannot span both.
        """
        index = (addr // PARCEL_BYTES) % self.icache_size
        previous = self.used.get(index)
        if previous is None:
            self.used[index] = addr
            self.used_addrs.append(addr)
            return True
        return previous == addr

    def _check_budget(self) -> None:
        if len(self.leaves) + len(self.closures) + 1 > MAX_LEAVES:
            raise _Reject

    def _fork(self, path, cont) -> None:
        """Emit ``if f:`` / ``else:``; run ``cont`` on each arm with the
        flag known. Every continuation terminates its arm with a
        ``continue`` (closure) or ``return`` (exit leaf)."""
        self._w(path, "if f:")
        true_arm = path.clone()
        true_arm.flag = True
        true_arm.indent += 1
        cont(true_arm)
        self._w(path, "else:")
        path.flag = False
        path.indent += 1
        cont(path)

    # -- leaves --

    def _latch_spec(self, slot):
        if slot is None or not slot.valid:
            return None  # an invalid slot is architecturally a bubble
        return (slot.addr, slot.ord, True, slot.chosen_taken, slot.resolved,
                slot.speculated, slot.governing, slot.other_pc)

    def _emit_exit(self, path) -> None:
        self._check_budget()
        idx = len(self.leaves)
        self.leaves.append({
            "idx": idx, "cyc": path.cyc, "d": path.d, "opc": path.opc,
            "nextpc": path.nextpc, "retire": path.retire,
            "latches": [self._latch_spec(slot)
                        for slot in (path.rr, path.or_, path.ir)],
        })
        if path.cyc:
            self._w(path, f"n += {path.cyc}")
        if path.retire is not None:
            self._w(path, f"r = {path.retire}")
        self._w(path, ("RET", idx))

    def _emit_closure(self, path) -> None:
        self._check_budget()
        self.hot.update(path.addrs)
        j = len(self.closures)
        self.closures.append({"cyc": path.cyc, "d": path.d, "opc": path.opc,
                              "retire": path.retire})
        self._w(path, f"n += {path.cyc}")
        if path.retire is not None:
            self._w(path, f"r = {path.retire}")
        self._w(path, f"c{j} += 1")
        self._w(path, "continue")

    def _matches_head(self, path) -> bool:
        for slot, want in zip((path.rr, path.or_, path.ir), self.sig):
            if slot is None or not slot.valid:
                if want is not None:
                    return False
                continue
            if not slot.resolved:
                return False  # an interlock is live: not the head state
            if want is None or (slot.addr, slot.chosen_taken) != want:
                return False
        return True

    # -- one abstract cycle (mirrors ExecutionUnit.tick) --

    def _cycle(self, path) -> None:
        if path.cyc > 0 and path.nextpc == self.head \
                and self._matches_head(path):
            self._emit_closure(path)
            return
        if path.cyc >= MAX_PATH_CYCLES:
            self._emit_exit(path)
            return
        addr = path.nextpc
        entry = self.entries.get(addr)
        if entry is None or not _admissible(entry) \
                or (self.allowed is not None and addr not in self.allowed) \
                or not self._reserve(addr):
            self._emit_exit(path)
            return
        path.addrs.append(addr)
        path.fetched = _Slot(addr, path.cyc + 1)
        path.redirected = False
        retiring = path.rr
        if retiring is None or not retiring.valid:
            self._bump(path, "stall")
            self._latch(path)
        else:
            self._exec_rr(path)

    def _exec_rr(self, path) -> None:
        slot = path.rr
        entry = self.entries[slot.addr]
        self._bump(path, "issued")
        path.retire = entry.sequential
        body = entry.body
        if body is not None:
            self._emit_body(path, body)
            self._bump(path, "exec")
            self._bump(path, "xi")
            self._opc(path, entry._body_name)
            # entry.halts is inadmissible, so the halt path never appears
        if entry.sets_cc:
            has_dependent = any(
                s is not None and s.valid and not s.resolved
                and s.governing == slot.ord
                for s in (path.rr, path.or_, path.ir, path.fetched))
            if has_dependent:
                # the compare just computed the flag: fork on it, resolve
                # every governed branch inside each arm
                self._fork(path, self._resolve_then_branch)
                return
        self._branch_part(path)

    def _resolve_then_branch(self, path) -> None:
        self._resolve_dependents(path)
        self._branch_part(path)

    def _resolve_dependents(self, path) -> None:
        cmp_slot = path.rr
        flag = path.flag
        for slot in (path.rr, path.or_, path.ir, path.fetched):
            if slot is None or not slot.valid or slot.resolved:
                continue
            if slot.governing != cmp_slot.ord:
                continue
            entry = self.entries[slot.addr]
            correct = entry.taken_when(flag)
            slot.resolved = True
            if slot.chosen_taken == correct:
                continue  # shadow records never occur in traces
            if slot is path.fetched:
                penalty = 1
            elif slot is path.rr:
                penalty = 3
            elif slot is path.or_:
                penalty = 2
            else:
                penalty = 1
            self._bump(path, "mis")
            self._bump(path, "pen", penalty)
            slot.chosen_taken = correct
            self._squash_younger(path, slot)
            assert slot.other_pc is not None
            path.nextpc = slot.other_pc
            path.redirected = True

    def _squash_younger(self, path, slot) -> None:
        seen = False
        for candidate in (path.rr, path.or_, path.ir, path.fetched):
            if candidate is slot:
                seen = True
                continue
            if seen and candidate is not None and candidate.valid:
                candidate.valid = False
                self._bump(path, "squash")

    def _branch_part(self, path) -> None:
        slot = path.rr
        entry = self.entries[slot.addr]
        if entry.branch is None:
            self._latch(path)
            return
        if entry.is_folded:
            self._bump(path, "folded")
        self._bump(path, "exec")
        cls = entry.branch.op_class
        # RETURN and dynamic targets are inadmissible; never reached here
        if cls is OpClass.CALL:
            self._w(path, f"sp = (sp - 4) & {_MASK}")
            self._w(path, f"ww(sp, {entry.sequential})")
            path.retire = entry.next_pc
            self._record_branch(path, entry, True)
            self._latch(path)
            return
        if not entry.uses_cc:
            path.retire = entry.next_pc
            self._record_branch(path, entry, True)
            self._latch(path)
            return
        if not slot.resolved:
            # unfolded conditional resolving at its own RR: full 3 cycles
            if path.flag is None:
                self._fork(path, self._resolve_at_rr)
                return
            self._resolve_at_rr(path)
            return
        self._finish_conditional(path)

    def _resolve_at_rr(self, path) -> None:
        slot = path.rr
        entry = self.entries[slot.addr]
        correct = entry.taken_when(path.flag)
        slot.resolved = True
        if slot.chosen_taken != correct:
            self._bump(path, "mis")
            self._bump(path, "pen", 3)
            slot.chosen_taken = correct
            self._squash_younger(path, slot)
            assert slot.other_pc is not None
            path.nextpc = slot.other_pc
            path.redirected = True
        self._finish_conditional(path)

    def _finish_conditional(self, path) -> None:
        slot = path.rr
        entry = self.entries[slot.addr]
        taken_pc = entry.next_pc if entry._predicted_taken else entry.alt_pc
        path.retire = taken_pc if slot.chosen_taken else entry.sequential
        self._record_branch(path, entry, bool(slot.chosen_taken))
        self._latch(path)

    def _record_branch(self, path, entry, taken) -> None:
        self._opc(path, entry._branch_name)
        self._bump(path, "xi")
        self._bump(path, "xb")
        if entry._branch_one_parcel:
            self._bump(path, "x1")
        if entry.uses_cc:
            self._bump(path, "xc")
            # predictor training only exists under dynamic_fold configs,
            # which never trace
        if taken:
            self._bump(path, "xt")

    def _latch(self, path) -> None:
        path.rr, path.or_, path.ir, path.fetched = (
            path.or_, path.ir, path.fetched, None)
        latched = path.ir
        if latched is not None and latched.valid:
            self._select_path(path)
        else:
            self._end_cycle(path)

    def _select_path(self, path) -> None:
        slot = path.ir
        entry = self.entries[slot.addr]
        if path.redirected:
            self._end_cycle(path)
            return
        # dynamic targets are inadmissible; never latched
        if not entry.uses_cc:
            path.nextpc = entry.next_pc
            self._end_cycle(path)
            return
        outstanding = entry.folds_compare_and_branch
        if not outstanding:
            older = path.or_
            if older is not None and older.valid \
                    and self.entries[older.addr].sets_cc:
                outstanding = True
            else:
                older = path.rr
                outstanding = (older is not None and older.valid
                               and self.entries[older.addr].sets_cc)
        if not outstanding:
            # flag is architectural: the branch resolves at fetch time
            if path.flag is None:
                self._fork(path, self._select_resolved)
                return
            self._select_resolved(path)
            return
        self._bump(path, "lock")
        slot.chosen_taken = entry._predicted_taken
        slot.resolved = False
        slot.speculated = True
        # dynamic-fold steering never happens in traces (dyn is None)
        if entry.is_folded:
            if entry.folds_compare_and_branch:
                governing = slot
            else:
                governing = path.or_
                if not (governing is not None and governing.valid
                        and self.entries[governing.addr].sets_cc):
                    governing = path.rr
            slot.governing = governing.ord
        slot.other_pc = entry.alt_pc
        path.nextpc = entry.next_pc
        self._end_cycle(path)

    def _select_resolved(self, path) -> None:
        slot = path.ir
        entry = self.entries[slot.addr]
        predicted = entry._predicted_taken
        taken_pc = entry.next_pc if predicted else entry.alt_pc
        fall_pc = entry.alt_pc if predicted else entry.next_pc
        actual = entry.taken_when(path.flag)
        if actual != predicted:
            self._bump(path, "zco")
        slot.chosen_taken = actual
        slot.resolved = True
        slot.other_pc = fall_pc if actual else taken_pc
        path.nextpc = taken_pc if actual else fall_pc
        self._end_cycle(path)

    def _end_cycle(self, path) -> None:
        path.cyc += 1
        if path.cyc > self.max_path:
            self.max_path = path.cyc
        self._cycle(path)

    # -- body emission --

    def _emit_body(self, path, instruction) -> None:
        cls = instruction.op_class
        operands = instruction.operands
        if cls is OpClass.ALU2:
            dst, src = operands
            template = _alu_template(instruction.opcode)
            self._w(path, _write_stmt(
                dst, template(_read_expr(dst), _read_expr(src))))
        elif cls is OpClass.ALU3:
            template = _alu_template(instruction.opcode)
            expr = template(_read_expr(operands[0]), _read_expr(operands[1]))
            self._w(path, f"a = ({expr}) & {_MASK}")
        elif cls is OpClass.CMP:
            template = _CMP_TEMPLATES[opcode_condition(instruction.opcode)]
            self._w(path, "f = " + template(
                _read_expr(operands[0]), _read_expr(operands[1])))
            path.flag = None  # data-dependent: unknown until forked on
        elif instruction.opcode is Opcode.ENTER:
            self._w(path, f"sp = (sp - {operands[0].value}) & {_MASK}")
        elif instruction.opcode is Opcode.SPADD:
            self._w(path, f"sp = (sp + {operands[0].value}) & {_MASK}")
        # NOP emits nothing; HALT/branches are inadmissible as bodies

    # -- entry point --

    def compile(self):
        """Return ``(source, meta)`` for a worthwhile trace, else None."""
        slots = []
        for item, ordinal in zip(self.sig, _HEAD_ORDS):
            if item is None:
                slots.append(None)
                continue
            addr, chosen_taken = item
            entry = self.entries.get(addr)
            if entry is None or not _admissible(entry):
                return None
            slots.append(_Slot(addr, ordinal, chosen_taken=chosen_taken))
        # leaf 0: the cycle-budget exit at the loop head — zero deltas,
        # the head state itself
        self.leaves.append({
            "idx": 0, "cyc": 0, "d": {}, "opc": {},
            "nextpc": self.head, "retire": None,
            "latches": [None if item is None
                        else (item[0], ordinal, True, item[1], True,
                              False, None, None)
                        for item, ordinal in zip(self.sig, _HEAD_ORDS)],
        })
        root = _Path.__new__(_Path)
        root.cyc = 0
        root.rr, root.or_, root.ir = slots
        root.fetched = None
        root.nextpc = self.head
        root.flag = None
        root.redirected = False
        root.retire = None
        root.d = {}
        root.opc = {}
        root.indent = 2
        root.addrs = []
        depth = sys.getrecursionlimit()
        sys.setrecursionlimit(max(depth, 10000))
        try:
            self._cycle(root)
        except _Reject:
            return None
        finally:
            sys.setrecursionlimit(depth)
        if not self.closures:
            return None  # no loop: per-cycle execution is just as good
        meta = {"max_path": self.max_path, "used": self.used_addrs,
                "leaves": self.leaves, "closures": self.closures}
        return self._render(), meta

    def _render(self) -> str:
        count = len(self.closures)
        names = ", ".join(f"c{j}" for j in range(count))
        counters = f"({names},)" if count == 1 else f"({names})"
        out = ["def __trace(a, sp, f, rw, ww, limit):",
               "    n = 0",
               "    r = -1"]
        out.extend(f"    c{j} = 0" for j in range(count))
        out.append("    while True:")
        out.append("        if n > limit:")
        out.append(f"            return 0, n, a, sp, f, r, {counters}")
        for indent, text in self.lines:
            pad = "    " * indent
            if isinstance(text, tuple):
                out.append(f"{pad}return {text[1]}, n, a, sp, f, r, "
                           f"{counters}")
            else:
                out.append(pad + text)
        return "\n".join(out) + "\n"


def _compile_trace(entries, head, sig, icache_size):
    """Two-phase trace compilation: explore, then restrict to the loop.

    Phase 1 explores every data-dependent fork, so its address set
    includes cold side paths (loop exits) that are never icache-resident
    in steady state — a trace validated against that set would never
    run. Phase 2 recompiles admitting only the addresses that lie on
    some loop-closure path; any fetch off the loop becomes an immediate
    exit leaf, and runtime validation covers exactly the hot lines.
    """
    explorer = _TraceCompiler(entries, head, sig, icache_size)
    unrestricted = explorer.compile()
    if unrestricted is None:
        return None
    if explorer.hot == set(explorer.used_addrs):
        return unrestricted
    restricted = _TraceCompiler(entries, head, sig, icache_size,
                                allowed=explorer.hot).compile()
    # phase 2 cannot lose the closures (their paths fetch only hot
    # addresses), but fall back defensively if it somehow rejects
    return restricted if restricted is not None else unrestricted


# ---- compiled-trace runtime ------------------------------------------------


class _Leaf:
    __slots__ = ("cyc", "d", "opc", "nextpc", "retire", "latches")


class _Closure:
    __slots__ = ("cyc", "d", "opc")


class _CompiledTrace:
    __slots__ = ("fn", "max_path", "used", "leaves", "closures", "gen_ok")


#: process-wide code-object cache (code objects cannot pickle, so the
#: disk tier stores source + metadata and each process compiles once)
_COMPILED: dict[str, _CompiledTrace | None] = {}


def clear_compiled_traces() -> None:
    """Drop the process-wide compiled-trace cache (tests)."""
    _COMPILED.clear()


def _materialize(payload) -> _CompiledTrace | None:
    if payload is None:
        return None
    try:
        source, meta = payload
        namespace: dict = {}
        exec(compile(source, "<blockspec>", "exec"), namespace)
        trace = _CompiledTrace()
        trace.fn = namespace["__trace"]
        trace.max_path = meta["max_path"]
        trace.used = tuple(meta["used"])
        leaves = []
        for spec in meta["leaves"]:
            leaf = _Leaf()
            leaf.cyc = spec["cyc"]
            leaf.d = spec["d"]
            leaf.opc = spec["opc"]
            leaf.nextpc = spec["nextpc"]
            leaf.retire = spec["retire"]
            leaf.latches = [None if item is None else tuple(item)
                            for item in spec["latches"]]
            leaves.append(leaf)
        trace.leaves = leaves
        closures = []
        for spec in meta["closures"]:
            closure = _Closure()
            closure.cyc = spec["cyc"]
            closure.d = spec["d"]
            closure.opc = spec["opc"]
            closures.append(closure)
        trace.closures = closures
        trace.gen_ok = -1
        return trace
    except Exception:
        # a digest-valid but semantically foreign payload (format drift
        # without a VERSION bump): fall back to per-cycle execution
        return None


_UNSET = object()


class BlockSpecEngine:
    """Per-CPU trace cache and steady-state entry/exit logic."""

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self.eu = cpu.eu
        policy = cpu.config.fold_policy
        self.entries = {entry.address: entry
                        for entry in predecode_cached(cpu.program, policy)}
        self.heat: dict[int, int] = {}  # head address -> count (-1 = dead)
        self.traces: dict = {}  # (head, sig) -> _CompiledTrace | None
        self.head_variants: dict[int, int] = {}
        self.head_live: dict[int, bool] = {}
        self._cache = default_cache()
        image = cpu.program.parcel_image()
        self._image_part = ",".join(
            f"{addr:x}:{parcel:x}" for addr, parcel in sorted(image.items()))
        self._policy_part = policy_key(policy)
        self._icache = cpu.icache
        self._icache_size = cpu.icache.size

    # -- steady-state detection --

    def _signature(self):
        """Normalized latch state, or None when untraceable.

        Invalid slots are conflated with empty latches (architecturally
        both are bubbles); unresolved slots (live CC interlocks) and
        shadow records (dynamic folds) make the state untraceable.
        """
        sig = []
        for slot in (self.eu.rr, self.eu.or_, self.eu.ir):
            if slot is None or not slot.valid:
                sig.append(None)
                continue
            if not slot.resolved or slot.shadow is not None:
                return None
            sig.append((slot.entry.address, slot.chosen_taken))
        return tuple(sig)

    def try_trace(self, remaining: int) -> int:
        """Run one compiled trace if the machine is in a steady state.

        Returns the number of cycles consumed (0 = stay on the
        per-cycle path). ``remaining`` is the watchdog budget left; the
        trace is bounded so it can never overrun it.
        """
        eu = self.eu
        addr = eu.ir_next_pc
        if addr is None:
            return 0
        cpu = self.cpu
        if cpu._miss_address is not None \
                or cpu._pending_interrupt is not None:
            return 0
        pdu = cpu.pdu
        if pdu.fetch_countdown or pdu.inflight:
            return 0
        if pdu.decode_pc is not None \
                and pdu.entries_ahead < pdu.prefetch_depth:
            return 0
        if eu._obs_sinks:
            return 0  # per-event site attribution needs per-cycle probes
        heat = self.heat
        count = heat.get(addr, 0)
        if count < HOT_THRESHOLD:
            if count >= 0:
                heat[addr] = count + 1
            return 0
        sig = self._signature()
        if sig is None:
            return 0
        key = (addr, sig)
        trace = self.traces.get(key, _UNSET)
        if trace is _UNSET:
            variants = self.head_variants.get(addr, 0)
            if variants >= MAX_VARIANTS:
                return 0
            self.head_variants[addr] = variants + 1
            trace = self._get_trace(addr, sig)
            self.traces[key] = trace
            if trace is not None:
                self.head_live[addr] = True
            elif (self.head_variants[addr] >= MAX_VARIANTS
                  and not self.head_live.get(addr)):
                heat[addr] = -1  # hopeless head: stop probing it
        if trace is None:
            return 0
        if remaining <= trace.max_path:
            return 0  # too close to the watchdog budget: deoptimize
        entries = self.entries
        for slot in (eu.rr, eu.or_, eu.ir):
            if slot is None or not slot.valid:
                continue
            live = slot.entry
            canon = entries.get(live.address)
            if canon is None or (live is not canon and live != canon):
                return 0  # latch holds a stale (self-modified) decode
        if not self._validate(trace):
            return 0
        return self._run(trace, remaining)

    def _validate(self, trace) -> bool:
        """Every trace address must be resident in the live icache with
        a decode value-equal to the canonical one (generation-cached)."""
        icache = self._icache
        generation = icache.generation
        if trace.gen_ok == generation:
            return True
        lines = icache._lines
        size = self._icache_size
        entries = self.entries
        for addr in trace.used:
            line = lines[(addr // PARCEL_BYTES) % size]
            if line is None or line.address != addr:
                return False
            canon = entries[addr]
            if line is not canon and line != canon:
                return False
        trace.gen_ok = generation
        return True

    # -- compile / cache --

    def _get_trace(self, addr, sig):
        key = cache_key("blockspec", VERSION, self._image_part,
                        self._policy_part, f"{addr:x}", repr(sig))
        cached = _COMPILED.get(key, _UNSET)
        if cached is not _UNSET:
            return cached
        cache = self._cache

        def build():
            result = _compile_trace(self.entries, addr, sig,
                                    self._icache_size)
            if result is not None:
                cache.blocks_compiled += 1
                cache.generated_bytes += len(result[0])
            return result

        trace = _materialize(cache.get_or_build(key, build))
        _COMPILED[key] = trace
        return trace

    # -- trace execution --

    def _run(self, trace, remaining: int) -> int:
        cpu = self.cpu
        eu = self.eu
        state = cpu.state
        memory = state.memory
        # the generated loop re-checks at each head visit and an
        # iteration adds at most max_path cycles, so n never exceeds
        # limit + max_path = remaining: the watchdog stays exact
        limit = remaining - trace.max_path
        idx, n, a, sp, f, r, counters = trace.fn(
            state.accum, state.sp, state.flag,
            memory.read_word, memory.write_word, limit)
        leaf = trace.leaves[idx]
        d = dict(leaf.d)
        opc = dict(leaf.opc)
        closures = trace.closures
        for j, count in enumerate(counters):
            if not count:
                continue
            closure = closures[j]
            for key, value in closure.d.items():
                d[key] = d.get(key, 0) + value * count
            for key, value in closure.opc.items():
                opc[key] = opc.get(key, 0) + value * count
        state.accum = a
        state.sp = sp
        state.flag = f
        stats = cpu.stats
        stats.cycles += n
        stats.icache_hits += n
        cpu.icache.hits += n
        get = d.get
        stats.issued_instructions += get("issued", 0)
        stats.executed_instructions += get("exec", 0)
        folded = get("folded", 0)
        stats.folded_branches += folded
        mispredicts = get("mis", 0)
        penalty = get("pen", 0)
        stats.mispredictions += mispredicts
        stats.misprediction_penalty_cycles += penalty
        overrides = get("zco", 0)
        stats.zero_cost_overrides += overrides
        stats.stall_cycles += get("stall", 0)
        squashes = get("squash", 0)
        stats.squashed_slots += squashes
        eu._x_instructions += get("xi", 0)
        branches = get("xb", 0)
        eu._x_branches += branches
        eu._x_conditional += get("xc", 0)
        eu._x_taken += get("xt", 0)
        eu._x_one_parcel += get("x1", 0)
        counts = eu._x_opcode_counts
        for name, value in opc.items():
            counts[name] = counts.get(name, 0) + value
        if eu._obs_on:
            # sink-less probes are plain counters: batch the bumps
            cpu._p_demand_hit.add(n)
            if branches:
                eu._p_branch.add(branches)
            if folded:
                eu._p_folded.add(folded)
            if mispredicts:
                eu._p_mispredict.add(mispredicts)
            if penalty:
                eu._p_penalty.add(penalty)
            if squashes:
                eu._p_squash.add(squashes)
            if overrides:
                eu._p_override.add(overrides)
            interlocks = get("lock", 0)
            if interlocks:
                eu._p_interlock.add(interlocks)
        eu._seq += n  # every trace cycle fetches exactly one entry
        seq_after = eu._seq
        if leaf.retire is not None:
            eu.retire_next_pc = leaf.retire
        elif r != -1:
            eu.retire_next_pc = r
        eu.ir_next_pc = leaf.nextpc
        eu._redirected = False
        originals = {0: eu.ir, -1: eu.or_, -2: eu.rr}
        # on a first-iteration exit the head latches are the original
        # runtime slots (possibly with non-consecutive seqs from fetch
        # bubbles before the trace); they are never mutated in-trace
        # (head slots are resolved and older than everything fetched),
        # so reuse the objects as-is
        first = n == leaf.cyc
        cycles = leaf.cyc
        pool = eu._slot_pool
        entries = self.entries
        new_slots = []
        reused = set()
        for spec in leaf.latches:
            if spec is None:
                new_slots.append(None)
                continue
            addr, ordinal, _valid, chosen_taken, resolved, speculated, \
                governing, other_pc = spec
            if first and ordinal <= 0:
                reused.add(ordinal)
                new_slots.append(originals[ordinal])
                continue
            seq = seq_after - (cycles - ordinal)
            if governing is None:
                governing_seq = None
            elif first and governing <= 0:
                governing_seq = originals[governing].seq
            else:
                governing_seq = seq_after - (cycles - governing)
            entry = entries[addr]
            if pool:
                slot = pool.pop()
                slot.entry = entry
                slot.seq = seq
                slot.valid = True
                slot.chosen_taken = chosen_taken
                slot.other_pc = other_pc
                slot.governing_seq = governing_seq
                slot.resolved = resolved
                slot.speculated = speculated
                slot.shadow = None
            else:
                slot = StageSlot(entry, seq, True, chosen_taken, other_pc,
                                 governing_seq, resolved, speculated, None)
            new_slots.append(slot)
        eu.rr, eu.or_, eu.ir = new_slots
        for ordinal, slot in originals.items():
            if slot is not None and ordinal not in reused:
                pool.append(slot)
        return n
