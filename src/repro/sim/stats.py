"""Execution statistics collected by the simulators.

:class:`ExecutionStats` counts architectural events (what Table 2 reports);
:class:`PipelineStats` adds the cycle-level quantities of Table 4:
instructions *issued* by the EU pipeline versus instructions *executed*
when the machine is viewed as a black box — branch folding makes these
differ, which is the paper's headline effect.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class ExecutionStats:
    """Architectural event counts for one program run."""

    instructions: int = 0
    opcode_counts: Counter = field(default_factory=Counter)
    branches: int = 0
    conditional_branches: int = 0
    taken_branches: int = 0
    one_parcel_branches: int = 0

    def record(self, opcode_name: str, *, is_branch: bool,
               is_conditional: bool, taken: bool,
               one_parcel: bool) -> None:
        """Record one executed instruction."""
        self.instructions += 1
        self.opcode_counts[opcode_name] += 1
        if is_branch:
            self.branches += 1
            if one_parcel:
                self.one_parcel_branches += 1
            if is_conditional:
                self.conditional_branches += 1
            if taken:
                self.taken_branches += 1

    @property
    def branch_fraction(self) -> float:
        """Dynamic fraction of instructions that are branches."""
        return self.branches / self.instructions if self.instructions else 0.0

    @property
    def one_parcel_branch_fraction(self) -> float:
        """Fraction of executed branches using the one-parcel format
        (the paper reports ~95%)."""
        return (self.one_parcel_branches / self.branches
                if self.branches else 0.0)

    def table(self) -> list[tuple[str, int, float]]:
        """Opcode histogram rows: (opcode, count, percent) — Table 2's shape."""
        total = self.instructions or 1
        return [(name, count, 100.0 * count / total)
                for name, count in self.opcode_counts.most_common()]

    def as_dict(self) -> dict:
        """JSON-ready view (opcode histogram included)."""
        return {
            "instructions": self.instructions,
            "branches": self.branches,
            "conditional_branches": self.conditional_branches,
            "taken_branches": self.taken_branches,
            "one_parcel_branches": self.one_parcel_branches,
            "branch_fraction": self.branch_fraction,
            "one_parcel_branch_fraction": self.one_parcel_branch_fraction,
            "opcode_counts": dict(self.opcode_counts),
        }


@dataclass
class PipelineStats:
    """Cycle-level statistics for one run of the cycle-accurate CPU."""

    cycles: int = 0
    issued_instructions: int = 0  #: EU pipeline slots that did real work
    executed_instructions: int = 0  #: black-box count (folded branches add 1)
    folded_branches: int = 0  #: branches that never occupied an EU slot
    mispredictions: int = 0
    misprediction_penalty_cycles: int = 0
    zero_cost_overrides: int = 0  #: wrong prediction bit but CC known: free
    dynamic_folds: int = 0  #: conditional folds taken on dynamic confidence
    folded_mispredicts: int = 0  #: dynamic folds whose verification failed
    recovery_flush_cycles: int = 0  #: bubble cycles spent on those flushes
    icache_misses: int = 0
    icache_hits: int = 0
    stall_cycles: int = 0
    squashed_slots: int = 0
    execution: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def issued_cpi(self) -> float:
        """Cycles per *issued* instruction (the paper's 1.01 in case D)."""
        return (self.cycles / self.issued_instructions
                if self.issued_instructions else 0.0)

    @property
    def apparent_cpi(self) -> float:
        """Cycles per instruction as seen from outside — folded branches
        count as executed instructions (the paper's 0.74 in case D)."""
        return (self.cycles / self.executed_instructions
                if self.executed_instructions else 0.0)

    @property
    def apparent_ipc(self) -> float:
        """Black-box instructions per cycle (>1 means branches fold away)."""
        return (self.executed_instructions / self.cycles
                if self.cycles else 0.0)

    @property
    def icache_hit_rate(self) -> float:
        total = self.icache_hits + self.icache_misses
        return self.icache_hits / total if total else 0.0

    def breakdown(self) -> dict[str, float]:
        """Where the cycles went, as fractions summing to exactly 1.0.

        ``issue`` is useful work; ``penalty`` the misprediction recovery
        bubbles; ``other_stall`` everything else the RR stage sat idle
        for (cache misses, fetch stalls behind dynamic targets);
        ``residual`` is whatever the first three fail to attribute.
        Charged penalty cycles can exceed the observed stall cycles (a
        recovery bubble may be refilled early by a cache hit on the
        corrected path), so ``penalty`` is capped at the stalls actually
        seen and the unattributed remainder is reported explicitly rather
        than letting the buckets drift away from 1.0.
        """
        total = self.cycles or 1
        penalty = min(self.misprediction_penalty_cycles, self.stall_cycles)
        other = self.stall_cycles - penalty
        residual = max(
            0, self.cycles - self.issued_instructions - self.stall_cycles)
        return {
            "issue": self.issued_instructions / total,
            "penalty": penalty / total,
            "other_stall": other / total,
            "residual": residual / total,
        }

    def as_dict(self) -> dict:
        """JSON-ready view of every counter and derived metric — the
        metrics block of an :mod:`repro.obs.manifest` document."""
        return {
            "cycles": self.cycles,
            "issued_instructions": self.issued_instructions,
            "executed_instructions": self.executed_instructions,
            "folded_branches": self.folded_branches,
            "mispredictions": self.mispredictions,
            "misprediction_penalty_cycles":
                self.misprediction_penalty_cycles,
            "zero_cost_overrides": self.zero_cost_overrides,
            "dynamic_folds": self.dynamic_folds,
            "folded_mispredicts": self.folded_mispredicts,
            "recovery_flush_cycles": self.recovery_flush_cycles,
            "icache_misses": self.icache_misses,
            "icache_hits": self.icache_hits,
            "icache_hit_rate": self.icache_hit_rate,
            "stall_cycles": self.stall_cycles,
            "squashed_slots": self.squashed_slots,
            "issued_cpi": self.issued_cpi,
            "apparent_cpi": self.apparent_cpi,
            "apparent_ipc": self.apparent_ipc,
            "breakdown": self.breakdown(),
            "execution": self.execution.as_dict(),
        }

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.cycles} cycles, {self.issued_instructions} issued, "
            f"{self.executed_instructions} executed "
            f"({self.folded_branches} folded branches); "
            f"issued CPI {self.issued_cpi:.2f}, "
            f"apparent CPI {self.apparent_cpi:.2f}; "
            f"{self.mispredictions} mispredictions costing "
            f"{self.misprediction_penalty_cycles} cycles; "
            f"icache hit rate {self.icache_hit_rate:.3f}"
        )
