"""The three-stage Execution Unit (IR → OR → RR).

Control flow is driven entirely by the ``IR.Next-PC`` register, loaded from
the Next-PC field of each entry read from the Decoded Instruction Cache.
Conditional entries carry their Alternate Next-PC down the pipeline; when
a compare resolves the flag at its RR stage, any in-flight branch that
chose the wrong path is recovered by squashing the younger stages (valid
bits — the side-effect-free ISA makes any instruction a no-op that way)
and re-introducing the Alternate-PC. The recovery cost is exactly the
paper's: 3 cycles when the compare was folded with the branch itself,
2 / 1 when the compare ran one / two entries ahead of a folded branch, and
**0** when the compare left the pipeline before the branch was fetched —
in that last case the prediction bit is overridden at fetch time for
free, the situation Branch Spreading engineers.

A conditional branch that was *not* folded resolves either at fetch time
(flag already architectural: zero cost) or at its own RR stage (3
cycles). The paper describes the early per-stage recovery only for folded
branches, and Table 4's cases A/B arithmetic (1023 and 512 mispredictions
at exactly 3 cycles each) confirms unfolded branches do not get the
OR/IR-stage shortcut.

Architectural effects are applied atomically at RR via
:mod:`repro.sim.semantics` — legitimate because the pipeline is in-order
with full bypassing and wrong-path entries never reach a result write.

Fast-path engineering (see ``docs/pipeline.md`` for the invariants): the
steady-state loop is allocation-free — stage latches are recycled through
a small pool rather than constructed per fetch, entry control bits are
plain attributes precomputed at decode time, instruction bodies dispatch
through :data:`~repro.sim.semantics.BODY_EXECUTORS`, probe updates are
skipped entirely on a disabled bus, and the per-instruction architectural
counters are batched locally and flushed into
:class:`~repro.sim.stats.ExecutionStats` when the run ends.
``tests/test_sim_fastpath.py`` proves all of this invisible against the
retained pre-optimization kernel in :mod:`repro.sim.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decoded import DecodedEntry
from repro.isa.instructions import resolve_target
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.parcels import to_u32
from repro.obs.events import EventBus, NULL_BUS
from repro.sim.dynfold import DynamicFoldUnit, ShadowRecord
from repro.sim.semantics import BODY_EXECUTORS, MachineState
from repro.sim.stats import PipelineStats

_PENALTY_BY_STAGE = {"RR": 3, "OR": 2, "IR": 1}


@dataclass(slots=True)
class StageSlot:
    """One pipeline stage latch: a decoded entry plus recovery state."""

    entry: DecodedEntry
    seq: int  #: issue order, used to match branches to their compare
    valid: bool = True
    chosen_taken: bool | None = None  #: selected branch direction at fetch
    other_pc: int | None = None  #: the not-chosen path (Alternate-PC)
    governing_seq: int | None = None  #: seq of the compare this branch awaits
    resolved: bool = True  #: False while the branch direction is speculative
    speculated: bool = False  #: True if fetch had to trust the prediction bit
    shadow: ShadowRecord | None = None  #: set when dynamically folded


class ExecutionUnit:
    """Cycle-level model of the CRISP execution pipeline."""

    def __init__(self, state: MachineState, stats: PipelineStats,
                 obs: EventBus = NULL_BUS, *,
                 dyn: DynamicFoldUnit | None = None,
                 inject: str | None = None) -> None:
        self.state = state
        self.stats = stats
        self.obs = obs
        #: dynamic-fold unit, shared with the PDU (None unless the fold
        #: policy enables dynamic_fold)
        self._dyn = dyn
        #: fault injection: "always-wrong" forces a full flush/recovery
        #: on every dynamic fold, even verified-correct ones
        self._inject_wrong = inject == "always-wrong"
        #: probes fire only on an enabled bus; a disabled bus's probes are
        #: shared no-ops, so skipping the calls (and their keyword-dict
        #: construction) is behaviourally identical and free. On an
        #: *enabled* bus the second tier (`_obs_sinks`, the bus's live
        #: sink list) gates per-event field formatting: with no sink
        #: listening a probe update is a plain counter bump.
        self._obs_on = obs.enabled
        self._obs_sinks = obs.sinks_ref()
        self._p_branch = obs.counter("branch.executed")
        self._p_folded = obs.counter("fold.succeeded")
        self._p_mispredict = obs.counter("mispredict.count")
        self._p_penalty = obs.counter("mispredict.penalty_cycles")
        self._p_squash = obs.counter("squash.slots")
        self._p_override = obs.counter("zero_cost.overrides")
        self._p_interlock = obs.counter("cc.interlock")
        self._p_interrupt = obs.counter("eu.interrupts")
        self._p_dynfold = obs.counter("fold.dynamic")
        self._p_verify_fail = obs.counter("fold.verify_fail")
        self._p_recovery = obs.counter("recovery.flush_cycles")
        self.ir: StageSlot | None = None
        self.or_: StageSlot | None = None
        self.rr: StageSlot | None = None
        self.ir_next_pc: int | None = state.pc
        self.halted = False
        self._seq = 0
        self._redirected = False
        #: PC of the next architecturally-unexecuted instruction — the
        #: precise resume point for interrupts (the paper carries per-
        #: stage PCs exactly to identify this instruction)
        self.retire_next_pc: int = state.pc
        #: retired latches waiting for reuse (a fetch pulls from here
        #: instead of allocating)
        self._slot_pool: list[StageSlot] = []
        # batched ExecutionStats counters, folded into ``stats.execution``
        # by :meth:`flush_execution` (on halt / interrupt / run end)
        self._x_instructions = 0
        self._x_branches = 0
        self._x_conditional = 0
        self._x_taken = 0
        self._x_one_parcel = 0
        self._x_opcode_counts: dict[str, int] = {}

    # ---- helpers -----------------------------------------------------------

    def _stage_of(self, slot: StageSlot) -> str:
        if slot is self.rr:
            return "RR"
        if slot is self.or_:
            return "OR"
        return "IR"

    def _squash_younger(self, slot: StageSlot,
                        fetched: StageSlot | None) -> None:
        """Clear the valid bits of every stage younger than ``slot``."""
        seen = False
        obs_on = self._obs_on  # one guard read, not one per stage
        for candidate in (self.rr, self.or_, self.ir, fetched):
            if candidate is slot:
                seen = True
                continue
            if seen and candidate is not None and candidate.valid:
                candidate.valid = False
                self.stats.squashed_slots += 1
                if obs_on:
                    self._p_squash.add()

    def flush_execution(self) -> None:
        """Fold the batched architectural counters into ``stats.execution``.

        Idempotent; called automatically when the machine halts, when an
        interrupt is delivered, and by :meth:`repro.sim.cpu.CrispCpu.run`
        on exit. Every in-repo consumer reads ``stats.execution`` after
        one of those points, so the batch is never observed part-filled.
        """
        if not self._x_instructions:
            return
        execution = self.stats.execution
        execution.instructions += self._x_instructions
        execution.branches += self._x_branches
        execution.conditional_branches += self._x_conditional
        execution.taken_branches += self._x_taken
        execution.one_parcel_branches += self._x_one_parcel
        execution.opcode_counts.update(self._x_opcode_counts)
        self._x_instructions = 0
        self._x_branches = 0
        self._x_conditional = 0
        self._x_taken = 0
        self._x_one_parcel = 0
        self._x_opcode_counts = {}

    # ---- the clock ----------------------------------------------------------

    def tick(self, fetched_entry: DecodedEntry | None) -> None:
        """Advance one cycle: execute RR, resolve branches, latch stages.

        ``fetched_entry`` is the cache read performed this cycle at the
        (pre-redirect) ``ir_next_pc`` — None on a miss or fetch stall.
        """
        fetched = None
        if fetched_entry is not None:
            self._seq += 1
            pool = self._slot_pool
            if pool:
                fetched = pool.pop()
                fetched.entry = fetched_entry
                fetched.seq = self._seq
                fetched.valid = True
                fetched.chosen_taken = None
                fetched.other_pc = None
                fetched.governing_seq = None
                fetched.resolved = True
                fetched.speculated = False
                fetched.shadow = None
            else:
                fetched = StageSlot(fetched_entry, self._seq)

        self._redirected = False
        retiring = self.rr
        if retiring is None or not retiring.valid:
            self.stats.stall_cycles += 1  # this cycle's RR does no work
        else:
            self._execute_rr(fetched)

        # end-of-cycle latch update; the retiring RR slot returns to the
        # pool (nothing references it once it leaves the stage register)
        self.rr, self.or_, self.ir = self.or_, self.ir, fetched
        if retiring is not None:
            self._slot_pool.append(retiring)
        latched = self.ir
        if latched is not None and latched.valid:
            self._select_path(latched)

    # ---- RR stage ------------------------------------------------------------

    def _execute_rr(self, fetched: StageSlot | None) -> None:
        slot = self.rr
        entry = slot.entry
        stats = self.stats

        stats.issued_instructions += 1

        self.retire_next_pc = entry.sequential

        body = entry.body
        if body is not None:
            halted = BODY_EXECUTORS[body.opcode_index](self.state, body)
            stats.executed_instructions += 1
            self._x_instructions += 1
            counts = self._x_opcode_counts
            name = entry._body_name
            counts[name] = counts.get(name, 0) + 1
            if halted:
                self.halted = True
                self.flush_execution()
                return

        if entry.sets_cc:
            self._resolve_dependents(slot, fetched)

        if entry.branch is not None:
            self._execute_branch_part(slot, fetched)

    def _execute_branch_part(self, slot: StageSlot,
                             fetched: StageSlot | None) -> None:
        entry = slot.entry
        branch = entry.branch
        assert branch is not None
        state = self.state
        stats = self.stats
        sequential = entry.sequential

        if entry.is_folded:
            stats.folded_branches += 1
            if self._obs_on:
                if self._obs_sinks:
                    self._p_folded.inc(site=entry._branch_pc)
                else:
                    self._p_folded.add()
        stats.executed_instructions += 1

        cls = branch.op_class
        if cls is OpClass.RETURN:
            memory = state.memory
            if branch.opcode is Opcode.RETI:
                state.flag = bool(memory.read_word(state.sp) & 1)
                state.sp = to_u32(state.sp + 4)
            target = memory.read_word(state.sp)
            state.sp = to_u32(state.sp + 4)
            self._redirect(target)
            self.retire_next_pc = target
            self._record_branch(slot, taken=True)
            return

        if entry.dynamic_target:  # indirect, or any branch when the
            # next-address-field ablation is active
            taken = (entry.taken_when(state.flag)
                     if entry.uses_cc else True)
            if taken:
                target = resolve_target(branch, entry._branch_pc, state.sp,
                                        state.memory.read_word)
            else:
                target = sequential
            if cls is OpClass.CALL:
                state.sp = to_u32(state.sp - 4)
                state.memory.write_word(state.sp, sequential)
            self._redirect(target)
            self.retire_next_pc = target
            self._record_branch(slot, taken=taken)
            return

        if cls is OpClass.CALL:
            state.sp = to_u32(state.sp - 4)
            state.memory.write_word(state.sp, sequential)
            assert entry.next_pc is not None
            self.retire_next_pc = entry.next_pc
            self._record_branch(slot, taken=True)
            return  # static target: Next-PC field already routed control

        if not entry.uses_cc:
            assert entry.next_pc is not None
            self.retire_next_pc = entry.next_pc
            self._record_branch(slot, taken=True)
            return

        # conditional branch reaching RR still unresolved: an unfolded
        # branch checks the (now architectural) flag against its chosen
        # path here, costing the full 3 cycles when wrong
        if not slot.resolved:
            correct = entry.taken_when(state.flag)
            slot.resolved = True
            if slot.chosen_taken != correct:
                stats.mispredictions += 1
                stats.misprediction_penalty_cycles += 3
                if self._obs_on:
                    if self._obs_sinks:
                        self._p_mispredict.inc(stage="RR", folded=False,
                                               site=entry._branch_pc)
                        self._p_penalty.inc(3, site=entry._branch_pc)
                    else:
                        self._p_mispredict.add()
                        self._p_penalty.add(3)
                slot.chosen_taken = correct
                self._squash_younger(slot, fetched)
                assert slot.other_pc is not None
                self._redirect(slot.other_pc)
        taken_pc = (entry.next_pc if entry._predicted_taken else entry.alt_pc)
        assert taken_pc is not None
        self.retire_next_pc = taken_pc if slot.chosen_taken else sequential
        self._record_branch(slot, taken=bool(slot.chosen_taken))

    def _record_branch(self, slot: StageSlot, *, taken: bool) -> None:
        entry = slot.entry
        if self._obs_on:
            if self._obs_sinks:
                self._p_branch.inc(site=entry._branch_pc, taken=taken,
                                   folded=entry.is_folded,
                                   speculated=slot.speculated)
            else:
                self._p_branch.add()
        self._x_instructions += 1
        counts = self._x_opcode_counts
        name = entry._branch_name
        counts[name] = counts.get(name, 0) + 1
        self._x_branches += 1
        if entry._branch_one_parcel:
            self._x_one_parcel += 1
        if entry.uses_cc:
            self._x_conditional += 1
            if self._dyn is not None:
                # train only at retirement: squashed wrong-path slots
                # never reach here, so the predictor learns exactly the
                # architectural branch stream
                self._dyn.train(entry._branch_pc, taken)
        if taken:
            self._x_taken += 1

    # ---- branch resolution -----------------------------------------------------

    def _resolve_dependents(self, cmp_slot: StageSlot,
                            fetched: StageSlot | None) -> None:
        """A compare just wrote the flag: resolve every speculative branch
        that was waiting on it (including one folded into the compare)."""
        flag = self.state.flag
        stats = self.stats
        # probe-guard state cannot change mid-resolution: read it once
        # here instead of once per dependent stage
        obs_on = self._obs_on
        obs_sinks = self._obs_sinks
        for slot in (self.rr, self.or_, self.ir, fetched):
            if slot is None or not slot.valid or slot.resolved:
                continue
            if slot.governing_seq != cmp_slot.seq:
                continue
            entry = slot.entry
            correct = entry.taken_when(flag)
            slot.resolved = True
            shadow = slot.shadow
            forced = False
            if slot.chosen_taken == correct:
                if shadow is None or not self._inject_wrong:
                    continue
                # fault injection (--inject always-wrong): treat this
                # verified-correct dynamic fold as a mismatch too,
                # exercising the full flush/recovery path. The redirect
                # refetches the *chosen* (correct) path, so architectural
                # state is unchanged — only timing suffers.
                forced = True
            # misprediction: squash younger work, re-introduce the
            # Alternate-PC as the next fetch address
            stage = self._stage_of(slot) if slot is not fetched else "IR"
            penalty = _PENALTY_BY_STAGE[stage]
            if slot is fetched:
                # resolves in the same cycle it was fetched: the redirect
                # costs one fetch slot
                penalty = 1
            stats.mispredictions += 1
            stats.misprediction_penalty_cycles += penalty
            if shadow is not None:
                # verified recovery of a dynamic fold: count it, flush,
                # and untrain the predictor so a cooling branch stops
                # being folded immediately
                stats.folded_mispredicts += 1
                stats.recovery_flush_cycles += penalty
                self._dyn.untrain(shadow.site)
                self._dyn.note_flush(shadow.site)
            if obs_on:
                if obs_sinks:
                    site = entry._branch_pc
                    self._p_mispredict.inc(stage=stage, folded=True,
                                           site=site)
                    self._p_penalty.inc(penalty, site=site)
                    if shadow is not None:
                        self._p_verify_fail.inc(site=site, forced=forced)
                        self._p_recovery.inc(penalty, site=site)
                else:
                    self._p_mispredict.add()
                    self._p_penalty.add(penalty)
                    if shadow is not None:
                        self._p_verify_fail.add()
                        self._p_recovery.add(penalty)
            slot.chosen_taken = correct
            self._squash_younger(slot, fetched)
            if forced:
                self._redirect(shadow.chosen_pc)
            else:
                assert slot.other_pc is not None
                self._redirect(slot.other_pc)

    def _redirect(self, target: int) -> None:
        self.ir_next_pc = target
        self._redirected = True

    # ---- interrupts --------------------------------------------------------

    def take_interrupt(self, vector: int) -> None:
        """Deliver a precise interrupt (call between clock ticks).

        Everything in flight is younger than the last retired instruction
        and side-effect-free, so it is simply squashed; the saved PSW flag
        and the precise resume PC are pushed, and fetch redirects to the
        handler. ``reti`` restores both.
        """
        state = self.state
        if self._obs_on:
            self._p_interrupt.inc(vector=vector)
        for slot in (self.rr, self.or_, self.ir):
            if slot is not None and slot.valid:
                slot.valid = False
                self.stats.squashed_slots += 1
                if self._obs_on:
                    self._p_squash.add()
        state.sp = to_u32(state.sp - 4)
        state.memory.write_word(state.sp, self.retire_next_pc)
        state.sp = to_u32(state.sp - 4)
        state.memory.write_word(state.sp, int(state.flag))
        self.ir_next_pc = vector
        self._redirected = False
        self.flush_execution()

    # ---- fetch-time path selection ------------------------------------------

    def _select_path(self, slot: StageSlot) -> None:
        """The entry just latched into IR: choose its outgoing path and set
        ``IR.Next-PC`` (unless a resolution already redirected it)."""
        entry = slot.entry

        if self._redirected:
            return  # a mispredict/dynamic redirect owns IR.Next-PC

        if entry.dynamic_target:
            self.ir_next_pc = None  # stall fetch until RR computes it
            return

        if not entry.uses_cc:
            self.ir_next_pc = entry.next_pc
            return

        # conditional: is a condition-code write still outstanding?
        outstanding = entry.folds_compare_and_branch
        if not outstanding:
            older = self.or_
            if older is not None and older.valid and older.entry.sets_cc:
                outstanding = True
            else:
                older = self.rr
                outstanding = (older is not None and older.valid
                               and older.entry.sets_cc)

        predicted = entry._predicted_taken
        taken_pc = entry.next_pc if predicted else entry.alt_pc
        fall_pc = entry.alt_pc if predicted else entry.next_pc

        if not outstanding:
            # the compare left the pipeline: the flag is architectural and
            # the branch needs no prediction — zero cycles lost even when
            # the static bit is wrong (what Branch Spreading exploits)
            actual = entry.taken_when(self.state.flag)
            if actual != predicted:
                self.stats.zero_cost_overrides += 1
                if self._obs_on:
                    if self._obs_sinks:
                        self._p_override.inc(site=entry._branch_pc)
                    else:
                        self._p_override.add()
            slot.chosen_taken = actual
            slot.resolved = True
            chosen = taken_pc if actual else fall_pc
            other = fall_pc if actual else taken_pc
        else:
            # the branch must trust its prediction bit because the
            # governing condition-code write is still in the pipeline —
            # the CC interlock Branch Spreading tries to engineer away
            if self._obs_on:
                if self._obs_sinks:
                    self._p_interlock.inc(site=entry._branch_pc,
                                          folded=entry.is_folded,
                                          d0=entry.folds_compare_and_branch)
                else:
                    self._p_interlock.add()
            slot.chosen_taken = predicted
            slot.resolved = False
            slot.speculated = True
            chosen = entry.next_pc
            other = entry.alt_pc
            dyn = self._dyn
            if dyn is not None and entry.dyn_foldable:
                confidence = dyn.decide(entry._branch_pc)
                if confidence:
                    # dynamic fold: the predictor says taken with enough
                    # confidence, so commit to the taken path like one of
                    # the paper's unconditional folds. The ShadowRecord
                    # rides down the pipeline; verification happens when
                    # the governing compare retires (below, via
                    # _resolve_dependents).
                    slot.chosen_taken = True
                    chosen = taken_pc
                    other = fall_pc
                    assert chosen is not None and other is not None
                    slot.shadow = ShadowRecord(
                        entry._branch_pc, True, chosen, other, confidence)
                    self.stats.dynamic_folds += 1
                    dyn.note_fold(entry._branch_pc)
                    if self._obs_on:
                        if self._obs_sinks:
                            self._p_dynfold.inc(site=entry._branch_pc,
                                                confidence=confidence)
                        else:
                            self._p_dynfold.add()
            if entry.is_folded:
                # folded branches recover as soon as the governing compare
                # resolves, wherever the branch is in the pipeline
                if entry.folds_compare_and_branch:
                    governing = slot
                else:
                    governing = self.or_
                    if not (governing is not None and governing.valid
                            and governing.entry.sets_cc):
                        governing = self.rr
                slot.governing_seq = governing.seq
            # unfolded branches keep governing_seq None and resolve at
            # their own RR stage
        slot.other_pc = other
        self.ir_next_pc = chosen
