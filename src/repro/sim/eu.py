"""The three-stage Execution Unit (IR → OR → RR).

Control flow is driven entirely by the ``IR.Next-PC`` register, loaded from
the Next-PC field of each entry read from the Decoded Instruction Cache.
Conditional entries carry their Alternate Next-PC down the pipeline; when
a compare resolves the flag at its RR stage, any in-flight branch that
chose the wrong path is recovered by squashing the younger stages (valid
bits — the side-effect-free ISA makes any instruction a no-op that way)
and re-introducing the Alternate-PC. The recovery cost is exactly the
paper's: 3 cycles when the compare was folded with the branch itself,
2 / 1 when the compare ran one / two entries ahead of a folded branch, and
**0** when the compare left the pipeline before the branch was fetched —
in that last case the prediction bit is overridden at fetch time for
free, the situation Branch Spreading engineers.

A conditional branch that was *not* folded resolves either at fetch time
(flag already architectural: zero cost) or at its own RR stage (3
cycles). The paper describes the early per-stage recovery only for folded
branches, and Table 4's cases A/B arithmetic (1023 and 512 mispredictions
at exactly 3 cycles each) confirms unfolded branches do not get the
OR/IR-stage shortcut.

Architectural effects are applied atomically at RR via
:mod:`repro.sim.semantics` — legitimate because the pipeline is in-order
with full bypassing and wrong-path entries never reach a result write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decoded import DecodedEntry
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.parcels import to_u32
from repro.obs.events import EventBus, NULL_BUS
from repro.sim.semantics import MachineState, execute
from repro.sim.stats import PipelineStats


@dataclass
class StageSlot:
    """One pipeline stage latch: a decoded entry plus recovery state."""

    entry: DecodedEntry
    seq: int  #: issue order, used to match branches to their compare
    valid: bool = True
    chosen_taken: bool | None = None  #: selected branch direction at fetch
    other_pc: int | None = None  #: the not-chosen path (Alternate-PC)
    governing_seq: int | None = None  #: seq of the compare this branch awaits
    resolved: bool = True  #: False while the branch direction is speculative
    speculated: bool = False  #: True if fetch had to trust the prediction bit


class ExecutionUnit:
    """Cycle-level model of the CRISP execution pipeline."""

    def __init__(self, state: MachineState, stats: PipelineStats,
                 obs: EventBus = NULL_BUS) -> None:
        self.state = state
        self.stats = stats
        self.obs = obs
        self._p_branch = obs.counter("branch.executed")
        self._p_folded = obs.counter("fold.succeeded")
        self._p_mispredict = obs.counter("mispredict.count")
        self._p_penalty = obs.counter("mispredict.penalty_cycles")
        self._p_squash = obs.counter("squash.slots")
        self._p_override = obs.counter("zero_cost.overrides")
        self._p_interlock = obs.counter("cc.interlock")
        self._p_interrupt = obs.counter("eu.interrupts")
        self.ir: StageSlot | None = None
        self.or_: StageSlot | None = None
        self.rr: StageSlot | None = None
        self.ir_next_pc: int | None = state.pc
        self.halted = False
        self._seq = 0
        self._redirected = False
        #: PC of the next architecturally-unexecuted instruction — the
        #: precise resume point for interrupts (the paper carries per-
        #: stage PCs exactly to identify this instruction)
        self.retire_next_pc: int = state.pc

    # ---- helpers -----------------------------------------------------------

    def _stage_of(self, slot: StageSlot) -> str:
        if slot is self.rr:
            return "RR"
        if slot is self.or_:
            return "OR"
        return "IR"

    def _squash_younger(self, slot: StageSlot,
                        fetched: StageSlot | None) -> None:
        """Clear the valid bits of every stage younger than ``slot``."""
        order = [self.rr, self.or_, self.ir, fetched]
        seen = False
        for candidate in order:
            if candidate is slot:
                seen = True
                continue
            if seen and candidate is not None and candidate.valid:
                candidate.valid = False
                self.stats.squashed_slots += 1
                self._p_squash.inc()

    # ---- the clock ----------------------------------------------------------

    def tick(self, fetched_entry: DecodedEntry | None) -> None:
        """Advance one cycle: execute RR, resolve branches, latch stages.

        ``fetched_entry`` is the cache read performed this cycle at the
        (pre-redirect) ``ir_next_pc`` — None on a miss or fetch stall.
        """
        fetched = None
        if fetched_entry is not None:
            self._seq += 1
            fetched = StageSlot(fetched_entry, self._seq)

        self._redirected = False
        if self.rr is None or not self.rr.valid:
            self.stats.stall_cycles += 1  # this cycle's RR does no work
        self._execute_rr(fetched)

        # end-of-cycle latch update
        self.rr, self.or_, self.ir = self.or_, self.ir, fetched
        if self.ir is not None and self.ir.valid:
            self._select_path(self.ir)

    # ---- RR stage ------------------------------------------------------------

    def _execute_rr(self, fetched: StageSlot | None) -> None:
        slot = self.rr
        if slot is None or not slot.valid:
            return
        entry = slot.entry
        state = self.state

        self.stats.issued_instructions += 1

        self.retire_next_pc = entry.address + entry.length_bytes

        if entry.body is not None:
            result = execute(state, entry.body, entry.address)
            self.stats.executed_instructions += 1
            self.stats.execution.record(
                entry.body.opcode.value,
                is_branch=False, is_conditional=False, taken=False,
                one_parcel=entry.body.length_parcels() == 1)
            if result.halted:
                self.halted = True
                return

        if entry.sets_cc:
            self._resolve_dependents(slot, fetched)

        if entry.branch is not None:
            self._execute_branch_part(slot, fetched)

    def _execute_branch_part(self, slot: StageSlot,
                             fetched: StageSlot | None) -> None:
        entry = slot.entry
        branch = entry.branch
        assert branch is not None
        state = self.state
        sequential = entry.address + entry.length_bytes

        if entry.is_folded:
            self.stats.folded_branches += 1
            self._p_folded.inc(site=entry.branch_pc)
        self.stats.executed_instructions += 1

        if branch.op_class is OpClass.RETURN:
            if branch.opcode is Opcode.RETI:
                state.flag = bool(state.memory.read_word(state.sp) & 1)
                state.sp = to_u32(state.sp + 4)
            target = state.memory.read_word(state.sp)
            state.sp = to_u32(state.sp + 4)
            self._redirect(target)
            self.retire_next_pc = target
            self._record_branch(slot, taken=True)
            return

        if entry.dynamic_target:  # indirect, or any branch when the
            # next-address-field ablation is active
            from repro.isa.instructions import resolve_target
            taken = (entry.taken_when(state.flag)
                     if entry.uses_cc else True)
            if taken:
                target = resolve_target(branch, entry.branch_pc, state.sp,
                                        state.memory.read_word)
            else:
                target = sequential
            if branch.op_class is OpClass.CALL:
                state.sp = to_u32(state.sp - 4)
                state.memory.write_word(state.sp, sequential)
            self._redirect(target)
            self.retire_next_pc = target
            self._record_branch(slot, taken=taken)
            return

        if branch.op_class is OpClass.CALL:
            state.sp = to_u32(state.sp - 4)
            state.memory.write_word(state.sp, sequential)
            assert entry.next_pc is not None
            self.retire_next_pc = entry.next_pc
            self._record_branch(slot, taken=True)
            return  # static target: Next-PC field already routed control

        if not entry.uses_cc:
            assert entry.next_pc is not None
            self.retire_next_pc = entry.next_pc
            self._record_branch(slot, taken=True)
            return

        # conditional branch reaching RR still unresolved: an unfolded
        # branch checks the (now architectural) flag against its chosen
        # path here, costing the full 3 cycles when wrong
        if not slot.resolved:
            correct = entry.taken_when(self.state.flag)
            slot.resolved = True
            if slot.chosen_taken != correct:
                self.stats.mispredictions += 1
                self.stats.misprediction_penalty_cycles += 3
                self._p_mispredict.inc(stage="RR", folded=False,
                                       site=entry.branch_pc)
                self._p_penalty.inc(3, site=entry.branch_pc)
                slot.chosen_taken = correct
                self._squash_younger(slot, fetched)
                assert slot.other_pc is not None
                self._redirect(slot.other_pc)
        taken_pc = (entry.next_pc if entry.predicted_taken else entry.alt_pc)
        assert taken_pc is not None
        self.retire_next_pc = taken_pc if slot.chosen_taken else sequential
        self._record_branch(slot, taken=bool(slot.chosen_taken))

    def _record_branch(self, slot: StageSlot, *, taken: bool) -> None:
        entry = slot.entry
        branch = entry.branch
        assert branch is not None
        self._p_branch.inc(site=entry.branch_pc, taken=taken,
                           folded=entry.is_folded,
                           speculated=slot.speculated)
        self.stats.execution.record(
            branch.opcode.value,
            is_branch=True,
            is_conditional=branch.is_conditional_branch,
            taken=taken,
            one_parcel=branch.length_parcels() == 1)

    # ---- branch resolution -----------------------------------------------------

    def _resolve_dependents(self, cmp_slot: StageSlot,
                            fetched: StageSlot | None) -> None:
        """A compare just wrote the flag: resolve every speculative branch
        that was waiting on it (including one folded into the compare)."""
        flag = self.state.flag
        for slot in (self.rr, self.or_, self.ir, fetched):
            if slot is None or not slot.valid or slot.resolved:
                continue
            if slot.governing_seq != cmp_slot.seq:
                continue
            correct = slot.entry.taken_when(flag)
            slot.resolved = True
            if slot.chosen_taken == correct:
                continue
            # misprediction: squash younger work, re-introduce the
            # Alternate-PC as the next fetch address
            stage = self._stage_of(slot) if slot is not fetched else "IR"
            penalty = {"RR": 3, "OR": 2, "IR": 1}[stage]
            if slot is fetched:
                # resolves in the same cycle it was fetched: the redirect
                # costs one fetch slot
                penalty = 1
            site = slot.entry.branch_pc
            self.stats.mispredictions += 1
            self.stats.misprediction_penalty_cycles += penalty
            self._p_mispredict.inc(stage=stage, folded=True, site=site)
            self._p_penalty.inc(penalty, site=site)
            slot.chosen_taken = correct
            self._squash_younger(slot, fetched)
            assert slot.other_pc is not None
            self._redirect(slot.other_pc)

    def _redirect(self, target: int) -> None:
        self.ir_next_pc = target
        self._redirected = True

    # ---- interrupts --------------------------------------------------------

    def take_interrupt(self, vector: int) -> None:
        """Deliver a precise interrupt (call between clock ticks).

        Everything in flight is younger than the last retired instruction
        and side-effect-free, so it is simply squashed; the saved PSW flag
        and the precise resume PC are pushed, and fetch redirects to the
        handler. ``reti`` restores both.
        """
        state = self.state
        self._p_interrupt.inc(vector=vector)
        for slot in (self.rr, self.or_, self.ir):
            if slot is not None and slot.valid:
                slot.valid = False
                self.stats.squashed_slots += 1
                self._p_squash.inc()
        state.sp = to_u32(state.sp - 4)
        state.memory.write_word(state.sp, self.retire_next_pc)
        state.sp = to_u32(state.sp - 4)
        state.memory.write_word(state.sp, int(state.flag))
        self.ir_next_pc = vector
        self._redirected = False

    # ---- fetch-time path selection ------------------------------------------

    def _select_path(self, slot: StageSlot) -> None:
        """The entry just latched into IR: choose its outgoing path and set
        ``IR.Next-PC`` (unless a resolution already redirected it)."""
        entry = slot.entry

        if self._redirected:
            return  # a mispredict/dynamic redirect owns IR.Next-PC

        if entry.dynamic_target:
            self.ir_next_pc = None  # stall fetch until RR computes it
            return

        if not entry.uses_cc:
            self.ir_next_pc = entry.next_pc
            return

        # conditional: is a condition-code write still outstanding?
        outstanding = entry.folds_compare_and_branch or any(
            older is not None and older.valid and older.entry.sets_cc
            for older in (self.or_, self.rr))

        predicted = entry.predicted_taken
        taken_pc = entry.next_pc if predicted else entry.alt_pc
        fall_pc = entry.alt_pc if predicted else entry.next_pc

        if not outstanding:
            # the compare left the pipeline: the flag is architectural and
            # the branch needs no prediction — zero cycles lost even when
            # the static bit is wrong (what Branch Spreading exploits)
            actual = entry.taken_when(self.state.flag)
            if actual != predicted:
                self.stats.zero_cost_overrides += 1
                self._p_override.inc(site=entry.branch_pc)
            slot.chosen_taken = actual
            slot.resolved = True
            chosen = taken_pc if actual else fall_pc
            other = fall_pc if actual else taken_pc
        else:
            # the branch must trust its prediction bit because the
            # governing condition-code write is still in the pipeline —
            # the CC interlock Branch Spreading tries to engineer away
            self._p_interlock.inc(site=entry.branch_pc,
                                  folded=entry.is_folded,
                                  d0=entry.folds_compare_and_branch)
            slot.chosen_taken = predicted
            slot.resolved = False
            slot.speculated = True
            chosen = entry.next_pc
            other = entry.alt_pc
            if entry.is_folded:
                # folded branches recover as soon as the governing compare
                # resolves, wherever the branch is in the pipeline
                governing = slot if entry.folds_compare_and_branch else next(
                    older for older in (self.or_, self.rr)
                    if older is not None and older.valid
                    and older.entry.sets_cc)
                slot.governing_seq = governing.seq
            # unfolded branches keep governing_seq None and resolve at
            # their own RR stage
        slot.other_pc = other
        self.ir_next_pc = chosen
