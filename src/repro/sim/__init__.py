"""Simulators for the CRISP-like machine.

Two simulators share the architectural semantics in
:mod:`repro.sim.semantics`:

* :class:`repro.sim.functional.FunctionalSimulator` — architectural
  (instruction-at-a-time) execution. The golden reference for differential
  testing, and the fast engine for branch-trace capture.
* :class:`repro.sim.cpu.CrispCpu` — the cycle-accurate model: prefetch /
  decode unit, decoded instruction cache with Next-PC and Alternate
  Next-PC fields (where Branch Folding happens), and the three-stage
  execution unit with prediction, squash and zero-cycle recovery.
"""

from repro.sim.memory import Memory
from repro.sim.functional import FunctionalSimulator, SimulationError
from repro.sim.stats import ExecutionStats, PipelineStats
from repro.sim.cpu import CrispCpu, CpuConfig

__all__ = [
    "Memory",
    "FunctionalSimulator",
    "SimulationError",
    "ExecutionStats",
    "PipelineStats",
    "CrispCpu",
    "CpuConfig",
]
