"""Stack-cache locality model.

CRISP keeps the top of the stack in an on-chip *Stack Cache* (32 words on
the real die), which is what makes its memory-to-memory instruction
format fast: most operands are stack-resident. The paper leaves the
details to its companion papers, and our EU charges uniform operand
timing — but the *claim* behind the design (operand accesses
overwhelmingly land in a small window above SP) is measurable, and this
model measures it.

Attach to either simulator via :func:`attach`; every architectural
operand access is classified as stack-cache hit (within ``words`` words
above the current SP), other-stack, global, or immediate-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.parcels import to_s32
from repro.sim.semantics import MachineState


@dataclass
class StackCacheModel:
    """Counts operand accesses by locality class."""

    words: int = 32  #: stack-cache capacity (CRISP: 32 words)
    hits: int = 0  #: accesses within the cached window above SP
    stack_misses: int = 0  #: stack accesses beyond the window
    global_accesses: int = 0  #: absolute / pointer accesses
    accesses: int = 0

    def observe(self, address: int, sp: int) -> None:
        """Classify one memory-operand access."""
        self.accesses += 1
        offset = to_s32(address - sp)
        if 0 <= offset < 4 * self.words:
            self.hits += 1
        elif offset >= 0:
            self.stack_misses += 1
        else:
            self.global_accesses += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of memory operands served by the stack cache."""
        return self.hits / self.accesses if self.accesses else 0.0

    def summary(self) -> str:
        return (f"{self.accesses} operand accesses: "
                f"{100 * self.hit_rate:.1f}% stack-cache "
                f"({self.words} words), "
                f"{self.stack_misses} deep-stack, "
                f"{self.global_accesses} global")


def attach(state: MachineState, words: int = 32) -> StackCacheModel:
    """Instrument a machine state's operand accesses.

    Wraps the memory's word read/write so every data access is
    classified against the current SP. Instruction fetches go through
    parcel reads and are not counted.
    """
    model = StackCacheModel(words)
    memory = state.memory
    original_read = memory.read_word
    original_write = memory.write_word

    def read_word(address: int) -> int:
        model.observe(address, state.sp)
        return original_read(address)

    def write_word(address: int, value: int) -> None:
        model.observe(address, state.sp)
        original_write(address, value)

    memory.read_word = read_word  # type: ignore[method-assign]
    memory.write_word = write_word  # type: ignore[method-assign]
    return model
