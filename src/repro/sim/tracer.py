"""Cycle-by-cycle pipeline tracing.

Wraps a :class:`~repro.sim.cpu.CrispCpu` and records what each EU stage
held on every clock — the tool for understanding folding, squash and
recovery behaviour (and for the pipeline-timing assertions in the test
suite). ``format_window`` renders the classic pipeline-diagram view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cpu import CrispCpu


@dataclass(frozen=True)
class CycleRecord:
    """One clock's pipeline occupancy (sampled after the cycle)."""

    cycle: int
    ir: str
    or_: str
    rr: str
    ir_next_pc: int | None
    icache_miss: bool
    halted: bool


def _describe(slot) -> str:
    if slot is None:
        return "-"
    text = str(slot.entry.body or slot.entry.branch)
    if slot.entry.is_folded:
        text = f"{slot.entry.body}+{slot.entry.branch.opcode.value}"
    if not slot.valid:
        return f"x({text})"
    if slot.entry.uses_cc and not slot.resolved:
        return f"?{text}"
    return text


@dataclass
class PipelineTrace:
    """Steps a CPU while recording per-cycle stage occupancy."""

    cpu: CrispCpu
    records: list[CycleRecord] = field(default_factory=list)

    def step(self) -> CycleRecord:
        """Advance one clock and record it.

        Stage occupancy is sampled *before* the tick: the record shows
        what each stage held while this cycle executed (so an empty RR in
        a record is exactly one of ``stats.stall_cycles``).
        """
        misses_before = self.cpu.stats.icache_misses
        ir = _describe(self.cpu.eu.ir)
        or_ = _describe(self.cpu.eu.or_)
        rr = _describe(self.cpu.eu.rr)
        self.cpu.step()
        record = CycleRecord(
            cycle=self.cpu.stats.cycles,
            ir=ir,
            or_=or_,
            rr=rr,
            ir_next_pc=self.cpu.eu.ir_next_pc,
            icache_miss=self.cpu.stats.icache_misses > misses_before,
            halted=self.cpu.halted,
        )
        self.records.append(record)
        return record

    def run(self, max_cycles: int = 100_000) -> list[CycleRecord]:
        """Run to halt, recording every cycle."""
        for _ in range(max_cycles):
            if self.cpu.halted:
                return self.records
            self.step()
        return self.records

    def bubbles(self) -> int:
        """Cycles where the RR stage did no useful work."""
        return sum(1 for record in self.records
                   if record.rr == "-" or record.rr.startswith("x("))

    def format_window(self, start: int = 0, count: int = 20) -> str:
        """Render a window of the trace as a pipeline diagram.

        Legend: ``-`` empty, ``x(...)`` squashed, ``?...`` speculative
        (unresolved branch direction), ``*`` cache-miss cycle.
        """
        lines = [f"{'cyc':>4} {'miss':<4} {'IR':<34} {'OR':<34} RR"]
        for record in self.records[start:start + count]:
            miss = "*" if record.icache_miss else ""
            lines.append(f"{record.cycle:>4} {miss:<4} "
                         f"{record.ir:<34} {record.or_:<34} {record.rr}")
        return "\n".join(lines)
