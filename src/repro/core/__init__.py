"""Branch Folding — the paper's primary contribution.

The CRISP prefetch/decode unit rewrites the instruction stream into a
*Decoded Instruction Cache* whose every entry carries a **Next-PC** field,
effectively turning every instruction into a branch; a separate branch
instruction that follows a non-branching instruction is therefore
redundant and is *folded* into it at decode time
(:mod:`repro.core.folder`). Conditional branches additionally carry an
**Alternate Next-PC** holding the path not chosen by the static prediction
bit (:mod:`repro.core.nextpc` mirrors the Figure-2 datapath that computes
both fields, including the 2-bit *branch adjust* that re-bases a folded
branch's PC-relative offset). :mod:`repro.core.policy` captures which
instruction pairs CRISP folds (one- and three-parcel non-branching
instructions with one-parcel branches) and the ablation variants.
"""

from repro.core.decoded import DecodedEntry
from repro.core.policy import FoldPolicy
from repro.core.folder import BranchFolder, decode_entry
from repro.core.nextpc import branch_adjust, compute_next_pcs, fold_target

__all__ = [
    "DecodedEntry",
    "FoldPolicy",
    "BranchFolder",
    "decode_entry",
    "branch_adjust",
    "compute_next_pcs",
    "fold_target",
]
