"""The canonical decoded-instruction form.

On the real chip every Decoded Instruction Cache entry is a fixed 192-bit
word — control fields, both operands, a 31-bit Next-PC and a 31-bit
Alternate Next-PC — "similar to a horizontal microinstruction".
:class:`DecodedEntry` is the behavioural analogue: the (possibly folded)
instruction pair plus the two next-address fields and the control bits the
execution unit consumes (the sets-CC bit is carried with each pipeline
stage on the real machine; see the paper's "Practical Considerations").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction
from repro.isa.opcodes import BranchKind


@dataclass(frozen=True)
class DecodedEntry:
    """One Decoded Instruction Cache entry.

    Exactly one of these shapes holds:

    * plain instruction — ``body`` set, ``branch`` None;
    * standalone branch — ``body`` None, ``branch`` set;
    * folded pair — both set (the paper's Branch Folding case).

    ``next_pc`` is the address the EU fetches next when this entry follows
    its selected path; ``alt_pc`` is the other path of a conditional branch
    (carried down the pipeline for misprediction recovery) and None
    otherwise. ``next_pc`` is None only for *dynamic* targets (returns and
    indirect jumps), which cannot be precomputed at decode time.
    """

    address: int  #: byte address of the first parcel (the cache tag)
    body: Instruction | None
    branch: Instruction | None
    next_pc: int | None
    alt_pc: int | None
    length_bytes: int  #: total parcels consumed, in bytes

    # The control bits and derived addresses below are fixed once the
    # entry exists — on the real chip they are literal wires of the
    # 192-bit cache word. ``__post_init__`` computes them once into plain
    # instance attributes (not dataclass fields: __init__/__eq__ keep
    # their shape) so the execution unit reads them at attribute-load
    # cost every cycle. Only ``branch_pc`` / ``predicted_taken`` /
    # ``branch_sense`` stay properties, to keep their historical raising
    # behaviour on entries without a (conditional) branch.

    def __post_init__(self) -> None:
        body, branch = self.body, self.branch
        if body is None and branch is None:
            raise ValueError("decoded entry needs a body or a branch")
        if body is not None and body.is_branch:
            raise ValueError("entry body must be a non-branching instruction")

        from repro.isa.opcodes import Opcode
        cache = object.__setattr__
        sets_cc = body is not None and body.sets_flag
        uses_cc = branch is not None and branch.is_conditional_branch
        cache(self, "sets_cc", sets_cc)
        cache(self, "uses_cc", uses_cc)
        cache(self, "is_folded", body is not None and branch is not None)
        cache(self, "folds_compare_and_branch", sets_cc and uses_cc)
        cache(self, "dynamic_target",
              branch is not None and self.next_pc is None)
        cache(self, "halts",
              body is not None and body.opcode is Opcode.HALT)
        # dynamic-fold eligibility: a folded conditional with a static
        # target (both next-address fields populated) can be steered down
        # the predicted-taken path under FoldPolicy.dynamic_fold
        cache(self, "dyn_foldable",
              uses_cc and body is not None and self.next_pc is not None)
        cache(self, "sequential", self.address + self.length_bytes)
        if branch is None:
            cache(self, "_branch_pc", None)
            cache(self, "_branch_sense", None)
        else:
            cache(self, "_branch_pc",
                  self.address if body is None
                  else self.address + body.length_bytes())
            cache(self, "_branch_sense", branch._branch_sense)
        cache(self, "_predicted_taken",
              branch._predicted_taken if uses_cc else None)
        # opcode-name strings and one-parcel bits for the execution unit's
        # batched ExecutionStats counters (Enum.value is a descriptor call)
        cache(self, "_body_name",
              None if body is None else body.opcode.value)
        cache(self, "_body_one_parcel",
              body is not None and body._length_parcels == 1)
        cache(self, "_branch_name",
              None if branch is None else branch.opcode.value)
        cache(self, "_branch_one_parcel",
              branch is not None and branch._length_parcels == 1)

    @property
    def branch_pc(self) -> int:
        """Byte address of the branch instruction itself — the *static
        branch site* telemetry keys on. For a folded pair this is the
        branch's own address (past the body), so attribution stays stable
        whether or not folding is enabled."""
        pc = self._branch_pc
        if pc is None:
            raise ValueError("entry has no branch")
        return pc

    @property
    def predicted_taken(self) -> bool:
        """Static prediction bit of the conditional branch."""
        predicted = self._predicted_taken
        if predicted is None:
            raise ValueError("entry has no conditional branch")
        return predicted

    @property
    def branch_sense(self) -> BranchKind:
        """Sense of the branch (ALWAYS / IF_TRUE / IF_FALSE)."""
        sense = self._branch_sense
        if sense is None:
            raise ValueError("entry has no branch")
        return sense

    def taken_when(self, flag: bool) -> bool:
        """Would the branch transfer, given ``flag``?"""
        sense = self._branch_sense
        if sense is BranchKind.IF_TRUE:
            return flag
        if sense is BranchKind.IF_FALSE:
            return not flag
        if sense is None:
            raise ValueError("entry has no branch")
        return True

    def __str__(self) -> str:
        parts = []
        if self.body is not None:
            parts.append(str(self.body))
        if self.branch is not None:
            parts.append(str(self.branch))
        joined = " + ".join(parts) if self.is_folded else parts[0]
        next_part = "dyn" if self.next_pc is None else f"{self.next_pc:#x}"
        alt = f" alt={self.alt_pc:#x}" if self.alt_pc is not None else ""
        return f"[{self.address:#x}: {joined} -> {next_part}{alt}]"
