"""The canonical decoded-instruction form.

On the real chip every Decoded Instruction Cache entry is a fixed 192-bit
word — control fields, both operands, a 31-bit Next-PC and a 31-bit
Alternate Next-PC — "similar to a horizontal microinstruction".
:class:`DecodedEntry` is the behavioural analogue: the (possibly folded)
instruction pair plus the two next-address fields and the control bits the
execution unit consumes (the sets-CC bit is carried with each pipeline
stage on the real machine; see the paper's "Practical Considerations").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction
from repro.isa.opcodes import BranchKind


@dataclass(frozen=True)
class DecodedEntry:
    """One Decoded Instruction Cache entry.

    Exactly one of these shapes holds:

    * plain instruction — ``body`` set, ``branch`` None;
    * standalone branch — ``body`` None, ``branch`` set;
    * folded pair — both set (the paper's Branch Folding case).

    ``next_pc`` is the address the EU fetches next when this entry follows
    its selected path; ``alt_pc`` is the other path of a conditional branch
    (carried down the pipeline for misprediction recovery) and None
    otherwise. ``next_pc`` is None only for *dynamic* targets (returns and
    indirect jumps), which cannot be precomputed at decode time.
    """

    address: int  #: byte address of the first parcel (the cache tag)
    body: Instruction | None
    branch: Instruction | None
    next_pc: int | None
    alt_pc: int | None
    length_bytes: int  #: total parcels consumed, in bytes

    def __post_init__(self) -> None:
        if self.body is None and self.branch is None:
            raise ValueError("decoded entry needs a body or a branch")
        if self.body is not None and self.body.is_branch:
            raise ValueError("entry body must be a non-branching instruction")

    # ---- control bits read by the execution unit -------------------------

    @property
    def sets_cc(self) -> bool:
        """True if executing this entry writes the condition-code flag."""
        return self.body is not None and self.body.sets_flag

    @property
    def uses_cc(self) -> bool:
        """True if this entry's next address depends on the flag."""
        return (self.branch is not None
                and self.branch.is_conditional_branch)

    @property
    def is_folded(self) -> bool:
        """True when a branch was folded into a non-branch instruction."""
        return self.body is not None and self.branch is not None

    @property
    def folds_compare_and_branch(self) -> bool:
        """True for the d=0 case: a compare folded with the conditional
        branch that consumes it (resolves only at the RR stage)."""
        return self.sets_cc and self.uses_cc

    @property
    def branch_pc(self) -> int:
        """Byte address of the branch instruction itself — the *static
        branch site* telemetry keys on. For a folded pair this is the
        branch's own address (past the body), so attribution stays stable
        whether or not folding is enabled."""
        if self.branch is None:
            raise ValueError("entry has no branch")
        if self.body is None:
            return self.address
        return self.address + self.body.length_bytes()

    @property
    def dynamic_target(self) -> bool:
        """True when the target is only known at execute time."""
        return self.branch is not None and self.next_pc is None

    @property
    def predicted_taken(self) -> bool:
        """Static prediction bit of the conditional branch."""
        if not self.uses_cc:
            raise ValueError("entry has no conditional branch")
        assert self.branch is not None
        return self.branch.predicted_taken

    @property
    def branch_sense(self) -> BranchKind:
        """Sense of the branch (ALWAYS / IF_TRUE / IF_FALSE)."""
        if self.branch is None:
            raise ValueError("entry has no branch")
        return self.branch.branch_sense

    @property
    def halts(self) -> bool:
        """True if this entry stops the machine."""
        from repro.isa.opcodes import Opcode
        return self.body is not None and self.body.opcode is Opcode.HALT

    def taken_when(self, flag: bool) -> bool:
        """Would the branch transfer, given ``flag``?"""
        sense = self.branch_sense
        if sense is BranchKind.ALWAYS:
            return True
        if sense is BranchKind.IF_TRUE:
            return flag
        return not flag

    def __str__(self) -> str:
        parts = []
        if self.body is not None:
            parts.append(str(self.body))
        if self.branch is not None:
            parts.append(str(self.branch))
        joined = " + ".join(parts) if self.is_folded else parts[0]
        next_part = "dyn" if self.next_pc is None else f"{self.next_pc:#x}"
        alt = f" alt={self.alt_pc:#x}" if self.alt_pc is not None else ""
        return f"[{self.address:#x}: {joined} -> {next_part}{alt}]"
