"""The branch folder: decode one cache entry from a parcel stream.

This is the PDU's decode step. It decodes the instruction at ``pc``; if
that instruction is a non-branch and the *next* instruction is a branch
the :class:`~repro.core.policy.FoldPolicy` accepts, the two are folded
into a single :class:`~repro.core.decoded.DecodedEntry` — the separate
branch disappears from the execution pipeline entirely. The entry's
Next-PC / Alternate Next-PC fields are filled by the Figure-2 datapath
model in :mod:`repro.core.nextpc`.

Note what falls out of tagging entries by their starting address: a jump
*into* a folded-away branch simply misses the cache, and the branch is
re-decoded standalone at its own address.
"""

from __future__ import annotations

from typing import Callable

from repro.core.decoded import DecodedEntry
from repro.core.nextpc import compute_next_pcs
from repro.core.policy import FoldPolicy
from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    instruction_length,
    peek_opcode,
)
from repro.isa.opcodes import is_branch_opcode
from repro.isa.instructions import Instruction
from repro.isa.parcels import PARCEL_BYTES

ParcelReader = Callable[[int], int]
"""Reads the 16-bit parcel at a byte address."""


def _decode_at(read_parcel: ParcelReader, pc: int) -> Instruction:
    first = read_parcel(pc)
    needed = instruction_length(first)
    parcels = [first] + [
        read_parcel(pc + i * PARCEL_BYTES) for i in range(1, needed)
    ]
    return decode_instruction(parcels)


def decode_entry(read_parcel: ParcelReader, pc: int,
                 policy: FoldPolicy) -> DecodedEntry:
    """Decode the cache entry starting at ``pc``.

    Reads one instruction; when it is a non-branch, peeks at the following
    instruction and folds it in if the policy allows.
    """
    first = _decode_at(read_parcel, pc)

    if first.is_branch:
        if not policy.next_address_fields:
            # next-address-field ablation: the target is not precomputed;
            # the EU discovers it at the RR stage like a dynamic target
            return DecodedEntry(pc, None, first, None, None,
                                first.length_bytes())
        next_pc, alt_pc = compute_next_pcs(pc, None, first,
                                           first.length_bytes())
        return DecodedEntry(pc, None, first, next_pc, alt_pc,
                            first.length_bytes())

    follower_pc = pc + first.length_bytes()
    try:
        follower = _decode_at(read_parcel, follower_pc)
    except (EncodingError, ValueError):
        follower = None  # end of code / data after code: nothing to fold
    if (follower is not None and follower.is_branch
            and policy.can_fold(first, follower)):
        length = first.length_bytes() + follower.length_bytes()
        next_pc, alt_pc = compute_next_pcs(pc, first, follower, length)
        return DecodedEntry(pc, first, follower, next_pc, alt_pc, length)

    next_pc, alt_pc = compute_next_pcs(pc, first, None, first.length_bytes())
    return DecodedEntry(pc, first, None, next_pc, alt_pc,
                        first.length_bytes())


class BranchFolder:
    """Stateless convenience wrapper binding a policy to a parcel source."""

    def __init__(self, read_parcel: ParcelReader, policy: FoldPolicy) -> None:
        self.read_parcel = read_parcel
        self.policy = policy

    def decode(self, pc: int) -> DecodedEntry:
        """Decode the entry at ``pc`` under the bound policy."""
        return decode_entry(self.read_parcel, pc, self.policy)

    def parcels_needed(self, pc: int) -> int:
        """How many parcels the decoder must see to produce the entry at
        ``pc`` — the PDU's five-parcel QA..QE window requirement.

        A 1- or 3-parcel non-branch needs one extra parcel of lookahead to
        test for a foldable branch; five-parcel instructions and branches
        need only themselves.
        """
        first = self.read_parcel(pc)
        needed = instruction_length(first)
        if (self.policy.enabled
                and not is_branch_opcode(peek_opcode(first))
                and needed in self.policy.body_lengths):
            # peek the follower's first parcel to decide folding
            return needed + 1
        return needed
