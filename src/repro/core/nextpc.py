"""The Next-PC datapath (the paper's Figure 2).

Three sources feed the Next-PC / Alternate Next-PC fields written into the
Decoded Instruction Cache:

1. **Sequential**: ``PDR.PC + ilen`` — the instruction's own address plus
   its encoded length (for non-branches, and the fall-through path of a
   conditional branch).
2. **32-bit specifier**: a long branch's absolute address, taken directly
   from the QB/QC parcels.
3. **10-bit PC-relative offset** of a one-parcel branch, selected by the
   ``tpcmx`` multiplexor from QA (unfolded), QB (folded after a one-parcel
   instruction) or QD (folded after a three-parcel instruction), then added
   to a **2-bit branch adjust** and to ``PDR.PC``. The adjust is needed
   because the stored offset is relative to the *branch*, while a folded
   entry's PC is the address of the instruction it folded into; the adjust
   is simply the length of the instruction starting in the QA parcel.

For conditional branches the static prediction bit decides which of the
two computed addresses becomes Next-PC and which becomes the Alternate.
"""

from __future__ import annotations

from repro.isa.instructions import BranchMode, Instruction
from repro.isa.parcels import PARCEL_BYTES


CRISP_ADJUST_BITS = 2
"""Width of the branch-adjust field in CRISP silicon: folded bodies are 1
or 3 parcels, so two bits suffice. The fold-everything ablation models
hypothetical hardware with a wider field (part of the extra cost the
paper declined to pay)."""


def branch_adjust(body: Instruction | None,
                  field_bits: int | None = None) -> int:
    """The branch adjust, in parcels.

    Zero for an unfolded branch (offset selected from QA, already relative
    to the entry's own PC); otherwise the folded-into instruction's
    length. Pass ``field_bits`` to enforce a hardware field width (CRISP's
    is :data:`CRISP_ADJUST_BITS`).
    """
    if body is None:
        return 0
    adjust = body.length_parcels()
    if field_bits is not None and adjust >= (1 << field_bits):
        raise ValueError(
            f"branch adjust {adjust} does not fit a {field_bits}-bit "
            f"field; CRISP never folds after a five-parcel instruction")
    return adjust


def fold_target(entry_pc: int, body: Instruction | None,
                branch: Instruction) -> int:
    """Compute a static branch target for a (possibly folded) entry.

    ``entry_pc`` is the cache entry's address — the folded-into
    instruction's PC, or the branch's own PC when unfolded.
    """
    spec = branch.branch
    assert spec is not None, "return has no decode-time target"
    if spec.mode is BranchMode.PC_RELATIVE:
        return entry_pc + branch_adjust(body) * PARCEL_BYTES + spec.value
    if spec.mode is BranchMode.ABSOLUTE:
        return spec.value
    raise ValueError(f"{spec.mode} targets are dynamic")


def compute_next_pcs(entry_pc: int, body: Instruction | None,
                     branch: Instruction | None,
                     length_bytes: int) -> tuple[int | None, int | None]:
    """Compute the (Next-PC, Alternate Next-PC) pair for a decoded entry.

    Returns ``(None, None)`` for dynamic targets (return / indirect), a
    single sequential address for plain instructions, the branch target for
    folded or standalone unconditional branches, and — for conditional
    branches — the predicted path in Next-PC with the other path in the
    Alternate field, per the static prediction bit.
    """
    sequential = entry_pc + length_bytes
    if branch is None:
        return sequential, None
    if branch.branch is None or branch.branch.is_indirect:
        return None, None  # return / indirect jump: resolved at execute
    target = fold_target(entry_pc, body, branch)
    if not branch.is_conditional_branch:
        return target, None
    if branch.predicted_taken:
        return target, sequential
    return sequential, target
