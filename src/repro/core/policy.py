"""Fold policy: which instruction pairs the decoder may fold.

CRISP's shipping policy — the paper's "Implementation of Branch Folding"
section — folds **one- and three-parcel non-branching instructions** with
**one-parcel branches**; folding the remaining cases "significantly
increases the amount of hardware required, with only a marginal increase
in performance". The policy object makes that trade-off an explicit,
sweepable parameter (see ``benchmarks/bench_ablation_fold_policy.py``).

Only branches with decode-time-computable targets participate: returns and
indirect jumps gain nothing from folding because their Next-PC cannot be
placed in the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.opcodes import OpClass


@dataclass(frozen=True)
class FoldPolicy:
    """Parameters deciding whether a (body, branch) pair folds."""

    enabled: bool = True
    body_lengths: frozenset[int] = frozenset({1, 3})
    branch_lengths: frozenset[int] = frozenset({1})
    fold_calls: bool = False  #: allow folding ``call`` (ablation only)
    #: ablation of the decoded cache's *next-address field itself*: when
    #: False, branch targets are not precomputed at decode — every branch
    #: resolves only at the RR stage, like pre-BTB machines where "a
    #: branch can interfere with program prefetching strategies"
    next_address_fields: bool = True
    #: dynamic-confidence conditional-branch folding: when the run-time
    #: predictor says "taken" with confidence >= ``dyn_confidence``, a
    #: folded conditional is steered down the taken path like one of the
    #: paper's unconditional folds, shadowed by a verification record
    #: that triggers flush/recovery (and predictor untraining) when the
    #: real condition disagrees. This is the feature the m2sim2 bug
    #: report shipped *without* the verification path (SNIPPETS.md).
    dynamic_fold: bool = False
    dyn_confidence: int = 2  #: minimum taken-confidence to fold on
    dyn_predictor: str = "3-bit"  #: repro.predict.factory name

    @classmethod
    def crisp(cls) -> "FoldPolicy":
        """The policy implemented in CRISP silicon."""
        return cls()

    @classmethod
    def dynamic(cls, confidence: int = 2,
                predictor: str = "3-bit") -> "FoldPolicy":
        """CRISP folding plus dynamic-confidence conditional folding."""
        return cls(dynamic_fold=True, dyn_confidence=confidence,
                   dyn_predictor=predictor)

    @classmethod
    def none(cls) -> "FoldPolicy":
        """Folding disabled — every branch occupies an EU pipeline slot
        (the paper's cases A, B and E)."""
        return cls(enabled=False)

    @classmethod
    def no_next_address(cls) -> "FoldPolicy":
        """No Next-PC fields at all: the conventional machine the paper's
        introduction describes, where branches break prefetching and
        "performance would be reduced by a factor of three, unless
        special precautions were taken" (the MU5 study)."""
        return cls(enabled=False, next_address_fields=False)

    @classmethod
    def fold_all(cls) -> "FoldPolicy":
        """Fold every foldable combination, including five-parcel bodies
        and three-parcel branches — the hardware-expensive ablation the
        paper declined to build."""
        return cls(body_lengths=frozenset({1, 3, 5}),
                   branch_lengths=frozenset({1, 3}), fold_calls=True)

    def can_fold(self, body: Instruction, branch: Instruction) -> bool:
        """May ``branch`` fold into the immediately preceding ``body``?"""
        if not self.enabled:
            return False
        if body.is_branch or not branch.is_branch:
            return False
        cls = branch.op_class
        if cls is OpClass.RETURN:
            return False  # dynamic target: no Next-PC to precompute
        if cls is OpClass.CALL and not self.fold_calls:
            return False
        if branch.branch is not None and branch.branch.is_indirect:
            return False  # dynamic target
        if body.length_parcels() not in self.body_lengths:
            return False
        return branch.length_parcels() in self.branch_lengths
