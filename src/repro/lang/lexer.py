"""Tokenizer for the mini-C language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass


class CompileError(ValueError):
    """Raised on any front-end error, with source position."""

    def __init__(self, message: str, line: int, column: int = 0) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    """Lexical token categories."""

    INT = "int-literal"
    IDENT = "identifier"
    KEYWORD = "keyword"
    PUNCT = "punctuator"
    EOF = "eof"


KEYWORDS = frozenset({
    "int", "unsigned", "void", "if", "else", "while", "for", "do",
    "return", "break", "continue", "switch", "case", "default",
})

# longest-match-first punctuators
PUNCTUATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "?", ":", ";", ",", "(", ")", "{", "}", "[", "]",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<int>\d+)
  | (?P<char>'(\\.|[^\\'])')
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<punct>""" + "|".join(re.escape(p) for p in PUNCTUATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: TokenKind
    text: str
    value: int = 0  #: numeric value for INT tokens
    line: int = 1

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raise :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    position = 0
    line = 1
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise CompileError(
                f"unexpected character {source[position]!r}", line)
        text = match.group(0)
        line += text.count("\n")
        position = match.end()
        start_line = line - text.count("\n")
        if match.lastgroup in ("ws", "line_comment", "block_comment"):
            continue
        if match.lastgroup == "hex":
            tokens.append(Token(TokenKind.INT, text, int(text, 16), start_line))
        elif match.lastgroup == "int":
            tokens.append(Token(TokenKind.INT, text, int(text), start_line))
        elif match.lastgroup == "char":
            body = text[1:-1]
            if body.startswith("\\"):
                if body[1] not in _ESCAPES:
                    raise CompileError(f"unknown escape {body!r}", start_line)
                value = _ESCAPES[body[1]]
            else:
                value = ord(body)
            tokens.append(Token(TokenKind.INT, text, value, start_line))
        elif match.lastgroup == "ident":
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, 0, start_line))
        else:
            tokens.append(Token(TokenKind.PUNCT, text, 0, start_line))
    tokens.append(Token(TokenKind.EOF, "", 0, line))
    return tokens
