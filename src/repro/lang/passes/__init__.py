"""Optimization passes over the assembly-level IR.

* :mod:`repro.lang.passes.peephole` — cleanup (dead labels, jumps to the
  next instruction) that keeps basic blocks large for the scheduler.
* :mod:`repro.lang.passes.spreading` — **Branch Spreading**: code motion
  separating each compare from its conditional branch.
* :mod:`repro.lang.passes.predict` — static prediction-bit setting
  (all-taken / all-not-taken / backward-taken heuristic / profile-guided).
"""

from repro.lang.passes.peephole import peephole_function, peephole_module
from repro.lang.passes.spreading import spread_function, spread_module
from repro.lang.passes.predict import (
    PredictionMode,
    apply_prediction,
    apply_profile,
)

__all__ = [
    "peephole_function",
    "peephole_module",
    "spread_function",
    "spread_module",
    "PredictionMode",
    "apply_prediction",
    "apply_profile",
]
