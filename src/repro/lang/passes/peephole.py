"""Peephole cleanups.

These run before branch spreading: removing unreferenced labels merges
basic blocks, giving the spreading scheduler more room to move code.
"""

from __future__ import annotations

from repro.lang.asmir import AsmFunction, AsmItem, AsmModule


def _referenced_labels(items: list[AsmItem]) -> set[str]:
    return {item.target for item in items if item.target is not None}


def peephole_function(function: AsmFunction) -> None:
    """Apply peephole cleanups to one function, in place."""
    changed = True
    while changed:
        changed = (_drop_jumps_to_next(function.items)
                   or _drop_unreferenced_labels(function.items,
                                                function.protected_labels)
                   or _drop_self_moves(function.items))


def _drop_jumps_to_next(items: list[AsmItem]) -> bool:
    """Remove ``jmp L`` when control falls to ``L`` anyway."""
    for index, item in enumerate(items):
        if item.mnemonic != "jmp" or item.target is None:
            continue
        cursor = index + 1
        while cursor < len(items) and items[cursor].is_label:
            if items[cursor].label == item.target:
                del items[index]
                return True
            cursor += 1
    return False


def _drop_unreferenced_labels(items: list[AsmItem],
                              protected: set[str] | None = None) -> bool:
    referenced = _referenced_labels(items) | (protected or set())
    for index, item in enumerate(items):
        if item.is_label and item.label not in referenced:
            del items[index]
            return True
    return False


def _drop_self_moves(items: list[AsmItem]) -> bool:
    """Remove ``mov x, x``."""
    for index, item in enumerate(items):
        if (item.mnemonic == "mov" and len(item.operands) == 2
                and item.operands[0] == item.operands[1]):
            del items[index]
            return True
    return False


def peephole_module(module: AsmModule) -> None:
    """Apply peephole cleanups to every function."""
    for function in module.functions:
        peephole_function(function)
