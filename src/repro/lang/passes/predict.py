"""Static branch-prediction bit setting.

CRISP conditional branches carry one compiler-set prediction bit. The
paper evaluates the optimal static setting (Table 1's "static prediction"
column assumes the bit is set optimally per branch) and uses simple
settings in the Table 4 experiment. Four policies are provided:

* ``NOT_TAKEN`` / ``TAKEN`` — force every bit one way (Table 4's case A
  uses not-taken for the loop branch);
* ``HEURISTIC`` — backward branches predicted taken, forward not taken
  (the classic loop heuristic);
* ``PROFILE`` — per-branch majority direction from a profiling run
  (optimal static prediction, what Table 1 reports).
"""

from __future__ import annotations

import enum

from repro.lang.asmir import AsmItem, AsmModule
from repro.obs.events import EventBus, NULL_BUS


class PredictionMode(enum.Enum):
    """How conditional-branch prediction bits are assigned."""

    NOT_TAKEN = "not_taken"
    TAKEN = "taken"
    HEURISTIC = "heuristic"
    PROFILE = "profile"


def _with_bit(mnemonic: str, predict_taken: bool) -> str:
    base = mnemonic[:-1]
    return base + ("y" if predict_taken else "n")


def _label_positions(items: list[AsmItem]) -> dict[str, int]:
    return {item.label: index
            for index, item in enumerate(items) if item.is_label}


def _set_bit(item: AsmItem, taken: bool, obs: EventBus) -> None:
    updated = _with_bit(item.mnemonic, taken)
    obs.counter("predict.bits_set").inc()
    if updated != item.mnemonic:
        obs.counter("predict.bit_flips").inc()
    item.mnemonic = updated


def apply_prediction(module: AsmModule, mode: PredictionMode,
                     obs: EventBus = NULL_BUS) -> None:
    """Set every conditional branch's prediction bit (non-profile modes)."""
    if mode is PredictionMode.PROFILE:
        raise ValueError("use apply_profile() for profile-guided prediction")
    for function in module.functions:
        labels = _label_positions(function.items)
        for index, item in enumerate(function.items):
            if not item.is_conditional:
                continue
            if mode is PredictionMode.NOT_TAKEN:
                taken = False
            elif mode is PredictionMode.TAKEN:
                taken = True
            else:  # HEURISTIC: backward taken, forward not taken
                target_index = labels.get(item.target, index + 1)
                taken = target_index <= index
            _set_bit(item, taken, obs)


def apply_profile(module: AsmModule,
                  taken_counts: dict[int, tuple[int, int]],
                  obs: EventBus = NULL_BUS) -> None:
    """Set prediction bits from a profile.

    ``taken_counts`` maps a module-order instruction index (as produced by
    :meth:`~repro.lang.asmir.AsmModule.instructions`) to ``(taken,
    total)`` execution counts. Unexecuted branches keep their current bit.
    """
    for index, item in enumerate(module.instructions()):
        if not item.is_conditional:
            continue
        taken, total = taken_counts.get(index, (0, 0))
        if total == 0:
            continue
        _set_bit(item, taken * 2 > total, obs)
