"""AST-level simplification: constant folding and algebraic identities.

Runs before semantic analysis (opt-in via
:attr:`~repro.lang.compiler.CompilerOptions.simplify`). Every rewrite is
exact under C semantics, including evaluation-order rules: an operand is
only deleted when the language guarantees it would not have been
evaluated (short-circuit, ternary) or when it is side-effect-free.
"""

from __future__ import annotations

from repro.isa.parcels import to_s32, to_u32
from repro.lang import astnodes as ast

_FOLDABLE_COMPARE = {
    "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
}


def is_pure(expr: ast.Expr) -> bool:
    """True when evaluating the expression has no side effects."""
    if isinstance(expr, ast.IntLiteral) or isinstance(expr, ast.VarRef):
        return True
    if isinstance(expr, ast.ArrayIndex):
        return is_pure(expr.index)
    if isinstance(expr, ast.Unary):
        return is_pure(expr.operand)
    if isinstance(expr, (ast.Binary, ast.Logical)):
        return is_pure(expr.left) and is_pure(expr.right)
    if isinstance(expr, ast.Conditional):
        return (is_pure(expr.condition) and is_pure(expr.when_true)
                and is_pure(expr.when_false))
    return False  # assignments, ++/--, calls


def _literal(value: int, line: int) -> ast.IntLiteral:
    return ast.IntLiteral(to_s32(to_u32(value)), line=line)


def _fold_binary(op: str, left: int, right: int) -> int | None:
    """Fold two signed-literal operands (None when undefined)."""
    if op in _FOLDABLE_COMPARE:
        return int(_FOLDABLE_COMPARE[op](left, right))
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return int(left / right) if right else None
    if op == "%":
        return left - int(left / right) * right if right else None
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return to_u32(left) << (right & 31)
    if op == ">>":
        return left >> (right & 31)  # literals fold as signed
    return None


def simplify_expr(expr: ast.Expr) -> ast.Expr:
    """Return a simplified (possibly new) expression node."""
    if isinstance(expr, ast.IntLiteral) or isinstance(expr, ast.VarRef):
        return expr
    if isinstance(expr, ast.ArrayIndex):
        expr.index = simplify_expr(expr.index)
        return expr
    if isinstance(expr, ast.Unary):
        expr.operand = simplify_expr(expr.operand)
        if isinstance(expr.operand, ast.IntLiteral):
            value = expr.operand.value
            folded = {"-": -value, "~": ~value, "!": int(not value)}[expr.op]
            return _literal(folded, expr.line)
        return expr
    if isinstance(expr, ast.IncDec):
        return expr
    if isinstance(expr, ast.Binary):
        return _simplify_binary(expr)
    if isinstance(expr, ast.Logical):
        return _simplify_logical(expr)
    if isinstance(expr, ast.Conditional):
        expr.condition = simplify_expr(expr.condition)
        expr.when_true = simplify_expr(expr.when_true)
        expr.when_false = simplify_expr(expr.when_false)
        if isinstance(expr.condition, ast.IntLiteral):
            # C never evaluates the unselected arm: dropping it is exact
            return expr.when_true if expr.condition.value \
                else expr.when_false
        return expr
    if isinstance(expr, ast.Assign):
        expr.target = simplify_expr(expr.target)
        expr.value = simplify_expr(expr.value)
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [simplify_expr(arg) for arg in expr.args]
        return expr
    return expr


def _simplify_binary(expr: ast.Binary) -> ast.Expr:
    expr.left = simplify_expr(expr.left)
    expr.right = simplify_expr(expr.right)
    left, right = expr.left, expr.right

    if isinstance(left, ast.IntLiteral) and isinstance(right, ast.IntLiteral):
        folded = _fold_binary(expr.op, left.value, right.value)
        if folded is not None:
            return _literal(folded, expr.line)
        return expr  # division by zero: leave for runtime

    # identities with a literal on one side
    lit, other, lit_on_left = None, None, False
    if isinstance(left, ast.IntLiteral):
        lit, other, lit_on_left = left.value, right, True
    elif isinstance(right, ast.IntLiteral):
        lit, other, lit_on_left = right.value, left, False
    if lit is None:
        return expr

    op = expr.op
    if lit == 0:
        if op == "+" or (op in ("-", "<<", ">>", "|", "^")
                         and not lit_on_left):
            return other  # x+0, 0+x, x-0, x<<0, x|0, x^0
        if op in ("*", "&") and is_pure(other):
            return _literal(0, expr.line)  # x*0 (pure), x&0
    if lit == 1 and op == "*":
        return other
    if lit == 1 and op == "/" and not lit_on_left:
        return other
    if lit == 1 and op == "%" and not lit_on_left and is_pure(other):
        return _literal(0, expr.line)  # x%1 == 0, but x must still run
    if lit == -1 and op == "&":
        return other
    return expr


def _simplify_logical(expr: ast.Logical) -> ast.Expr:
    expr.left = simplify_expr(expr.left)
    expr.right = simplify_expr(expr.right)
    if isinstance(expr.left, ast.IntLiteral):
        left_truth = bool(expr.left.value)
        if expr.op == "&&":
            if not left_truth:
                return _literal(0, expr.line)  # right never evaluates
            return _as_boolean(expr.right, expr.line)
        if left_truth:
            return _literal(1, expr.line)  # right never evaluates
        return _as_boolean(expr.right, expr.line)
    return expr


def _as_boolean(expr: ast.Expr, line: int) -> ast.Expr:
    """Normalize to 0/1 (logical operators produce booleans)."""
    if isinstance(expr, ast.IntLiteral):
        return _literal(int(bool(expr.value)), line)
    if isinstance(expr, (ast.Binary,)) and expr.op in _FOLDABLE_COMPARE:
        return expr  # already 0/1
    if isinstance(expr, ast.Logical):
        return expr
    return ast.Binary("!=", expr, ast.IntLiteral(0, line=line), line=line)


def simplify_stmt(stmt: ast.Stmt) -> ast.Stmt | None:
    """Simplify a statement; None means it can be deleted entirely."""
    if isinstance(stmt, ast.Block):
        new_statements = []
        for inner in stmt.statements:
            simplified = simplify_stmt(inner)
            if simplified is not None:
                new_statements.append(simplified)
        stmt.statements = new_statements
        return stmt
    if isinstance(stmt, ast.Declaration):
        if stmt.initializer is not None:
            stmt.initializer = simplify_expr(stmt.initializer)
        return stmt
    if isinstance(stmt, ast.ExprStmt):
        if stmt.expr is None:
            return None
        stmt.expr = simplify_expr(stmt.expr)
        if is_pure(stmt.expr):
            return None  # pure expression statement: dead
        return stmt
    if isinstance(stmt, ast.If):
        stmt.condition = simplify_expr(stmt.condition)
        stmt.then_branch = simplify_stmt(stmt.then_branch) or ast.Block([])
        if stmt.else_branch is not None:
            stmt.else_branch = simplify_stmt(stmt.else_branch)
        if isinstance(stmt.condition, ast.IntLiteral):
            if stmt.condition.value:
                return stmt.then_branch
            return stmt.else_branch  # may be None: whole if deleted
        return stmt
    if isinstance(stmt, ast.While):
        stmt.condition = simplify_expr(stmt.condition)
        if (isinstance(stmt.condition, ast.IntLiteral)
                and not stmt.condition.value):
            return None  # while(0): body never runs
        stmt.body = simplify_stmt(stmt.body) or ast.Block([])
        return stmt
    if isinstance(stmt, ast.DoWhile):
        stmt.body = simplify_stmt(stmt.body) or ast.Block([])
        stmt.condition = simplify_expr(stmt.condition)
        return stmt
    if isinstance(stmt, ast.For):
        if stmt.init is not None:
            stmt.init = simplify_stmt(stmt.init)
        if stmt.condition is not None:
            stmt.condition = simplify_expr(stmt.condition)
        if stmt.step is not None:
            stmt.step = simplify_expr(stmt.step)
        stmt.body = simplify_stmt(stmt.body) or ast.Block([])
        return stmt
    if isinstance(stmt, ast.Switch):
        stmt.selector = simplify_expr(stmt.selector)
        for clause in stmt.clauses:
            clause.statements = [
                s for s in (simplify_stmt(inner)
                            for inner in clause.statements)
                if s is not None]
        return stmt
    if isinstance(stmt, ast.Return):
        if stmt.value is not None:
            stmt.value = simplify_expr(stmt.value)
        return stmt
    return stmt  # break / continue


def simplify_unit(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Simplify every function in place; returns the unit."""
    for function in unit.functions:
        simplify_stmt(function.body)
    return unit
