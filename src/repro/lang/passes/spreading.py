"""Branch Spreading — the paper's compiler-side half of zero-cost branches.

A conditional branch whose compare has left the execution pipeline needs
no prediction: the CRISP EU reads the architectural flag at fetch time and
follows the correct path for free. The compiler therefore tries to place
at least ``distance`` (= the pipeline depth, 3) independent instructions
between every ``cmp`` and the conditional branch that consumes it:

1. **Hoist-past-compare**: instructions from before the compare in the
   same block move to just after it when they commute with the compare
   (the paper's ``add sum,i`` moving below ``cmp.= Accum,0``).
2. **Join pulling**: when the branch forms an if/else diamond (or
   if-without-else triangle), instructions from the head of the join
   block move up in front of the branch, provided they commute with both
   arms and the compare (the paper's ``mov j,sum`` and ``add i,1``).

Both motions preserve semantics by construction: moved instructions
execute exactly once on every path they did before, in a data-dependence-
compatible order. Calls, frame adjustments and flag writers are barriers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.asmir import (
    AsmFunction,
    AsmItem,
    AsmModule,
    items_conflict,
)
from repro.obs.events import EventBus, NULL_BUS

SPREAD_DISTANCE = 3
"""Instructions needed between compare and branch for zero-cost resolution
(the depth of the CRISP execution pipeline)."""

_BARRIERS = {"call", "enter", "spadd", "return", "halt"}


def _is_barrier(item: AsmItem) -> bool:
    return (item.is_label or item.is_branch or item.sets_flag
            or item.mnemonic in _BARRIERS)


@dataclass
class _Site:
    """One compare/conditional-branch pair eligible for spreading."""

    cmp_index: int
    branch_index: int

    @property
    def gap(self) -> int:
        return self.branch_index - self.cmp_index - 1


def _find_sites(items: list[AsmItem]) -> list[_Site]:
    """Conditional branches with their governing compare in-block."""
    sites = []
    for index, item in enumerate(items):
        if not item.is_conditional:
            continue
        cursor = index - 1
        while cursor >= 0:
            candidate = items[cursor]
            if candidate.sets_flag:
                sites.append(_Site(cursor, index))
                break
            if candidate.is_label or candidate.is_branch:
                break  # flag comes from another block: leave it alone
            cursor -= 1
    return sites


def _block_start(items: list[AsmItem], index: int) -> int:
    """Index of the first item of the block containing ``index``."""
    cursor = index
    while cursor > 0:
        previous = items[cursor - 1]
        if previous.is_label or previous.is_branch:
            break
        cursor -= 1
    return cursor


def _hoist_past_compare(items: list[AsmItem], site: _Site) -> bool:
    """Move the nearest eligible instruction from above the compare to
    just after it. Returns True on success."""
    start = _block_start(items, site.cmp_index)
    cmp_item = items[site.cmp_index]
    crossed = [cmp_item]
    cursor = site.cmp_index - 1
    while cursor >= start:
        candidate = items[cursor]
        if _is_barrier(candidate):
            return False
        if all(not items_conflict(candidate, other) for other in crossed):
            moved = items.pop(cursor)  # everything below slides up one
            items.insert(site.cmp_index, moved)  # lands just after the cmp
            site.cmp_index -= 1
            return True
        crossed.append(candidate)
        cursor -= 1
    return False


def _label_index(items: list[AsmItem], name: str) -> int | None:
    for index, item in enumerate(items):
        if item.is_label and item.label == name:
            return index
    return None


def _reference_count(items: list[AsmItem], name: str) -> int:
    return sum(1 for item in items if item.target == name)


def _arm_and_join(items: list[AsmItem], site: _Site,
                  protected: frozenset[str] = frozenset(),
                  ) -> tuple[list[int], int] | None:
    """Identify the diamond/triangle around the branch.

    Returns (arm item indices, join start index) or None when the shape
    is not a forward if/else the pass understands.
    """
    branch = items[site.branch_index]
    target = branch.target
    assert target is not None
    if target in protected:
        return None  # label also reachable from a switch jump table
    target_index = _label_index(items, target)
    if target_index is None or target_index < site.branch_index:
        return None  # backward branch: a loop, not an if
    if _reference_count(items, target) != 1:
        return None  # other paths reach the target label

    arm_a = list(range(site.branch_index + 1, target_index))
    if not arm_a:
        return None
    last = items[arm_a[-1]]
    if last.mnemonic == "jmp" and last.target is not None:
        # diamond: then-arm ends jumping to the join
        join_label_index = _label_index(items, last.target)
        if join_label_index is None or join_label_index <= target_index:
            return None
        if _reference_count(items, last.target) != 1 \
                or last.target in protected:
            return None
        arm_b = list(range(target_index + 1, join_label_index))
        if any(items[i].is_label or items[i].is_branch for i in arm_b):
            return None
        arm_a = arm_a[:-1]  # the jmp itself is control flow, not an arm item
        if any(items[i].is_label or items[i].is_branch for i in arm_a):
            return None
        return arm_a + arm_b, join_label_index + 1
    # triangle: fall-through arm only, join at the branch target
    if any(items[i].is_label or items[i].is_branch for i in arm_a):
        return None
    return arm_a, target_index + 1


def _pull_from_join(items: list[AsmItem], site: _Site,
                    protected: frozenset[str] = frozenset()) -> bool:
    """Move one eligible instruction from the join block's head to just
    before the branch. Returns True on success."""
    shape = _arm_and_join(items, site, protected)
    if shape is None:
        return False
    arm_indices, join_start = shape
    # a pulled instruction lands just before the branch, i.e. *after* the
    # compare and the instructions already between compare and branch, so
    # program order against those is preserved — only the arms (which it
    # now precedes) need commute checks
    crossed = [items[i] for i in arm_indices]

    cursor = join_start
    skipped: list[AsmItem] = []
    while cursor < len(items):
        candidate = items[cursor]
        if _is_barrier(candidate):
            return False
        if all(not items_conflict(candidate, other)
               for other in crossed + skipped):
            items.insert(site.branch_index, items.pop(cursor))
            site.branch_index += 1
            return True
        skipped.append(candidate)
        cursor += 1
    return False


def spread_function(function: AsmFunction,
                    distance: int = SPREAD_DISTANCE,
                    obs: EventBus = NULL_BUS) -> int:
    """Spread every compare/branch pair in a function.

    Returns the number of instructions moved.
    """
    items = function.items
    protected = frozenset(function.protected_labels)
    moved = 0
    for _ in range(len(items)):
        sites = _find_sites(items)
        progressed = False
        for site in sites:
            if site.gap >= distance:
                continue
            if _hoist_past_compare(items, site) \
                    or _pull_from_join(items, site, protected):
                moved += 1
                obs.counter("spread.moved").inc()
                progressed = True
                break  # indices shifted: recompute sites
        if not progressed:
            break
    if obs.enabled:
        for site in _find_sites(items):
            obs.histogram("spread.distance").observe(site.gap)
    return moved


def spread_module(module: AsmModule, distance: int = SPREAD_DISTANCE,
                  obs: EventBus = NULL_BUS) -> int:
    """Spread every function; returns total instructions moved."""
    return sum(spread_function(function, distance, obs)
               for function in module.functions)
