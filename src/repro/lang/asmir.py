"""Assembly-level IR produced by the code generator.

Functions are lists of :class:`AsmItem` — labels and instructions whose
operands are assembler-syntax strings (plus late-bound stack references,
resolved once the final frame size is known). The optimization passes
(branch spreading, prediction-bit setting, peephole) operate on this IR;
:func:`render_module` then emits assembler source text.

The IR also provides the def/use analysis the spreading pass needs:
:func:`instr_reads` / :func:`instr_writes` return the abstract locations
an instruction touches (named globals, stack slots, the accumulator, and
conservative wildcards for indirect access).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.parser import BRANCH_MNEMONICS

ACC = "%acc"
FLAG = "%flag"
MEMORY = "%memory"  #: wildcard: any memory (indirect accesses)
STACK = "%stack"  #: wildcard: any stack slot

CONDITIONAL_MNEMONICS = frozenset({
    "iftjmpy", "iftjmpn", "iffjmpy", "iffjmpn",
    "iftjmply", "iftjmpln", "iffjmply", "iffjmpln",
})


@dataclass(frozen=True)
class StackRef:
    """A stack operand whose byte offset is finalized with the frame size.

    ``kind`` is ``local``/``temp`` (offset = slot offset + push adjustment)
    or ``param`` (offset = frame size + 4 + slot offset). ``adjust`` is the
    extra depth from outgoing-argument pushes active at the emission point.
    """

    kind: str
    offset: int
    adjust: int = 0

    def render(self, frame_size: int) -> str:
        if self.kind == "param":
            return f"{frame_size + 4 + self.offset + self.adjust}(sp)"
        return f"{self.offset + self.adjust}(sp)"


@dataclass(frozen=True)
class FrameSize:
    """Placeholder for the function's final frame size (``enter``/``spadd``)."""

    def render(self, frame_size: int) -> str:
        return str(frame_size)


Operand = "str | StackRef | FrameSize"


@dataclass
class AsmItem:
    """One label or instruction."""

    mnemonic: str  #: "" for labels
    operands: list = field(default_factory=list)
    label: str | None = None  #: set for label items
    target: str | None = None  #: branch target label
    indirect_sp: StackRef | None = None  #: jump through a stack slot
    line: int | None = None  #: mini-C source line this item was emitted for

    @property
    def is_label(self) -> bool:
        return self.label is not None

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in BRANCH_MNEMONICS or self.mnemonic == "return"

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic in CONDITIONAL_MNEMONICS

    @property
    def sets_flag(self) -> bool:
        return self.mnemonic.startswith("cmp.")

    def render(self, frame_size: int) -> str:
        if self.is_label:
            return f"{self.label}:"
        if self.indirect_sp is not None:
            return (f"        {self.mnemonic} "
                    f"({self.indirect_sp.render(frame_size)})")
        if self.target is not None:
            return f"        {self.mnemonic} {self.target}"
        if not self.operands:
            return f"        {self.mnemonic}"
        rendered = ", ".join(
            op if isinstance(op, str) else op.render(frame_size)
            for op in self.operands)
        return f"        {self.mnemonic} {rendered}"


def label(name: str) -> AsmItem:
    """A label item."""
    return AsmItem("", label=name)


def instr(mnemonic: str, *operands) -> AsmItem:
    """An instruction item with data operands."""
    return AsmItem(mnemonic, list(operands))


def branch(mnemonic: str, target: str) -> AsmItem:
    """A branch instruction item."""
    return AsmItem(mnemonic, [], target=target)


def indirect_branch(mnemonic: str, slot: StackRef) -> AsmItem:
    """A branch through a stack slot (``jmp (N(sp))``) — jump tables."""
    return AsmItem(mnemonic, [], indirect_sp=slot)


# ---- def/use analysis ----------------------------------------------------------

def _operand_location(operand) -> str:
    """Abstract location named by an operand (for dependence tests)."""
    if isinstance(operand, StackRef):
        return f"%sp:{operand.kind}:{operand.offset + operand.adjust}" \
            if operand.kind != "param" else f"%sp:param:{operand.offset}"
    if isinstance(operand, FrameSize):
        return "%frame"
    text = operand.strip()
    if text.startswith("$") or text.lstrip("+-").isdigit() \
            or text.lstrip("+-").startswith("0x"):
        return ""  # immediate: no location
    if text.lower() in ("accum", "acc"):
        return ACC
    if text.lower() in ("(accum)", "(acc)"):
        return MEMORY
    if text.endswith("(sp)"):
        return f"%sp:raw:{text[:-4]}"
    return text.split("+")[0].split("-")[0]  # global symbol (maybe offset)


def _locations_conflict(a: str, b: str) -> bool:
    """Conservative may-alias test between two abstract locations."""
    if not a or not b:
        return False
    if a == b:
        return True
    if MEMORY in (a, b):
        return True  # indirect access may touch anything
    if a.startswith("%sp") and b.startswith("%sp"):
        # hand-written (raw) sp offsets are treated conservatively; the
        # code generator's static slots are distinct locations
        return "raw" in (a.split(":")[1], b.split(":")[1])
    return False


def instr_reads(item: AsmItem) -> set[str]:
    """Abstract locations an instruction reads."""
    if item.is_label:
        return set()
    reads: set[str] = set()
    mnemonic = item.mnemonic
    operands = item.operands
    if item.is_conditional:
        reads.add(FLAG)
        return reads
    if item.is_branch:
        if item.indirect_sp is not None:
            reads.add(_operand_location(item.indirect_sp))
        return reads
    if mnemonic in ("nop", "halt", "enter", "spadd"):
        return reads
    if mnemonic in ("mov", "not", "neg"):
        # dst = OP(src): only the source is read
        sources = operands[1:]
    else:
        sources = operands
    for operand in sources:
        location = _operand_location(operand)
        if location:
            reads.add(location)
        # an accumulator-indirect operand also reads the accumulator
        if isinstance(operand, str) and operand.strip().lower() in (
                "(accum)", "(acc)"):
            reads.add(ACC)
    return reads


def instr_writes(item: AsmItem) -> set[str]:
    """Abstract locations an instruction writes."""
    if item.is_label or item.is_branch:
        return set()
    mnemonic = item.mnemonic
    if mnemonic.startswith("cmp."):
        return {FLAG}
    if mnemonic in ("nop", "halt"):
        return set()
    if mnemonic in ("enter", "spadd"):
        return {"%frame"}
    if mnemonic.endswith("3"):  # three-operand ALU writes the accumulator
        return {ACC}
    location = _operand_location(item.operands[0])
    return {location} if location else set()


def items_conflict(a: AsmItem, b: AsmItem) -> bool:
    """True when reordering ``a`` and ``b`` could change behaviour."""
    a_reads, a_writes = instr_reads(a), instr_writes(a)
    b_reads, b_writes = instr_reads(b), instr_writes(b)
    for write in a_writes:
        if any(_locations_conflict(write, other)
               for other in b_reads | b_writes):
            return True
    for write in b_writes:
        if any(_locations_conflict(write, other) for other in a_reads):
            return True
    return False


# ---- functions and modules -------------------------------------------------------

@dataclass
class AsmFunction:
    """One function's items plus its frame bookkeeping.

    ``protected_labels`` are referenced from outside the instruction
    stream (switch jump tables in the data segment) and must survive
    dead-label elimination.
    """

    name: str
    items: list[AsmItem] = field(default_factory=list)
    frame_size: int = 0
    protected_labels: set[str] = field(default_factory=set)

    def render(self) -> list[str]:
        return [item.render(self.frame_size) for item in self.items]

    def instructions(self) -> list[AsmItem]:
        """Items that are instructions (no labels), in order."""
        return [item for item in self.items if not item.is_label]


@dataclass
class AsmModule:
    """A compiled translation unit, pre-assembly."""

    data_lines: list[str] = field(default_factory=list)
    functions: list[AsmFunction] = field(default_factory=list)
    entry_function: str = "main"

    def render(self) -> str:
        lines = [".entry __start"]
        lines.extend(self.data_lines)
        lines.append("__start:")
        lines.append(f"        call {self.entry_function}")
        lines.append("        halt")
        for function in self.functions:
            lines.append(f"{function.name}:")
            lines.extend(function.render())
        return "\n".join(lines) + "\n"

    def instructions(self) -> list[AsmItem]:
        """All instruction items in program order, including startup.

        The startup stub contributes the leading ``call`` and ``halt``;
        indices into this list line up with the assembled
        :class:`~repro.asm.program.Program` instruction indices.
        """
        items = [branch("call", self.entry_function), instr("halt")]
        for function in self.functions:
            items.extend(function.instructions())
        return items
