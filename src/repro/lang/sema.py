"""Semantic analysis: scopes, symbols, frame layout, validity checks.

Produces a :class:`SemaInfo` the code generator consumes: every
:class:`~repro.lang.astnodes.VarRef` and
:class:`~repro.lang.astnodes.ArrayIndex` base is resolved to a symbol, and
each function gets its named-locals frame size.

Design restriction (documented in DESIGN.md): arrays live in the data
segment (globals). The ISA has no instruction that reads the stack
pointer into the accumulator, so dynamically-indexed *local* arrays have
no addressing path; sema rejects them with a clear error. Pointers are
likewise out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import astnodes as ast
from repro.lang.lexer import CompileError


@dataclass(frozen=True)
class GlobalSym:
    """File-scope scalar or array."""

    name: str
    array_size: int | None = None
    initializer: int = 0
    is_unsigned: bool = False

    @property
    def is_array(self) -> bool:
        return self.array_size is not None


@dataclass(frozen=True)
class LocalSym:
    """Function-local scalar at a fixed frame offset."""

    name: str
    offset: int
    is_unsigned: bool = False


@dataclass(frozen=True)
class ParamSym:
    """Function parameter (``index`` within the argument list)."""

    name: str
    index: int
    is_unsigned: bool = False

    @property
    def offset(self) -> int:
        return self.index * 4


@dataclass(frozen=True)
class FuncSym:
    """Function signature."""

    name: str
    param_count: int
    returns_value: bool
    returns_unsigned: bool = False


@dataclass
class SemaInfo:
    """Everything the code generator needs from semantic analysis."""

    globals: dict[str, GlobalSym] = field(default_factory=dict)
    functions: dict[str, FuncSym] = field(default_factory=dict)
    resolution: dict[int, object] = field(default_factory=dict)
    locals_bytes: dict[str, int] = field(default_factory=dict)

    def resolve(self, node: ast.Expr):
        """Symbol a VarRef node was resolved to."""
        return self.resolution[id(node)]

    def expr_is_unsigned(self, expr: ast.Expr) -> bool:
        """C-style usual-arithmetic-conversion result type.

        An expression is unsigned when any contributing operand is: it
        selects the ``cmp.u*`` comparisons, logical (vs arithmetic) right
        shift, and the unsigned divide/remainder opcodes. Comparison and
        logical results are themselves plain ``int`` (0/1).
        """
        if isinstance(expr, ast.VarRef):
            symbol = self.resolution.get(id(expr))
            return bool(getattr(symbol, "is_unsigned", False))
        if isinstance(expr, ast.ArrayIndex):
            symbol = self.resolution.get(id(expr))
            return bool(getattr(symbol, "is_unsigned", False))
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                return False
            return self.expr_is_unsigned(expr.operand)
        if isinstance(expr, ast.IncDec):
            return self.expr_is_unsigned(expr.target)
        if isinstance(expr, ast.Binary):
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                return False  # comparison results are int
            return (self.expr_is_unsigned(expr.left)
                    or self.expr_is_unsigned(expr.right))
        if isinstance(expr, ast.Conditional):
            return (self.expr_is_unsigned(expr.when_true)
                    or self.expr_is_unsigned(expr.when_false))
        if isinstance(expr, ast.Assign):
            return self.expr_is_unsigned(expr.target)
        if isinstance(expr, ast.Call):
            signature = self.functions.get(expr.name)
            return bool(signature and signature.returns_unsigned)
        return False  # literals, logical operators


class _FunctionAnalyzer:
    def __init__(self, info: SemaInfo, function: ast.Function) -> None:
        self.info = info
        self.function = function
        self.scopes: list[dict[str, object]] = []
        self.next_offset = 0
        self.loop_depth = 0
        self.break_depth = 0  #: loops and switches (break targets)

    def run(self) -> None:
        self.scopes.append({})
        unsigned_flags = self.function.param_unsigned or \
            [False] * len(self.function.params)
        for index, name in enumerate(self.function.params):
            if name in self.scopes[0]:
                raise CompileError(f"duplicate parameter {name!r}",
                                   self.function.line)
            self.scopes[0][name] = ParamSym(name, index,
                                            unsigned_flags[index])
        self._block(self.function.body, new_scope=False)
        self.scopes.pop()
        self.info.locals_bytes[self.function.name] = self.next_offset

    # ---- scope helpers ---------------------------------------------------

    def _lookup(self, name: str, line: int):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        symbol = self.info.globals.get(name)
        if symbol is not None:
            return symbol
        raise CompileError(f"undefined variable {name!r}", line)

    def _declare(self, declaration: ast.Declaration) -> None:
        if declaration.array_size is not None:
            raise CompileError(
                "local arrays are not supported (the ISA cannot compute "
                "SP-relative addresses); declare the array at file scope",
                declaration.line)
        scope = self.scopes[-1]
        if declaration.name in scope:
            raise CompileError(
                f"redefinition of {declaration.name!r}", declaration.line)
        symbol = LocalSym(declaration.name, self.next_offset,
                          declaration.is_unsigned)
        self.next_offset += 4
        scope[declaration.name] = symbol
        self.info.resolution[id(declaration)] = symbol
        if declaration.initializer is not None:
            self._expr(declaration.initializer)

    # ---- statements --------------------------------------------------------

    def _statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt, new_scope=stmt.scoped)
        elif isinstance(stmt, ast.Declaration):
            self._declare(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.condition)
            self._statement(stmt.then_branch)
            if stmt.else_branch is not None:
                self._statement(stmt.else_branch)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.condition)
            self._loop_body(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._loop_body(stmt.body)
            self._expr(stmt.condition)
        elif isinstance(stmt, ast.For):
            self.scopes.append({})
            if stmt.init is not None:
                self._statement(stmt.init)
            if stmt.condition is not None:
                self._expr(stmt.condition)
            if stmt.step is not None:
                self._expr(stmt.step)
            self._loop_body(stmt.body)
            self.scopes.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if not self.function.returns_value:
                    raise CompileError(
                        f"void function {self.function.name!r} returns a value",
                        stmt.line)
                self._expr(stmt.value)
        elif isinstance(stmt, ast.Switch):
            self._expr(stmt.selector)
            seen_values: set[int] = set()
            seen_default = False
            for clause in stmt.clauses:
                for value in clause.values:
                    if value in seen_values:
                        raise CompileError(
                            f"duplicate case value {value}", clause.line)
                    seen_values.add(value)
                if clause.is_default:
                    if seen_default:
                        raise CompileError("duplicate default label",
                                           clause.line)
                    seen_default = True
            self.break_depth += 1
            self.scopes.append({})
            for clause in stmt.clauses:
                for inner in clause.statements:
                    self._statement(inner)
            self.scopes.pop()
            self.break_depth -= 1
        elif isinstance(stmt, ast.Break):
            if self.break_depth == 0:
                raise CompileError("break outside a loop or switch",
                                   stmt.line)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise CompileError("continue outside a loop", stmt.line)
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}",
                               stmt.line)

    def _loop_body(self, body: ast.Stmt) -> None:
        self.loop_depth += 1
        self.break_depth += 1
        self._statement(body)
        self.loop_depth -= 1
        self.break_depth -= 1

    def _block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append({})
        for stmt in block.statements:
            self._statement(stmt)
        if new_scope:
            self.scopes.pop()

    # ---- expressions -----------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLiteral):
            return
        if isinstance(expr, ast.VarRef):
            symbol = self._lookup(expr.name, expr.line)
            if isinstance(symbol, GlobalSym) and symbol.is_array:
                raise CompileError(
                    f"array {expr.name!r} used without an index", expr.line)
            self.info.resolution[id(expr)] = symbol
            return
        if isinstance(expr, ast.ArrayIndex):
            base = expr.base
            if not isinstance(base, ast.VarRef):
                raise CompileError("only named arrays can be indexed",
                                   expr.line)
            symbol = self._lookup(base.name, base.line)
            if not (isinstance(symbol, GlobalSym) and symbol.is_array):
                raise CompileError(f"{base.name!r} is not an array",
                                   expr.line)
            self.info.resolution[id(expr)] = symbol
            self._expr(expr.index)
            return
        if isinstance(expr, ast.Unary):
            self._expr(expr.operand)
            return
        if isinstance(expr, ast.IncDec):
            if not isinstance(expr.target, (ast.VarRef, ast.ArrayIndex)):
                raise CompileError(f"{expr.op} needs a variable", expr.line)
            self._expr(expr.target)
            return
        if isinstance(expr, (ast.Binary, ast.Logical)):
            self._expr(expr.left)
            self._expr(expr.right)
            return
        if isinstance(expr, ast.Conditional):
            self._expr(expr.condition)
            self._expr(expr.when_true)
            self._expr(expr.when_false)
            return
        if isinstance(expr, ast.Assign):
            self._expr(expr.target)
            self._expr(expr.value)
            return
        if isinstance(expr, ast.Call):
            signature = self.info.functions.get(expr.name)
            if signature is None:
                raise CompileError(f"call to undefined function {expr.name!r}",
                                   expr.line)
            if len(expr.args) != signature.param_count:
                raise CompileError(
                    f"{expr.name!r} takes {signature.param_count} "
                    f"argument(s), got {len(expr.args)}", expr.line)
            for arg in expr.args:
                self._expr(arg)
            return
        raise CompileError(f"unhandled expression {type(expr).__name__}",
                           expr.line)


def analyze(unit: ast.TranslationUnit) -> SemaInfo:
    """Run semantic analysis over a translation unit."""
    info = SemaInfo()
    for var in unit.globals:
        if var.name in info.globals:
            raise CompileError(f"redefinition of global {var.name!r}",
                               var.line)
        if var.array_size is not None and var.array_size <= 0:
            raise CompileError(f"array {var.name!r} needs a positive size",
                               var.line)
        info.globals[var.name] = GlobalSym(
            var.name, var.array_size, var.initializer, var.is_unsigned)
    for function in unit.functions:
        if function.name in info.functions:
            raise CompileError(f"redefinition of {function.name!r}",
                               function.line)
        if function.name in info.globals:
            raise CompileError(
                f"{function.name!r} is both a global and a function",
                function.line)
        info.functions[function.name] = FuncSym(
            function.name, len(function.params), function.returns_value,
            function.returns_unsigned)
    for function in unit.functions:
        _FunctionAnalyzer(info, function).run()
    return info
