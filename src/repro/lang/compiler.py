"""The crispcc driver: source text → assembled Program.

Pass order: parse → sema → codegen → peephole → branch spreading →
prediction bits → render → assemble. Profile-guided prediction assembles
a heuristic build first, runs it on the functional simulator to collect
per-branch outcome counts, then re-renders with the optimal static bits —
exactly the "optimal setting of a branch prediction bit" Table 1 scores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.assembler import assemble
from repro.asm.program import Program
from repro.lang.asmir import AsmModule
from repro.lang.codegen import generate
from repro.lang.lexer import CompileError
from repro.lang.parser import parse
from repro.lang.passes.peephole import peephole_module
from repro.lang.passes.predict import (
    PredictionMode,
    apply_prediction,
    apply_profile,
)
from repro.lang.passes.spreading import SPREAD_DISTANCE, spread_module
from repro.lang.sema import analyze
from repro.obs.events import EventBus, NULL_BUS


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs the evaluation harness sweeps.

    ``spreading`` enables the Branch Spreading pass; ``prediction``
    selects how static bits are set; ``profile_runs`` caps the functional
    profiling run for :attr:`PredictionMode.PROFILE`.
    """

    spreading: bool = False
    spread_distance: int = SPREAD_DISTANCE
    prediction: PredictionMode = PredictionMode.HEURISTIC
    peephole: bool = True
    simplify: bool = False  #: AST constant folding / algebraic identities
    profile_instruction_budget: int = 10_000_000
    entry_function: str = "main"


def compile_unit(source: str,
                 options: CompilerOptions | None = None,
                 obs: EventBus = NULL_BUS) -> AsmModule:
    """Compile to the assembly-level IR (before prediction bits)."""
    options = options or CompilerOptions()
    unit = parse(source)
    if options.simplify:
        from repro.lang.passes.simplify import simplify_unit
        simplify_unit(unit)
    info = analyze(unit)
    if options.entry_function not in info.functions:
        raise CompileError(f"no {options.entry_function!r} function", 0)
    module = generate(unit, info)
    module.entry_function = options.entry_function
    if options.peephole:
        peephole_module(module)
    if options.spreading:
        spread_module(module, options.spread_distance, obs)
    return module


def _finalize_module(module: AsmModule, options: CompilerOptions,
                     obs: EventBus) -> None:
    """Run the prediction-bit pass (heuristic/forced or profile-guided)."""
    if options.prediction is PredictionMode.PROFILE:
        _profile_and_annotate(module, options, obs)
    else:
        apply_prediction(module, options.prediction, obs)


def compile_to_assembly(source: str,
                        options: CompilerOptions | None = None,
                        obs: EventBus = NULL_BUS) -> str:
    """Compile to assembler source text."""
    options = options or CompilerOptions()
    module = compile_unit(source, options, obs)
    _finalize_module(module, options, obs)
    return module.render()


def compile_source(source: str,
                   options: CompilerOptions | None = None,
                   obs: EventBus = NULL_BUS) -> Program:
    """Compile and assemble into a runnable Program."""
    return assemble(compile_to_assembly(source, options, obs))


@dataclass(frozen=True)
class DebugInfo:
    """Line-table debug information for one compiled translation unit.

    ``line_for_address`` maps each instruction's byte address to the
    1-based mini-C source line it was lowered from (startup-stub and
    synthesized instructions are absent). The optimization passes carry
    lines with the items they move, so spread compares stay attributed
    to their original source line.
    """

    source: str
    line_for_address: dict[int, int]

    def line_at(self, address: int) -> int | None:
        """Source line of the instruction at ``address``, if known."""
        return self.line_for_address.get(address)

    def source_line(self, line: int) -> str:
        """The text of 1-based source line ``line`` (stripped)."""
        lines = self.source.splitlines()
        if 0 < line <= len(lines):
            return lines[line - 1].strip()
        return ""


def compile_with_debug(source: str,
                       options: CompilerOptions | None = None,
                       obs: EventBus = NULL_BUS
                       ) -> tuple[Program, DebugInfo]:
    """Compile like :func:`compile_source`, also returning the line table.

    The assembled :class:`Program`'s instruction indices align with
    :meth:`AsmModule.instructions` (the invariant the profile-guided
    prediction pass already relies on), which is what lets each address
    be stamped with the IR item's recorded source line.
    """
    options = options or CompilerOptions()
    module = compile_unit(source, options, obs)
    _finalize_module(module, options, obs)
    program = assemble(module.render())
    items = module.instructions()
    if len(items) != len(program.instructions):
        raise CompileError(
            "debug-info alignment lost: "
            f"{len(items)} IR items vs {len(program.instructions)} "
            "assembled instructions", 0)
    table = {address: item.line
             for item, address in zip(items, program.addresses)
             if item.line}
    return program, DebugInfo(source=source, line_for_address=table)


def _profile_and_annotate(module: AsmModule,
                          options: CompilerOptions,
                          obs: EventBus = NULL_BUS) -> None:
    from repro.sim.functional import FunctionalSimulator

    apply_prediction(module, PredictionMode.HEURISTIC)
    program = assemble(module.render())
    counts: dict[int, list[int]] = {}

    def hook(pc: int, instruction, taken: bool) -> None:
        index = program.index_of(pc)
        if index is None or not instruction.is_conditional_branch:
            return
        entry = counts.setdefault(index, [0, 0])
        entry[0] += 1 if taken else 0
        entry[1] += 1

    simulator = FunctionalSimulator(program, branch_hook=hook)
    simulator.run(options.profile_instruction_budget)
    apply_profile(module, {index: (taken, total)
                           for index, (taken, total) in counts.items()},
                  obs)
