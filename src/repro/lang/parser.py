"""Recursive-descent parser for the mini-C language."""

from __future__ import annotations

from repro.lang import astnodes as ast
from repro.lang.lexer import CompileError, Token, TokenKind, tokenize

# binary operator precedence (higher binds tighter); && / || / ?: and
# assignment are handled separately for short-circuit / right-assoc
_BINARY_PRECEDENCE = {
    "|": 4, "^": 5, "&": 6,
    "==": 7, "!=": 7,
    "<": 8, "<=": 8, ">": 8, ">=": 8,
    "<<": 9, ">>": 9,
    "+": 10, "-": 10,
    "*": 11, "/": 11, "%": 11,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}


class Parser:
    """Parses a token stream into a :class:`~repro.lang.astnodes.TranslationUnit`."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ---- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def check(self, text: str) -> bool:
        return self.current.text == text and self.current.kind in (
            TokenKind.PUNCT, TokenKind.KEYWORD)

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise CompileError(
                f"expected {text!r}, found {self.current.text or 'end of file'!r}",
                self.current.line)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise CompileError(
                f"expected identifier, found {self.current.text!r}",
                self.current.line)
        return self.advance()

    # ---- top level -------------------------------------------------------------

    def _type_specifier(self) -> bool:
        """Consume ``int`` / ``unsigned`` / ``unsigned int``; return True
        for unsigned."""
        if self.accept("unsigned"):
            self.accept("int")  # optional
            return True
        self.expect("int")
        return False

    def _at_type_specifier(self) -> bool:
        return self.check("int") or self.check("unsigned")

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.current.kind is not TokenKind.EOF:
            is_void = self.check("void")
            is_unsigned = False
            if is_void:
                self.advance()
            else:
                is_unsigned = self._type_specifier()
            name = self.expect_ident()
            if self.check("("):
                unit.functions.append(
                    self._function(name, not is_void, is_unsigned))
            elif is_void:
                raise CompileError("variables must be int", name.line)
            else:
                self._global_vars(name, unit, is_unsigned)
        return unit

    def _function(self, name: Token, returns_value: bool,
                  returns_unsigned: bool) -> ast.Function:
        self.expect("(")
        params: list[str] = []
        param_unsigned: list[bool] = []
        if not self.check(")"):
            if self.accept("void"):
                pass
            else:
                while True:
                    param_unsigned.append(self._type_specifier())
                    params.append(self.expect_ident().text)
                    if not self.accept(","):
                        break
        self.expect(")")
        body = self._block()
        return ast.Function(name.text, params, body,
                            returns_value=returns_value,
                            returns_unsigned=returns_unsigned,
                            param_unsigned=param_unsigned, line=name.line)

    def _global_vars(self, first: Token, unit: ast.TranslationUnit,
                     is_unsigned: bool = False) -> None:
        name = first
        while True:
            array_size = None
            initializer = 0
            if self.accept("["):
                size_token = self.advance()
                if size_token.kind is not TokenKind.INT:
                    raise CompileError("array size must be a constant",
                                       size_token.line)
                array_size = size_token.value
                self.expect("]")
            elif self.accept("="):
                initializer = self._constant_expression()
            unit.globals.append(ast.GlobalVar(
                name.text, array_size, initializer,
                is_unsigned=is_unsigned, line=name.line))
            if self.accept(","):
                name = self.expect_ident()
                continue
            self.expect(";")
            return

    def _constant_expression(self) -> int:
        negative = self.accept("-")
        token = self.advance()
        if token.kind is not TokenKind.INT:
            raise CompileError("global initializers must be constants",
                               token.line)
        return -token.value if negative else token.value

    # ---- statements -----------------------------------------------------------------

    def _block(self) -> ast.Block:
        open_brace = self.expect("{")
        statements: list[ast.Stmt] = []
        while not self.check("}"):
            if self.current.kind is TokenKind.EOF:
                raise CompileError("unterminated block", open_brace.line)
            statements.append(self._statement())
        self.expect("}")
        return ast.Block(statements, line=open_brace.line)

    def _statement(self) -> ast.Stmt:
        token = self.current
        if self.check("{"):
            return self._block()
        if self.accept(";"):
            return ast.Block([], line=token.line)
        if self._at_type_specifier():
            return self._declaration()
        if self.accept("if"):
            self.expect("(")
            condition = self._expression()
            self.expect(")")
            then_branch = self._statement()
            else_branch = self._statement() if self.accept("else") else None
            return ast.If(condition, then_branch, else_branch, line=token.line)
        if self.accept("while"):
            self.expect("(")
            condition = self._expression()
            self.expect(")")
            return ast.While(condition, self._statement(), line=token.line)
        if self.accept("do"):
            body = self._statement()
            self.expect("while")
            self.expect("(")
            condition = self._expression()
            self.expect(")")
            self.expect(";")
            return ast.DoWhile(body, condition, line=token.line)
        if self.accept("for"):
            return self._for(token)
        if self.accept("switch"):
            return self._switch(token)
        if self.accept("return"):
            value = None if self.check(";") else self._expression()
            self.expect(";")
            return ast.Return(value, line=token.line)
        if self.accept("break"):
            self.expect(";")
            return ast.Break(line=token.line)
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue(line=token.line)
        expr = self._expression()
        self.expect(";")
        return ast.ExprStmt(expr, line=token.line)

    def _declaration(self) -> ast.Stmt:
        line = self.current.line
        is_unsigned = self._type_specifier()
        declarations: list[ast.Stmt] = []
        while True:
            name = self.expect_ident()
            array_size = None
            initializer = None
            if self.accept("["):
                size_token = self.advance()
                if size_token.kind is not TokenKind.INT:
                    raise CompileError("array size must be a constant",
                                       size_token.line)
                array_size = size_token.value
                self.expect("]")
            elif self.accept("="):
                initializer = self._assignment()
            declarations.append(ast.Declaration(
                name.text, array_size, initializer,
                is_unsigned=is_unsigned, line=name.line))
            if not self.accept(","):
                break
        self.expect(";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(declarations, scoped=False, line=line)

    def _switch(self, token: Token) -> ast.Switch:
        self.expect("(")
        selector = self._expression()
        self.expect(")")
        self.expect("{")
        clauses: list[ast.CaseClause] = []
        current: ast.CaseClause | None = None
        while not self.check("}"):
            if self.current.kind is TokenKind.EOF:
                raise CompileError("unterminated switch", token.line)
            if self.check("case") or self.check("default"):
                label_token = self.advance()
                is_default = label_token.text == "default"
                value = 0
                if not is_default:
                    negative = self.accept("-")
                    value_token = self.advance()
                    if value_token.kind is not TokenKind.INT:
                        raise CompileError("case labels must be constants",
                                           value_token.line)
                    value = -value_token.value if negative else value_token.value
                self.expect(":")
                # consecutive labels attach to the same clause
                if current is not None and not current.statements:
                    if is_default:
                        current.is_default = True
                    else:
                        current.values.append(value)
                else:
                    current = ast.CaseClause(
                        values=[] if is_default else [value],
                        is_default=is_default, line=label_token.line)
                    clauses.append(current)
                continue
            if current is None:
                raise CompileError("statement before first case label",
                                   self.current.line)
            current.statements.append(self._statement())
        self.expect("}")
        return ast.Switch(selector, clauses, line=token.line)

    def _for(self, token: Token) -> ast.For:
        self.expect("(")
        init: ast.Stmt | None = None
        if self._at_type_specifier():
            init = self._declaration()
        elif not self.check(";"):
            init = ast.ExprStmt(self._expression(), line=self.current.line)
            self.expect(";")
        else:
            self.expect(";")
        condition = None if self.check(";") else self._expression()
        self.expect(";")
        step = None if self.check(")") else self._expression()
        self.expect(")")
        body = self._statement()
        return ast.For(init, condition, step, body, line=token.line)

    # ---- expressions ----------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._assignment()

    def _assignment(self) -> ast.Expr:
        left = self._conditional()
        for op in _ASSIGN_OPS:
            if self.check(op):
                token = self.advance()
                if not isinstance(left, (ast.VarRef, ast.ArrayIndex)):
                    raise CompileError("assignment target must be a variable "
                                       "or array element", token.line)
                value = self._assignment()  # right-associative
                return ast.Assign(left, value, op, line=token.line)
        return left

    def _conditional(self) -> ast.Expr:
        condition = self._logical_or()
        if self.accept("?"):
            when_true = self._expression()
            self.expect(":")
            when_false = self._conditional()
            return ast.Conditional(condition, when_true, when_false,
                                   line=condition.line)
        return condition

    def _logical_or(self) -> ast.Expr:
        left = self._logical_and()
        while self.check("||"):
            line = self.advance().line
            left = ast.Logical("||", left, self._logical_and(), line=line)
        return left

    def _logical_and(self) -> ast.Expr:
        left = self._binary(0)
        while self.check("&&"):
            line = self.advance().line
            left = ast.Logical("&&", left, self._binary(0), line=line)
        return left

    def _binary(self, min_precedence: int) -> ast.Expr:
        left = self._unary()
        while True:
            op = self.current.text
            precedence = _BINARY_PRECEDENCE.get(op)
            if (self.current.kind is not TokenKind.PUNCT
                    or precedence is None or precedence < min_precedence):
                return left
            line = self.advance().line
            right = self._binary(precedence + 1)
            left = ast.Binary(op, left, right, line=line)

    def _unary(self) -> ast.Expr:
        token = self.current
        if self.accept("-"):
            return ast.Unary("-", self._unary(), line=token.line)
        if self.accept("!"):
            return ast.Unary("!", self._unary(), line=token.line)
        if self.accept("~"):
            return ast.Unary("~", self._unary(), line=token.line)
        if self.accept("+"):
            return self._unary()
        if self.accept("++"):
            return ast.IncDec("++", self._unary(), True, line=token.line)
        if self.accept("--"):
            return ast.IncDec("--", self._unary(), True, line=token.line)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            token = self.current
            if self.accept("["):
                index = self._expression()
                self.expect("]")
                expr = ast.ArrayIndex(expr, index, line=token.line)
            elif self.accept("++"):
                expr = ast.IncDec("++", expr, False, line=token.line)
            elif self.accept("--"):
                expr = ast.IncDec("--", expr, False, line=token.line)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT:
            self.advance()
            return ast.IntLiteral(token.value, line=token.line)
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.accept("("):
                args: list[ast.Expr] = []
                if not self.check(")"):
                    while True:
                        args.append(self._assignment())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.Call(token.text, args, line=token.line)
            return ast.VarRef(token.text, line=token.line)
        if self.accept("("):
            expr = self._expression()
            self.expect(")")
            return expr
        raise CompileError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C ``source`` into an AST."""
    return Parser(tokenize(source)).parse_unit()
