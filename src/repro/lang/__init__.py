"""crispcc — a mini-C compiler targeting the CRISP-like ISA.

The paper's results rest on "the application of compiler technology": the
compiler emits *separate* compare and conditional-branch instructions, can
perform **Branch Spreading** (code motion that puts ≥3 independent
instructions between a compare and its branch so the condition code is
architectural when the branch is fetched — zero misprediction cost), and
sets the **static prediction bit** of every conditional branch, either by
heuristic (backward: taken; forward: not taken) or from a profile run.

The language is the integer subset of C used by the paper's evaluation
program and our workload suite: ``int`` scalars and arrays (global and
local), functions, full expression and control-flow syntax.

Typical use::

    from repro.lang import compile_source, CompilerOptions
    program = compile_source(source, CompilerOptions(spreading=True))
"""

from repro.lang.compiler import (
    CompileError,
    CompilerOptions,
    DebugInfo,
    PredictionMode,
    compile_source,
    compile_to_assembly,
    compile_unit,
    compile_with_debug,
)

__all__ = [
    "CompileError",
    "CompilerOptions",
    "DebugInfo",
    "PredictionMode",
    "compile_source",
    "compile_to_assembly",
    "compile_unit",
    "compile_with_debug",
]
