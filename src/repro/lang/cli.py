"""``crisp-cc``: compile mini-C to CRISP assembly (or run it)."""

from __future__ import annotations

import argparse
import sys

from repro.lang.compiler import (
    CompileError,
    CompilerOptions,
    PredictionMode,
    compile_source,
    compile_to_assembly,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-cc",
        description="Compile mini-C for the CRISP-like machine.")
    parser.add_argument("source", help="mini-C source file ('-' for stdin)")
    parser.add_argument("--spread", action="store_true",
                        help="enable branch spreading")
    parser.add_argument("--predict",
                        choices=[m.value for m in PredictionMode],
                        default=PredictionMode.HEURISTIC.value,
                        help="static prediction-bit policy")
    parser.add_argument("--run", action="store_true",
                        help="assemble and run on the functional simulator")
    parser.add_argument("--cycles", action="store_true",
                        help="assemble and run on the cycle-accurate model")
    args = parser.parse_args(argv)

    if args.source == "-":
        text = sys.stdin.read()
    else:
        with open(args.source, encoding="utf-8") as handle:
            text = handle.read()
    options = CompilerOptions(
        spreading=args.spread,
        prediction=PredictionMode(args.predict))
    try:
        if args.cycles:
            from repro.sim.cpu import run_cycle_accurate
            cpu = run_cycle_accurate(compile_source(text, options))
            print(cpu.stats.summary())
        elif args.run:
            from repro.sim.functional import run_program
            simulator = run_program(compile_source(text, options))
            stats = simulator.stats
            print(f"{stats.instructions} instructions, "
                  f"{stats.branches} branches "
                  f"({100 * stats.branch_fraction:.1f}%)")
        else:
            sys.stdout.write(compile_to_assembly(text, options))
    except CompileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
