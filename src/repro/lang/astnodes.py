"""Abstract syntax tree for the mini-C language."""

from __future__ import annotations

from dataclasses import dataclass, field


# ---- expressions -----------------------------------------------------------

@dataclass
class Expr:
    """Base class for expressions."""

    line: int = field(default=0, kw_only=True)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class VarRef(Expr):
    """A reference to a scalar variable or (undecorated) array name."""

    name: str = ""


@dataclass
class ArrayIndex(Expr):
    """``base[index]``."""

    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Unary(Expr):
    """``-x``, ``!x``, ``~x``."""

    op: str = ""
    operand: Expr | None = None


@dataclass
class IncDec(Expr):
    """``++x`` / ``x++`` / ``--x`` / ``x--``."""

    op: str = "++"
    target: Expr | None = None
    is_prefix: bool = True


@dataclass
class Binary(Expr):
    """Arithmetic / bitwise / comparison binary operators."""

    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Logical(Expr):
    """Short-circuit ``&&`` / ``||``."""

    op: str = "&&"
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Conditional(Expr):
    """Ternary ``c ? a : b``."""

    condition: Expr | None = None
    when_true: Expr | None = None
    when_false: Expr | None = None


@dataclass
class Assign(Expr):
    """``target = value`` or compound ``target op= value``."""

    target: Expr | None = None
    value: Expr | None = None
    op: str = "="  #: "=", "+=", "-=", ...


@dataclass
class Call(Expr):
    """Function call."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


# ---- statements ---------------------------------------------------------------

@dataclass
class Stmt:
    """Base class for statements."""

    line: int = field(default=0, kw_only=True)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Declaration(Stmt):
    """``int x;`` / ``int x = e;`` / ``int a[N];`` inside a function."""

    name: str = ""
    array_size: int | None = None
    initializer: Expr | None = None
    is_unsigned: bool = False


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)
    scoped: bool = True  #: False for comma declaration groups (``int a, b;``)


@dataclass
class If(Stmt):
    condition: Expr | None = None
    then_branch: Stmt | None = None
    else_branch: Stmt | None = None


@dataclass
class While(Stmt):
    condition: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    condition: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None  #: ExprStmt or Declaration or None
    condition: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class CaseClause:
    """One arm of a switch: its case values (empty for ``default``) and
    body statements. Falling off the end continues into the next clause
    (C fall-through)."""

    values: list[int] = field(default_factory=list)
    is_default: bool = False
    statements: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Switch(Stmt):
    """``switch`` over an int expression.

    Dense value sets compile to a jump table dispatched through a
    three-parcel *indirect* branch — the construct the paper says its
    compiler occasionally generates indirect branches for.
    """

    selector: Expr | None = None
    clauses: list[CaseClause] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---- top level --------------------------------------------------------------------

@dataclass
class GlobalVar:
    """A file-scope variable or array."""

    name: str
    array_size: int | None = None
    initializer: int = 0
    is_unsigned: bool = False
    line: int = 0


@dataclass
class Function:
    """A function definition."""

    name: str
    params: list[str]
    body: Block
    returns_value: bool = True  #: False for ``void``
    returns_unsigned: bool = False
    param_unsigned: list[bool] = field(default_factory=list)
    line: int = 0


@dataclass
class TranslationUnit:
    """A whole source file."""

    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)
