"""Code generation: AST → assembly-level IR.

The generator mirrors what the paper shows of the AT&T CRISP compiler's
output (Table 3): memory-to-memory two-operand forms when the destination
is also a source (``add sum,i``), three-operand accumulator forms for
subexpressions (``and3 i,1``), an explicit compare before every
conditional branch (``cmp.= Accum,0`` / ``cmp.s< i,1024``), and separate
one-parcel conditional branches whose prediction bit a later pass sets.

Conditional branches are emitted predicting *not taken* (the ``...n``
mnemonics); :mod:`repro.lang.passes.predict` rewrites them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import astnodes as ast
from repro.lang.asmir import (
    AsmFunction,
    AsmItem,
    AsmModule,
    FrameSize,
    StackRef,
    branch,
    indirect_branch,
    instr,
    label,
)
from repro.lang.lexer import CompileError
from repro.lang.sema import (
    GlobalSym,
    LocalSym,
    ParamSym,
    SemaInfo,
    analyze,
)

_BINARY3 = {
    "+": "add3", "-": "sub3", "*": "mul3", "/": "div3", "%": "rem3",
    "&": "and3", "|": "or3", "^": "xor3", "<<": "shl3", ">>": "sar3",
}
_BINARY2 = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "sar",
}
_COMPARE = {
    "==": "cmp.=", "!=": "cmp.!=",
    "<": "cmp.s<", "<=": "cmp.s<=", ">": "cmp.s>", ">=": "cmp.s>=",
}
_UCOMPARE = {
    "==": "cmp.=", "!=": "cmp.!=",
    "<": "cmp.u<", "<=": "cmp.u<=", ">": "cmp.u>", ">=": "cmp.u>=",
}
_COMMUTATIVE = {"+", "*", "&", "|", "^"}
_COMPOUND_OPS = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


@dataclass(frozen=True)
class Place:
    """Where a value lives: the operand the next instruction should use.

    ``kind``: ``imm`` (value), ``imm_sym`` (address-of a global array),
    ``global`` (name + byte offset), ``stack`` (a :class:`StackRef`),
    ``acc`` or ``acc_ind``.
    """

    kind: str
    value: int = 0
    name: str = ""
    ref: StackRef | None = None

    @property
    def uses_acc(self) -> bool:
        """True if the place is invalidated by the next accumulator write."""
        return self.kind in ("acc", "acc_ind")

    @property
    def is_imm(self) -> bool:
        return self.kind in ("imm", "imm_sym")

    def operand(self):
        """Render as an assembly operand."""
        if self.kind == "imm":
            return f"${self.value}"
        if self.kind == "imm_sym":
            return f"${self.name}"
        if self.kind == "global":
            return self.name if self.value == 0 else f"{self.name}+{self.value}"
        if self.kind == "stack":
            assert self.ref is not None
            return self.ref
        if self.kind == "acc":
            return "Accum"
        return "(Accum)"


def imm_place(value: int) -> Place:
    return Place("imm", value)


ACC_PLACE = Place("acc")
ACC_IND_PLACE = Place("acc_ind")


class _LoopContext:
    """break/continue targets of an enclosing loop or switch.

    ``is_switch`` marks switch contexts: ``break`` targets the innermost
    context of either kind, while ``continue`` skips switches and targets
    the innermost *loop*.
    """

    def __init__(self, break_label: str, continue_label: str | None,
                 is_switch: bool = False) -> None:
        self.break_label = break_label
        self.continue_label = continue_label
        self.is_switch = is_switch
        self.break_used = False
        self.continue_used = False


class FunctionGenerator:
    """Generates one function's assembly IR."""

    def __init__(self, info: SemaInfo, function: ast.Function,
                 label_prefix: str) -> None:
        self.info = info
        self.function = function
        self.prefix = label_prefix
        self.items: list[AsmItem] = []
        self.locals_bytes = info.locals_bytes[function.name]
        self.temps_in_use = 0
        self.max_temps = 0
        self.push_depth = 0
        self.label_counter = 0
        self.loops: list[_LoopContext] = []
        self.switch_tables: list[tuple[str, list[str]]] = []
        self.current_line = 0  #: source line of the statement being lowered

    # ---- small helpers -----------------------------------------------------

    def emit(self, item: AsmItem) -> None:
        if item.line is None and self.current_line:
            item.line = self.current_line
        self.items.append(item)

    def new_label(self, hint: str = "L") -> str:
        self.label_counter += 1
        return f"{self.prefix}.{hint}{self.label_counter}"

    def alloc_temp(self) -> Place:
        offset = self.locals_bytes + 4 * self.temps_in_use
        self.temps_in_use += 1
        self.max_temps = max(self.max_temps, self.temps_in_use)
        return Place("stack", ref=StackRef("temp", offset, self.push_depth))

    def release_temps(self, mark: int) -> None:
        self.temps_in_use = mark

    def stack_place(self, symbol) -> Place:
        if isinstance(symbol, LocalSym):
            return Place("stack",
                         ref=StackRef("local", symbol.offset, self.push_depth))
        assert isinstance(symbol, ParamSym)
        return Place("stack",
                     ref=StackRef("param", symbol.offset, self.push_depth))

    def spill(self, place: Place) -> Place:
        """Copy an accumulator-resident value into a temp slot."""
        temp = self.alloc_temp()
        self.emit(instr("mov", temp.operand(), place.operand()))
        return temp

    def _unsigned_pair(self, left: ast.Expr, right: ast.Expr) -> bool:
        """C's usual arithmetic conversions: unsigned wins."""
        return (self.info.expr_is_unsigned(left)
                or self.info.expr_is_unsigned(right))

    def _binary3_mnemonic(self, op: str, left: ast.Expr,
                          right: ast.Expr) -> str:
        if op == ">>":
            return "shr3" if self._unsigned_pair(left, right) else "sar3"
        if op == "/":
            return "udiv3" if self._unsigned_pair(left, right) else "div3"
        if op == "%":
            return "urem3" if self._unsigned_pair(left, right) else "rem3"
        return _BINARY3[op]

    def _binary2_mnemonic(self, op: str, target: ast.Expr,
                          value: ast.Expr) -> str:
        if op == ">>":
            return "shr" if self._unsigned_pair(target, value) else "sar"
        if op == "/":
            return "udiv" if self._unsigned_pair(target, value) else "div"
        if op == "%":
            return "urem" if self._unsigned_pair(target, value) else "rem"
        return _BINARY2[op]

    def _compare_mnemonic(self, op: str, left: ast.Expr,
                          right: ast.Expr) -> str:
        table = _UCOMPARE if self._unsigned_pair(left, right) else _COMPARE
        return table[op]

    @staticmethod
    def is_leaf(expr: ast.Expr) -> bool:
        """True when generating the expression emits no instructions."""
        if isinstance(expr, (ast.IntLiteral, ast.VarRef)):
            return True
        return (isinstance(expr, ast.ArrayIndex)
                and isinstance(expr.index, ast.IntLiteral))

    # ---- function body -----------------------------------------------------------

    def run(self) -> AsmFunction:
        self.emit(instr("enter", FrameSize()))
        self._block(self.function.body)
        if not (self.items and self.items[-1].mnemonic == "return"):
            self._emit_epilogue()
        result = AsmFunction(self.function.name, self.items)
        result.frame_size = self.locals_bytes + 4 * self.max_temps
        for _, entries in self.switch_tables:
            result.protected_labels.update(entries)
        return result

    def _emit_epilogue(self) -> None:
        self.emit(instr("spadd", FrameSize()))
        self.emit(instr("return"))

    # ---- statements ------------------------------------------------------------------

    def _block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._statement(stmt)

    def _statement(self, stmt: ast.Stmt) -> None:
        mark = self.temps_in_use
        if stmt.line:
            self.current_line = stmt.line
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.Declaration):
            if stmt.initializer is not None:
                symbol = self.info.resolve(stmt)
                self._assign_simple(self.stack_place(symbol), stmt.initializer)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._expr_for_effect(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                place = self.gen_expr(stmt.value)
                if place.kind != "acc":
                    self.emit(instr("mov", "Accum", place.operand()))
            self._emit_epilogue()
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt)
        elif isinstance(stmt, ast.Break):
            self.loops[-1].break_used = True
            self.emit(branch("jmp", self.loops[-1].break_label))
        elif isinstance(stmt, ast.Continue):
            loop = next(context for context in reversed(self.loops)
                        if not context.is_switch)
            loop.continue_used = True
            assert loop.continue_label is not None
            self.emit(branch("jmp", loop.continue_label))
        else:
            raise CompileError(f"cannot generate {type(stmt).__name__}",
                               stmt.line)
        self.release_temps(mark)

    def _if(self, stmt: ast.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        target = else_label if stmt.else_branch is not None else end_label
        self.gen_branch(stmt.condition, target, False)
        self._statement(stmt.then_branch)
        if stmt.else_branch is not None:
            self.emit(branch("jmp", end_label))
            self.emit(label(else_label))
            self._statement(stmt.else_branch)
        self.emit(label(end_label))

    def _loop(self, condition: ast.Expr | None, body: ast.Stmt,
              step: ast.Expr | None, test_first: bool) -> None:
        body_label = self.new_label("body")
        test_label = self.new_label("test")
        context = _LoopContext(self.new_label("brk"), self.new_label("cont"))
        self.loops.append(context)
        if test_first and condition is not None:
            self.emit(branch("jmp", test_label))
        self.emit(label(body_label))
        self._statement(body)
        if context.continue_used:
            self.emit(label(context.continue_label))
        if step is not None:
            if getattr(step, "line", 0):
                self.current_line = step.line
            self._expr_for_effect(step)
        if condition is not None:
            self.emit(label(test_label))
            self.gen_branch(condition, body_label, True)
        else:
            self.emit(branch("jmp", body_label))
        self.loops.pop()
        if context.break_used:
            self.emit(label(context.break_label))

    # dense-table heuristic: table entries allowed per case value
    SWITCH_TABLE_DENSITY = 3
    SWITCH_TABLE_MIN_CASES = 3

    def _switch(self, stmt: ast.Switch) -> None:
        end_label = self.new_label("swend")
        clause_labels = [self.new_label("case") for _ in stmt.clauses]
        default_label = end_label
        for label_name, clause in zip(clause_labels, stmt.clauses):
            if clause.is_default:
                default_label = label_name

        selector = self.gen_expr(stmt.selector)
        if selector.uses_acc:
            selector = self.spill(selector)

        cases = [(value, clause_labels[i])
                 for i, clause in enumerate(stmt.clauses)
                 for value in clause.values]
        if self._switch_is_dense(cases):
            self._switch_dispatch_table(selector, cases, default_label)
        else:
            self._switch_dispatch_chain(selector, cases, default_label)

        context = _LoopContext(end_label, None, is_switch=True)
        self.loops.append(context)
        for label_name, clause in zip(clause_labels, stmt.clauses):
            self.emit(label(label_name))
            for inner in clause.statements:
                self._statement(inner)
        self.loops.pop()
        self.emit(label(end_label))

    def _switch_is_dense(self, cases: list[tuple[int, str]]) -> bool:
        if len(cases) < self.SWITCH_TABLE_MIN_CASES:
            return False
        values = [value for value, _ in cases]
        span = max(values) - min(values) + 1
        return span <= self.SWITCH_TABLE_DENSITY * len(cases)

    def _switch_dispatch_chain(self, selector: Place,
                               cases: list[tuple[int, str]],
                               default_label: str) -> None:
        for value, label_name in cases:
            self.emit(instr("cmp.=", selector.operand(), f"${value}"))
            self.emit(branch("iftjmpn", label_name))
        self.emit(branch("jmp", default_label))

    def _switch_dispatch_table(self, selector: Place,
                               cases: list[tuple[int, str]],
                               default_label: str) -> None:
        """Jump-table dispatch through an indirect branch — the paper:
        indirect branches are 'only occasionally generated by our
        compiler for such constructs as case statements'."""
        values = [value for value, _ in cases]
        low, high = min(values), max(values)
        table_name = self.new_label("swtbl")
        by_value = dict(cases)
        entries = [by_value.get(value, default_label)
                   for value in range(low, high + 1)]
        self.switch_tables.append((table_name, entries))

        self.emit(instr("cmp.s<", selector.operand(), f"${low}"))
        self.emit(branch("iftjmpn", default_label))
        self.emit(instr("cmp.s>", selector.operand(), f"${high}"))
        self.emit(branch("iftjmpn", default_label))
        self.emit(instr("sub3", selector.operand(), f"${low}"))
        self.emit(instr("shl3", "Accum", "$2"))
        self.emit(instr("add", "Accum", f"${table_name}"))
        slot = self.alloc_temp()
        self.emit(instr("mov", slot.operand(), "(Accum)"))
        assert slot.ref is not None
        self.emit(indirect_branch("jmp", slot.ref))

    def _while(self, stmt: ast.While) -> None:
        self._loop(stmt.condition, stmt.body, None, test_first=True)

    def _do_while(self, stmt: ast.DoWhile) -> None:
        self._loop(stmt.condition, stmt.body, None, test_first=False)

    def _for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._statement(stmt.init)
        self._loop(stmt.condition, stmt.body, stmt.step, test_first=True)

    # ---- conditions -------------------------------------------------------------------

    def gen_branch(self, condition: ast.Expr, target: str,
                   sense: bool) -> None:
        """Emit code transferring to ``target`` iff ``condition`` is
        truthy == ``sense`` (separate compare + conditional branch)."""
        if getattr(condition, "line", 0):
            # loop conditions are re-lowered at the loop bottom; charge the
            # compare/branch to the condition's own source line, not the
            # last body statement's
            self.current_line = condition.line
        if isinstance(condition, ast.IntLiteral):
            if bool(condition.value) == sense:
                self.emit(branch("jmp", target))
            return
        if isinstance(condition, ast.Unary) and condition.op == "!":
            self.gen_branch(condition.operand, target, not sense)
            return
        if isinstance(condition, ast.Logical):
            self._logical_branch(condition, target, sense)
            return
        if isinstance(condition, ast.Binary) and condition.op in _COMPARE:
            mnemonic = self._compare_mnemonic(
                condition.op, condition.left, condition.right)
            left, right = self._operand_pair(condition.left, condition.right)
            self.emit(instr(mnemonic, left.operand(), right.operand()))
            self.emit(branch("iftjmpn" if sense else "iffjmpn", target))
            return
        place = self.gen_expr(condition)
        self.emit(instr("cmp.!=", place.operand(), "$0"))
        self.emit(branch("iftjmpn" if sense else "iffjmpn", target))

    def _logical_branch(self, condition: ast.Logical, target: str,
                        sense: bool) -> None:
        if (condition.op == "&&") == sense:
            # both operands must pass: short-circuit around the target
            skip = self.new_label("sc")
            self.gen_branch(condition.left, skip, not sense)
            self.gen_branch(condition.right, target, sense)
            self.emit(label(skip))
        else:
            self.gen_branch(condition.left, target, sense)
            self.gen_branch(condition.right, target, sense)

    def _operand_pair(self, left_expr: ast.Expr,
                      right_expr: ast.Expr) -> tuple[Place, Place]:
        """Generate two operands, spilling so at most one is in the
        accumulator."""
        left = self.gen_expr(left_expr)
        if left.uses_acc and not self.is_leaf(right_expr):
            left = self.spill(left)
        right = self.gen_expr(right_expr)
        return left, right

    # ---- expressions --------------------------------------------------------------------

    def _expr_for_effect(self, expr: ast.Expr) -> None:
        """Evaluate for side effects only (statement context)."""
        if isinstance(expr, ast.IncDec):
            target = self._writable_place(expr.target)
            self.emit(instr("add" if expr.op == "++" else "sub",
                            target.operand(), "$1"))
            return
        if isinstance(expr, ast.Assign):
            self._assign(expr)
            return
        if isinstance(expr, ast.Call):
            self.gen_call(expr)
            return
        if self.is_leaf(expr):
            return  # pure leaf: no effect
        self.gen_expr(expr)

    def gen_expr(self, expr: ast.Expr) -> Place:
        """Evaluate an expression; return the place holding its value."""
        if isinstance(expr, ast.IntLiteral):
            return imm_place(expr.value)
        if isinstance(expr, ast.VarRef):
            symbol = self.info.resolve(expr)
            if isinstance(symbol, GlobalSym):
                return Place("global", name=symbol.name)
            return self.stack_place(symbol)
        if isinstance(expr, ast.ArrayIndex):
            return self._array_place(expr)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.IncDec):
            return self._incdec_value(expr)
        if isinstance(expr, ast.Binary):
            if expr.op in _COMPARE:
                return self._materialize_bool(expr)
            return self._binary(expr)
        if isinstance(expr, ast.Logical):
            return self._materialize_bool(expr)
        if isinstance(expr, ast.Conditional):
            return self._conditional(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.Call):
            return self.gen_call(expr)
        raise CompileError(f"cannot generate {type(expr).__name__}",
                           expr.line)

    def _array_place(self, expr: ast.ArrayIndex) -> Place:
        symbol = self.info.resolve(expr)
        if isinstance(expr.index, ast.IntLiteral):
            offset = 4 * expr.index.value
            if offset < 0 or offset >= 4 * symbol.array_size:
                raise CompileError(
                    f"index {expr.index.value} outside array "
                    f"{symbol.name!r}", expr.line)
            return Place("global", value=offset, name=symbol.name)
        index = self.gen_expr(expr.index)
        if index.kind == "acc":
            self.emit(instr("shl3", "Accum", "$2"))
        elif index.kind == "acc_ind":
            index = self.spill(index)
            self.emit(instr("shl3", index.operand(), "$2"))
        else:
            self.emit(instr("shl3", index.operand(), "$2"))
        self.emit(instr("add", "Accum", f"${symbol.name}"))
        return ACC_IND_PLACE

    def _unary(self, expr: ast.Unary) -> Place:
        if expr.op == "!":
            return self._materialize_bool(expr)
        operand = self.gen_expr(expr.operand)
        if expr.op == "-":
            if operand.kind == "imm":
                return imm_place(-operand.value)
            self.emit(instr("sub3", "$0", operand.operand()))
        else:  # "~"
            if operand.kind == "imm":
                return imm_place(~operand.value)
            self.emit(instr("xor3", operand.operand(), "$-1"))
        return ACC_PLACE

    def _incdec_value(self, expr: ast.IncDec) -> Place:
        target = self._writable_place(expr.target)
        mnemonic = "add" if expr.op == "++" else "sub"
        if expr.is_prefix:
            self.emit(instr(mnemonic, target.operand(), "$1"))
            return target
        temp = self.alloc_temp()
        self.emit(instr("mov", temp.operand(), target.operand()))
        self.emit(instr(mnemonic, target.operand(), "$1"))
        return temp

    def _binary(self, expr: ast.Binary) -> Place:
        if (isinstance(expr.left, ast.IntLiteral)
                and isinstance(expr.right, ast.IntLiteral)):
            return imm_place(_fold_constant(expr.op, expr.left.value,
                                            expr.right.value))
        mnemonic = self._binary3_mnemonic(expr.op, expr.left, expr.right)
        left, right = self._operand_pair(expr.left, expr.right)
        self.emit(instr(mnemonic, left.operand(), right.operand()))
        return ACC_PLACE

    def _materialize_bool(self, expr: ast.Expr) -> Place:
        temp = self.alloc_temp()
        done = self.new_label("bool")
        self.emit(instr("mov", temp.operand(), "$1"))
        self.gen_branch(expr, done, True)
        self.emit(instr("mov", temp.operand(), "$0"))
        self.emit(label(done))
        return temp

    def _conditional(self, expr: ast.Conditional) -> Place:
        temp = self.alloc_temp()
        else_label = self.new_label("celse")
        end_label = self.new_label("cend")
        self.gen_branch(expr.condition, else_label, False)
        place = self.gen_expr(expr.when_true)
        self.emit(instr("mov", temp.operand(), place.operand()))
        self.emit(branch("jmp", end_label))
        self.emit(label(else_label))
        place = self.gen_expr(expr.when_false)
        self.emit(instr("mov", temp.operand(), place.operand()))
        self.emit(label(end_label))
        return temp

    # ---- assignment -------------------------------------------------------------------------

    def _writable_place(self, target: ast.Expr) -> Place:
        """Place for an assignment target (may compute an address)."""
        if isinstance(target, ast.VarRef):
            symbol = self.info.resolve(target)
            if isinstance(symbol, GlobalSym):
                return Place("global", name=symbol.name)
            return self.stack_place(symbol)
        assert isinstance(target, ast.ArrayIndex)
        return self._array_place(target)

    def _assign(self, expr: ast.Assign) -> Place:
        if expr.op != "=":
            return self._compound_assign(expr)
        if isinstance(expr.target, ast.VarRef) or isinstance(
                expr.target, ast.ArrayIndex) and isinstance(
                expr.target.index, ast.IntLiteral):
            target = self._writable_place(expr.target)
            self._assign_simple(target, expr.value)
            return target
        # dynamic array element: evaluate the value first (address
        # computation will clobber the accumulator)
        value = self.gen_expr(expr.value)
        if value.uses_acc:
            value = self.spill(value)
        target = self._writable_place(expr.target)
        self.emit(instr("mov", target.operand(), value.operand()))
        return value

    def _assign_simple(self, target: Place, value: ast.Expr) -> None:
        """``target = value`` where the target place is address-stable."""
        # x = x op e  ->  op x, e   (and the commutative mirror)
        if isinstance(value, ast.Binary) and value.op in _BINARY2:
            rewritten = self._as_inplace_op(target, value)
            if rewritten is not None:
                return
        place = self.gen_expr(value)
        if place.operand() != target.operand():
            self.emit(instr("mov", target.operand(), place.operand()))

    def _as_inplace_op(self, target: Place,
                       value: ast.Binary) -> bool | None:
        """Try emitting ``op target, src`` for ``target = target op src``."""
        def places_equal(expr: ast.Expr) -> bool:
            if not self.is_leaf(expr):
                return False
            return self.gen_leaf(expr).operand() == target.operand()

        if places_equal(value.left) and self.is_leaf(value.right):
            source = self.gen_leaf(value.right)
            self.emit(instr(
                self._binary2_mnemonic(value.op, value.left, value.right),
                target.operand(), source.operand()))
            return True
        if (value.op in _COMMUTATIVE and places_equal(value.right)
                and self.is_leaf(value.left)):
            source = self.gen_leaf(value.left)
            self.emit(instr(_BINARY2[value.op], target.operand(),
                            source.operand()))
            return True
        return None

    def gen_leaf(self, expr: ast.Expr) -> Place:
        """Place for a leaf expression (emits nothing)."""
        assert self.is_leaf(expr)
        return self.gen_expr(expr)

    def _compound_assign(self, expr: ast.Assign) -> Place:
        op = _COMPOUND_OPS[expr.op]
        mnemonic = self._binary2_mnemonic(op, expr.target, expr.value)
        if (isinstance(expr.target, ast.ArrayIndex)
                and not isinstance(expr.target.index, ast.IntLiteral)):
            value = self.gen_expr(expr.value)
            if value.uses_acc:
                value = self.spill(value)
            target = self._writable_place(expr.target)
            self.emit(instr(mnemonic, target.operand(), value.operand()))
            return target
        target = self._writable_place(expr.target)
        value = self.gen_expr(expr.value)
        self.emit(instr(mnemonic, target.operand(), value.operand()))
        return target

    # ---- calls ------------------------------------------------------------------------------------

    def gen_call(self, expr: ast.Call) -> Place:
        arg_places = []
        for arg in expr.args:
            place = self.gen_expr(arg)
            if place.uses_acc:
                place = self.spill(place)
            arg_places.append(place)
        arg_bytes = 4 * len(expr.args)
        if arg_bytes:
            self.emit(instr("enter", f"{arg_bytes}"))
            self.push_depth += arg_bytes
            for index, place in enumerate(arg_places):
                source = place
                if place.kind == "stack":
                    assert place.ref is not None
                    source = Place("stack", ref=StackRef(
                        place.ref.kind, place.ref.offset, self.push_depth))
                self.emit(instr("mov", f"{4 * index}(sp)", source.operand()))
        self.emit(branch("call", expr.name))
        if arg_bytes:
            self.emit(instr("spadd", f"{arg_bytes}"))
            self.push_depth -= arg_bytes
        return ACC_PLACE


def _fold_constant(op: str, left: int, right: int) -> int:
    import operator
    table = {
        "+": operator.add, "-": operator.sub, "*": operator.mul,
        "&": operator.and_, "|": operator.or_, "^": operator.xor,
        "<<": operator.lshift, ">>": operator.rshift,
    }
    if op == "/":
        return int(left / right) if right else 0
    if op == "%":
        return left - int(left / right) * right if right else 0
    return table[op](left, right)


def generate(unit: ast.TranslationUnit,
             info: SemaInfo | None = None) -> AsmModule:
    """Generate an :class:`~repro.lang.asmir.AsmModule` for a unit."""
    if info is None:
        info = analyze(unit)
    module = AsmModule()
    for var in unit.globals:
        if var.array_size is not None:
            module.data_lines.append(f".reserve {var.name}, {var.array_size}")
        else:
            module.data_lines.append(f".word {var.name}, {var.initializer}")
    for function in unit.functions:
        generator = FunctionGenerator(info, function, function.name)
        module.functions.append(generator.run())
        for table_name, entries in generator.switch_tables:
            module.data_lines.append(
                f".word {table_name}, " + ", ".join(entries))
    return module
