"""Constraint-shaped assembly program generator for the fuzzer.

Programs are generated as ``.s`` text and pushed through the real
assembler, so the fuzzer exercises the same encode path users do. The
shape grammar guarantees termination by construction:

* every control-transfer is **forward** except loop back-edges;
* each loop decrements a dedicated counter word that nothing in its
  body writes, so back-edges fire a bounded number of times;
* subroutines live after ``halt``, balance their frames and ``return``;
* indirect jumps read jump-table words that hold forward labels;
* divide-class opcodes only ever see non-zero immediate divisors, and
  shift counts are immediate and small.

``generate_source(seed, profile)`` is pure: the same (seed, profile)
pair yields the same text on any host or process (seeding goes through
``zlib.crc32``, never the salted builtin ``hash``). Profiles skew the
block mix toward different coverage territory:

``branch-dense``
    short blocks, many folded/standalone conditional branches.
``fold-chains``
    long runs of contiguous body+branch folds (the paper's zero-time
    branch motif), including folded unconditional ``jmp`` chains.
``interlock-heavy``
    compare-to-branch distances 0–2, mispredict-prone prediction bits,
    loops whose exit bit is wrong by construction.
``mixed-width``
    3-parcel bodies (still foldable), 5-parcel bodies (standalone
    branches), long conditional jumps, indirect targets.
``fold-verify``
    counted loops whose foldable back-edge is taken for every
    iteration but the last — under ``FoldPolicy.dynamic`` the predictor
    warms up (declined), saturates (confirmed) and is finally wrong
    once (recovered), walking the whole fold-verify coverage axis.
``mixed``
    a blend of all of the above.
"""

from __future__ import annotations

import random
import zlib

DATA_BASE = 0x8000  #: must match the assembler default the runner uses

PROFILES = ("branch-dense", "fold-chains", "interlock-heavy",
            "mixed-width", "fold-verify", "mixed")

_ALU2 = ("mov", "add", "sub", "and", "or", "xor", "mul", "not", "neg")
_ALU3 = ("add3", "sub3", "and3", "or3", "xor3", "mul3")
_SHIFTS2 = ("shl", "shr", "sar")
_DIVS2 = ("div", "rem", "udiv", "urem")
_DIVS3 = ("div3", "rem3", "udiv3", "urem3")
_CONDS = ("=", "!=", "s<", "s<=", "s>", "s>=", "u<", "u<=", "u>", "u>=")
_SHORT_CONDJMP = ("iftjmpy", "iftjmpn", "iffjmpy", "iffjmpn")
_LONG_CONDJMP = ("iftjmply", "iftjmpln", "iffjmply", "iffjmpln")

#: per-profile weights for the block shapes drawn at the top level
_WEIGHTS = {
    "branch-dense": {"filler": 1, "fold_play": 6, "standalone_play": 4,
                     "long_condjmp": 3, "override_play": 3, "loop": 3,
                     "fold_chain": 1, "call": 1, "indirect": 1, "acc": 1,
                     "wide": 0},
    "fold-chains": {"filler": 1, "fold_play": 3, "standalone_play": 1,
                    "long_condjmp": 1, "override_play": 1, "loop": 2,
                    "fold_chain": 8, "call": 1, "indirect": 1, "acc": 1,
                    "wide": 0},
    "interlock-heavy": {"filler": 1, "fold_play": 8, "standalone_play": 3,
                        "long_condjmp": 1, "override_play": 1, "loop": 6,
                        "fold_chain": 1, "call": 1, "indirect": 0, "acc": 1,
                        "wide": 0},
    "mixed-width": {"filler": 2, "fold_play": 3, "standalone_play": 3,
                    "long_condjmp": 4, "override_play": 1, "loop": 2,
                    "fold_chain": 1, "call": 2, "indirect": 3, "acc": 2,
                    "wide": 6},
    "fold-verify": {"filler": 1, "fold_play": 3, "standalone_play": 1,
                    "long_condjmp": 1, "override_play": 1, "loop": 2,
                    "fold_chain": 1, "call": 1, "indirect": 1, "acc": 1,
                    "wide": 0, "fv_loop": 8},
    "mixed": {"filler": 2, "fold_play": 4, "standalone_play": 3,
              "long_condjmp": 2, "override_play": 2, "loop": 3,
              "fold_chain": 2, "call": 2, "indirect": 2, "acc": 2,
              "wide": 2, "fv_loop": 1},
}


class _Gen:
    def __init__(self, rng: random.Random, profile: str) -> None:
        self.rng = rng
        self.profile = profile
        self.lines: list[str] = []
        self.data: list[tuple[str, object]] = []  #: (name, value-or-label)
        self.n_labels = 0
        self.n_counters = 0
        self.n_subs = rng.randint(1, 3)
        #: None at top level (sp above the stack, any small offset is
        #: scratch); inside a subroutine, offsets must stay below the
        #: frame size or they would clobber the saved return address
        self.frame: int | None = None
        self.data_names: list[str] = []
        for i in range(rng.randint(3, 6)):
            name = f"d{i}"
            self.data.append((name, rng.randint(0, 999)))
            self.data_names.append(name)

    # ---- small helpers -----------------------------------------------------

    def label(self) -> str:
        self.n_labels += 1
        return f"L{self.n_labels}"

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def place(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def data_word(self, value: object) -> tuple[str, int]:
        """Declare a data word; returns (name, absolute address)."""
        name = f"w{len(self.data)}"
        address = DATA_BASE + 4 * len(self.data)
        self.data.append((name, value))
        return name, address

    # ---- operand pool ------------------------------------------------------

    def sp_slot(self) -> str | None:
        if self.frame is None:
            offsets = (0, 4, 8)
        else:
            offsets = tuple(range(0, self.frame - 4, 4))
        if not offsets:
            return None
        return f"{self.rng.choice(offsets)}(sp)"

    def dst(self, wide: bool = False) -> str:
        roll = self.rng.random()
        if roll < 0.55:
            return self.rng.choice(self.data_names)
        if roll < 0.75:
            return "Accum"
        return self.sp_slot() or self.rng.choice(self.data_names)

    def src(self, wide: bool = False) -> str:
        roll = self.rng.random()
        if roll < 0.35:
            if wide or self.rng.random() < 0.3:
                return f"${self.rng.randint(-40_000, 40_000)}"
            return f"${self.rng.randint(-8, 7)}"
        if roll < 0.75:
            return self.rng.choice(self.data_names)
        if roll < 0.9:
            return "Accum"
        return self.sp_slot() or self.rng.choice(self.data_names)

    def filler(self, wide: bool = False) -> None:
        """One random non-branch, non-compare instruction."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.45:
            self.emit(f"{rng.choice(_ALU2)} {self.dst(wide)}, {self.src(wide)}")
        elif roll < 0.65:
            self.emit(f"{rng.choice(_ALU3)} {self.src(wide)}, {self.src(wide)}")
        elif roll < 0.75:
            self.emit(f"{rng.choice(_SHIFTS2)} {self.dst()}, "
                      f"${rng.randint(0, 7)}")
        elif roll < 0.85:
            self.emit(f"{rng.choice(_DIVS2)} {self.dst()}, "
                      f"${rng.randint(1, 7)}")
        elif roll < 0.95:
            self.emit(f"{rng.choice(_DIVS3)} {self.src()}, "
                      f"${rng.randint(1, 7)}")
        else:
            self.emit("nop")

    def wide_filler(self) -> None:
        """A 5-parcel body: two extended operands (never folds)."""
        self.emit(f"{self.rng.choice(('mov', 'add', 'xor'))} "
                  f"{self.rng.choice(self.data_names)}, "
                  f"${self.rng.randint(10_000, 99_999)}")

    def compare(self) -> None:
        self.emit(f"cmp.{self.rng.choice(_CONDS)} {self.src()}, {self.src()}")

    # ---- block shapes ------------------------------------------------------

    def blk_filler(self) -> None:
        for _ in range(self.rng.randint(1, 3)):
            self.filler()

    def blk_wide(self) -> None:
        for _ in range(self.rng.randint(1, 2)):
            self.filler(wide=True)
        self.wide_filler()

    def blk_fold_play(self) -> None:
        """compare → (0..2 fillers) → folded short condjmp forward."""
        rng = self.rng
        self.compare()
        for _ in range(rng.randint(0, 2)):
            self.filler()
        target = self.label()
        self.emit(f"{rng.choice(_SHORT_CONDJMP)} {target}")
        for _ in range(rng.randint(1, 2)):
            self.filler()
        self.place(target)

    def blk_standalone_play(self) -> None:
        """compare → wide body → standalone short condjmp forward."""
        self.compare()
        if self.rng.random() < 0.5:
            self.filler()
        self.wide_filler()  # 5 parcels: the branch cannot fold into it
        target = self.label()
        self.emit(f"{self.rng.choice(_SHORT_CONDJMP)} {target}")
        self.filler()
        self.place(target)

    def blk_long_condjmp(self) -> None:
        self.compare()
        for _ in range(self.rng.randint(0, 3)):
            self.filler()
        target = self.label()
        self.emit(f"{self.rng.choice(_LONG_CONDJMP)} {target}")
        self.filler()
        self.place(target)

    def blk_override_play(self) -> None:
        """compare settled ≥3 entries before the branch: no interlock."""
        self.compare()
        for _ in range(self.rng.randint(3, 4)):
            self.filler()
        target = self.label()
        self.emit(f"{self.rng.choice(_SHORT_CONDJMP)} {target}")
        self.filler()
        self.place(target)

    def blk_fold_chain(self) -> None:
        """Contiguous folded entries: body+jmp pairs falling forward."""
        rng = self.rng
        for _ in range(rng.randint(2, 5)):
            target = self.label()
            if rng.random() < 0.4:
                self.compare()
                self.emit(f"{rng.choice(_SHORT_CONDJMP)} {target}")
            else:
                self.filler()
                self.emit(f"jmp {target}")
            self.place(target)

    def blk_loop(self) -> None:
        rng = self.rng
        counter = f"c{self.n_counters}"
        self.n_counters += 1
        self.data.append((counter, 0))
        head = self.label()
        self.emit(f"mov {counter}, ${rng.randint(2, 5)}")
        self.place(head)
        for _ in range(rng.randint(1, 3)):
            self.filler()
        if rng.random() < 0.4:
            self.blk_fold_play()
        self.emit(f"sub {counter}, $1")
        self.emit(f"cmp.u> {counter}, $0")
        # distance 0–2 between the loop compare and its back-edge; the
        # gap fillers must not touch the counter or the flag
        for _ in range(rng.randint(0, 2)):
            self.emit(f"{rng.choice(_ALU3)} {rng.choice(self.data_names)}, "
                      f"${rng.randint(-8, 7)}")
        # iftjmpy predicts the common (taken) case; iftjmpn mispredicts
        # every iteration but the last
        mnemonic = "iftjmpy" if rng.random() < 0.7 else "iftjmpn"
        self.emit(f"{mnemonic} {head}")

    def blk_fv_loop(self) -> None:
        """A counted loop whose foldable back-edge flips on the last trip.

        Under ``FoldPolicy.dynamic`` the back-edge walks the whole
        fold-verify coverage axis: *declined* while the predictor's
        confidence is below threshold, *confirmed* once it saturates,
        *recovered* on the final (not-taken) iteration. The leading
        fillers keep back-edge fetches at least three entries apart, so
        each retirement's training lands before the next fetch-time
        query; 6–9 iterations cover confidence thresholds 1–3 with the
        default 3-bit predictor.
        """
        rng = self.rng
        counter = f"c{self.n_counters}"
        self.n_counters += 1
        self.data.append((counter, 0))
        head = self.label()
        self.emit(f"mov {counter}, ${rng.randint(6, 9)}")
        self.place(head)
        for _ in range(rng.randint(1, 2)):
            self.emit(f"{rng.choice(_ALU3)} {rng.choice(self.data_names)}, "
                      f"${rng.randint(-8, 7)}")
        self.emit(f"sub {counter}, $1")
        mnemonic = rng.choice(_SHORT_CONDJMP)
        # the compare sense must make the back-edge *taken* while the
        # counter is live: if-true senses loop on u>, if-false on u<=
        if mnemonic.startswith("ift"):
            self.emit(f"cmp.u> {counter}, $0")
        else:
            self.emit(f"cmp.u<= {counter}, $0")
        self.emit(f"{mnemonic} {head}")

    def blk_call(self) -> None:
        self.emit(f"call f{self.rng.randrange(self.n_subs)}")

    def blk_indirect(self) -> None:
        """jmpl / conditional long jump through a data-word jump table."""
        rng = self.rng
        target = self.label()
        roll = rng.random()
        if roll < 0.3:
            self.emit(f"jmpl {target}")  # direct long jump (absolute)
        elif roll < 0.6:
            _, address = self.data_word(target)
            self.emit(f"jmpl (*{address:#x})")
        else:
            _, address = self.data_word(target)
            self.compare()
            self.emit(f"{rng.choice(_LONG_CONDJMP)} (*{address:#x})")
            self.filler()
        self.place(target)

    def blk_acc(self) -> None:
        """Accum-indirect access to a known data word."""
        name = self.rng.choice(self.data_names)
        self.emit(f"mov Accum, ${name}")
        if self.rng.random() < 0.5:
            self.emit(f"add (Accum), ${self.rng.randint(-8, 7)}")
        else:
            self.emit(f"mov {self.dst()}, (Accum)")

    # ---- whole program -----------------------------------------------------

    _SHAPES = {
        "filler": blk_filler, "fold_play": blk_fold_play,
        "standalone_play": blk_standalone_play,
        "long_condjmp": blk_long_condjmp, "override_play": blk_override_play,
        "fold_chain": blk_fold_chain, "loop": blk_loop, "call": blk_call,
        "indirect": blk_indirect, "acc": blk_acc, "wide": blk_wide,
        "fv_loop": blk_fv_loop,
    }

    def subroutine(self, index: int) -> None:
        rng = self.rng
        frame = rng.choice((0, 8, 12))
        self.frame = frame
        self.place(f"f{index}")
        if frame:
            self.emit(f"enter {frame}")
        for _ in range(rng.randint(1, 3)):
            self.filler()
        if rng.random() < 0.5:
            self.blk_fold_play()
        if frame:
            self.emit(f"spadd {frame}")
        self.emit("return")
        self.frame = None

    def generate(self) -> str:
        weights = _WEIGHTS[self.profile]
        shapes = [name for name, w in weights.items() if w]
        wvals = [weights[name] for name in shapes]
        self.place("start")
        for _ in range(self.rng.randint(6, 14)):
            shape = self.rng.choices(shapes, weights=wvals, k=1)[0]
            self._SHAPES[shape](self)
        self.emit("halt")
        for i in range(self.n_subs):
            self.subroutine(i)
        header = ["    .entry start"]
        for name, value in self.data:
            header.append(f"    .word {name}, {value}")
        return "\n".join(header + self.lines) + "\n"


def generate_source(seed: int, profile: str = "mixed") -> str:
    """Deterministically generate one ``.s`` source for (seed, profile)."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; "
                         f"choose from {', '.join(PROFILES)}")
    rng = random.Random((zlib.crc32(profile.encode()) << 32)
                        ^ (seed & 0xFFFFFFFFFFFF))
    return _Gen(rng, profile).generate()
