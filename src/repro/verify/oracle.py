"""The architectural oracle: a third, pipeline-free interpreter.

Both cycle kernels route control flow through the decoded-cache
Next-PC fields and a three-stage pipeline. The oracle does neither: it
walks :class:`~repro.asm.program.Program` instructions directly,
re-derives the fold structure from first principles (an entry folds
exactly when a contiguous following instruction is a branch the
:class:`~repro.core.policy.FoldPolicy` accepts — the parcel-stream
decoder reaches the same answer because any byte past the program image
fails to decode), and applies architectural semantics per entry.

On top of the dynamic entry trace it then computes *analytic* branch
cost, straight from the paper's model rather than from a simulated
pipeline:

* an entry fetched on cycle ``f`` retires (executes RR) on cycle
  ``f + 3``; the machine halts on cycle ``f_halt + 4``;
* a conditional branch whose governing compare left the pipeline
  (fetch distance ``d >= 3``) resolves at fetch time for free — a wrong
  static prediction bit is a **zero-cost override**;
* with the compare still in flight the branch must speculate
  (**CC interlock**). A wrong bit costs 3 cycles when compare and
  branch are folded together (``d0``), 2 / 1 when the compare runs one
  / two fetches ahead of a folded branch, and always 3 for an unfolded
  branch (which only resolves at its own RR stage). After a mispredict
  resolving on cycle ``r = f + penalty``, fetch resumes on ``r + 1``;
* dynamic targets (return / indirect) stall fetch until their own RR:
  the next fetch lands on ``f + 4``.

The per-branch classification this produces (fold class × outcome ×
interlock distance) is also what feeds the coverage map. Quantities the
oracle deliberately does *not* model — wrong-path fetch traffic, cache
hits/misses, squashed slots — are reconciled fast-kernel-vs-reference
bit for bit by the runner instead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.asm.program import Program
from repro.core.policy import FoldPolicy
from repro.isa.instructions import Instruction, resolve_target
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.parcels import to_u32
from repro.sim.dynfold import DynamicFoldUnit
from repro.sim.memory import Memory
from repro.sim.semantics import MachineState, branch_decision, execute_body
from repro.sim.stats import ExecutionStats


class OracleError(RuntimeError):
    """Raised when a program cannot be executed by the oracle."""


@dataclass(frozen=True)
class _Entry:
    """The oracle's own decoded-entry analogue (independent of folder)."""

    address: int
    body: Instruction | None
    branch: Instruction | None
    length_bytes: int

    @property
    def is_folded(self) -> bool:
        return self.body is not None and self.branch is not None


@dataclass
class BranchRecord:
    """One dynamic branch retirement, classified analytically.

    ``outcome`` is one of ``always`` (unconditional static target),
    ``dynamic`` (return / indirect: resolved only at RR), ``correct``,
    ``override`` (architectural flag contradicted the prediction bit at
    zero cost) or ``mispredict``. ``interlock`` is ``none`` when the
    flag was architectural at fetch, else ``d0`` / ``d1`` / ``d2`` for
    folded branches by compare distance and ``spec`` for an unfolded
    branch forced to trust its bit.

    ``fold_verify`` classifies the dynamic-fold shadow verification:
    ``confirmed`` (engaged, condition agreed), ``recovered`` (engaged,
    condition disagreed — flush and refetch), ``declined`` (eligible and
    interlocked, but the predictor's confidence was below threshold) or
    ``none`` (policy not dynamic, branch not eligible, or flag
    architectural at fetch).
    """

    pc: int  #: the branch instruction's own address (the static site)
    opcode: str
    folded: bool
    taken: bool
    outcome: str
    interlock: str = "none"
    penalty: int = 0
    fold_verify: str = "none"


@dataclass
class OracleResult:
    """Everything the oracle derived from one program."""

    execution: ExecutionStats
    branches: list[BranchRecord]
    accum: int
    flag: bool
    sp: int
    memory: dict[int, int]  #: final byte image (code + data + stack)
    halted: bool
    # ---- analytic pipeline quantities (ideal machine: warm cache,
    # no conflict misses) ----
    cycles: int
    issued_instructions: int
    executed_instructions: int
    folded_branches: int
    mispredictions: int
    misprediction_penalty_cycles: int
    stall_cycles: int
    zero_cost_overrides: int  #: correct-path count (kernel may add
    #: wrong-path fetch-time overrides on top; see module docstring)
    interlocks: int = 0  #: correct-path CC-interlock speculations
    #: correct-path dynamic-fold engagements (the kernel's
    #: ``dynamic_folds`` also counts wrong-path engagements that were
    #: squashed, so this is only a lower bound on the kernel counter)
    dynamic_folds: int = 0
    folded_mispredicts: int = 0
    recovery_flush_cycles: int = 0
    body_records: list[tuple[str, bool]] = field(default_factory=list)

    def timing_dict(self) -> dict[str, int]:
        """The analytic counters the runner checks exactly (ideal mode)."""
        return {
            "cycles": self.cycles,
            "issued_instructions": self.issued_instructions,
            "executed_instructions": self.executed_instructions,
            "folded_branches": self.folded_branches,
            "mispredictions": self.mispredictions,
            "misprediction_penalty_cycles":
                self.misprediction_penalty_cycles,
            "stall_cycles": self.stall_cycles,
            "folded_mispredicts": self.folded_mispredicts,
            "recovery_flush_cycles": self.recovery_flush_cycles,
        }


def oracle_entries(program: Program,
                   policy: FoldPolicy) -> dict[int, _Entry]:
    """Re-derive the decoded-entry table from the instruction list.

    Independent of :mod:`repro.core.folder`: folding is decided from
    the program's own instruction layout. ``tests/test_verify_oracle.py``
    proves this agrees with the parcel-stream decoder entry for entry.
    """
    entries: dict[int, _Entry] = {}
    instructions = program.instructions
    addresses = program.addresses
    for i, (address, instruction) in enumerate(zip(addresses, instructions)):
        if instruction.is_branch:
            entries[address] = _Entry(
                address, None, instruction, instruction.length_bytes())
            continue
        follower = None
        sequential = address + instruction.length_bytes()
        if i + 1 < len(instructions) and addresses[i + 1] == sequential:
            follower = instructions[i + 1]
        if (follower is not None and follower.is_branch
                and policy.can_fold(instruction, follower)):
            entries[address] = _Entry(
                address, instruction, follower,
                instruction.length_bytes() + follower.length_bytes())
        else:
            entries[address] = _Entry(
                address, instruction, None, instruction.length_bytes())
    return entries


@dataclass
class _TraceStep:
    """One retired entry, annotated for the analytic pass."""

    entry: _Entry
    taken: bool = False
    halted: bool = False  #: body halted; any folded branch never ran


def _execute_branch(state: MachineState, entry: _Entry,
                    sequential: int) -> tuple[int, bool]:
    """Architectural branch-part semantics; returns (next_pc, taken)."""
    branch = entry.branch
    assert branch is not None
    branch_pc = (entry.address if entry.body is None
                 else entry.address + entry.body.length_bytes())
    cls = branch.op_class
    memory = state.memory
    if cls is OpClass.RETURN:
        if branch.opcode is Opcode.RETI:
            state.flag = bool(memory.read_word(state.sp) & 1)
            state.sp = to_u32(state.sp + 4)
        target = memory.read_word(state.sp)
        state.sp = to_u32(state.sp + 4)
        return target, True
    taken = branch_decision(branch, state.flag)
    if taken:
        target = resolve_target(branch, branch_pc, state.sp,
                                memory.read_word)
    else:
        target = sequential
    if cls is OpClass.CALL:
        state.sp = to_u32(state.sp - 4)
        memory.write_word(state.sp, sequential)
    return target, taken


def _trace(program: Program, entries: dict[int, _Entry],
           max_entries: int) -> tuple[list[_TraceStep], MachineState]:
    memory = Memory()
    memory.load_program(program)
    state = MachineState(memory, pc=program.entry, sp=program.stack_top)
    trace: list[_TraceStep] = []
    pc = program.entry
    for _ in range(max_entries):
        entry = entries.get(pc)
        if entry is None:
            raise OracleError(f"control reached non-entry address {pc:#x}")
        step = _TraceStep(entry)
        trace.append(step)
        sequential = entry.address + entry.length_bytes
        if entry.body is not None:
            if execute_body(state, entry.body):
                step.halted = True
                state.halted = True
                return trace, state
        if entry.branch is not None:
            pc, step.taken = _execute_branch(state, entry, sequential)
        else:
            pc = sequential
    raise OracleError(
        f"program did not halt within {max_entries} entries")


def run_oracle(program: Program,
               policy: FoldPolicy | None = None,
               max_entries: int = 2_000_000) -> OracleResult:
    """Execute ``program`` architecturally and derive analytic costs."""
    if policy is None:
        policy = FoldPolicy.crisp()
    entries = oracle_entries(program, policy)
    trace, state = _trace(program, entries, max_entries)

    execution = ExecutionStats()
    branches: list[BranchRecord] = []
    body_records: list[tuple[str, bool]] = []
    issued = len(trace)
    executed = 0
    folded = mispredicts = penalty_total = overrides = interlocks = 0
    dynamic_folds = folded_mispredicts = recovery_flush = 0

    # Dynamic-fold predictor replay. The kernels train the predictor at
    # branch retirement (fetch + 3) and untrain it when a shadow-folded
    # mispredict resolves (fetch + penalty); fetch-time queries see the
    # state as of the end of the query cycle, because the EU executes RR
    # before it selects the freshly latched entry's path. The event heap
    # replays exactly that schedule: (cycle, kind, order, site, taken)
    # with untrain (kind 0) draining before train (kind 1) on the same
    # cycle — matching the kernel's _resolve_dependents-before-
    # _execute_branch_part ordering within one RR.
    dyn = DynamicFoldUnit(policy) if policy.dynamic_fold else None
    events: list[tuple[int, int, int, int, bool]] = []
    event_order = 0

    # Analytic fetch schedule over the correct-path trace. ``fetch`` is
    # the cycle the entry's cache read happens; the flag becomes
    # architectural for a branch fetched on cycle f once its setter was
    # fetched on or before f - 3 (the setter's RR runs before the
    # branch's fetch-time path select).
    fetch = 0
    last_cc_fetch: int | None = None
    cycles = 0
    for step in trace:
        entry = step.entry
        next_fetch = fetch + 1
        if entry.body is not None:
            executed += 1
            execution.record(entry.body.opcode.value, is_branch=False,
                             is_conditional=False, taken=False,
                             one_parcel=entry.body.length_parcels() == 1)
            body_records.append((entry.body.opcode.value, entry.is_folded))
        branch = entry.branch
        if branch is not None and not step.halted:
            executed += 1
            if entry.is_folded:
                folded += 1
            execution.record(branch.opcode.value, is_branch=True,
                             is_conditional=branch.is_conditional_branch,
                             taken=step.taken,
                             one_parcel=branch.length_parcels() == 1)
            branch_pc = (entry.address if entry.body is None
                         else entry.address + entry.body.length_bytes())
            record = BranchRecord(branch_pc, branch.opcode.value,
                                  entry.is_folded, step.taken, "always")
            dynamic = (branch.op_class is OpClass.RETURN
                       or branch.branch is None
                       or branch.branch.is_indirect)
            if dynamic:
                record.outcome = "dynamic"
                next_fetch = fetch + 4
            elif branch.is_conditional_branch:
                predicted = branch.predicted_taken
                d0 = (entry.body is not None and entry.body.sets_flag)
                distance = (None if last_cc_fetch is None
                            else fetch - last_cc_fetch)
                outstanding = d0 or (distance is not None and distance <= 2)
                if not outstanding:
                    record.outcome = ("correct" if step.taken == predicted
                                      else "override")
                    if step.taken != predicted:
                        overrides += 1
                else:
                    interlocks += 1
                    if d0:
                        record.interlock = "d0"
                    elif entry.is_folded:
                        record.interlock = f"d{distance}"
                    else:
                        record.interlock = "spec"
                    engaged = False
                    if dyn is not None and entry.is_folded:
                        while events and events[0][0] <= fetch:
                            _, kind, _, site, was_taken = heapq.heappop(
                                events)
                            if kind == 0:
                                dyn.untrain(site)
                            else:
                                dyn.train(site, was_taken)
                        if dyn.decide(branch_pc):
                            # dynamic fold engages: commit to the taken
                            # path regardless of the static bit
                            engaged = True
                            dynamic_folds += 1
                        else:
                            record.fold_verify = "declined"
                    effective = True if engaged else predicted
                    if step.taken == effective:
                        record.outcome = "correct"
                        if engaged:
                            record.fold_verify = "confirmed"
                    else:
                        record.outcome = "mispredict"
                        if d0 or not entry.is_folded:
                            record.penalty = 3
                        elif distance == 1:
                            record.penalty = 2
                        else:
                            record.penalty = 1
                        mispredicts += 1
                        penalty_total += record.penalty
                        next_fetch = fetch + record.penalty + 1
                        if engaged:
                            record.fold_verify = "recovered"
                            folded_mispredicts += 1
                            recovery_flush += record.penalty
                            heapq.heappush(events, (
                                fetch + record.penalty, 0, event_order,
                                branch_pc, False))
                            event_order += 1
            if dyn is not None and branch.is_conditional_branch:
                # retirement-time training, mirrored from _record_branch
                heapq.heappush(events, (
                    fetch + 3, 1, event_order, branch_pc, step.taken))
                event_order += 1
            branches.append(record)
        if entry.body is not None and entry.body.sets_flag:
            last_cc_fetch = fetch
        if step.halted:
            cycles = fetch + 4
            break
        fetch = next_fetch

    return OracleResult(
        execution=execution,
        branches=branches,
        accum=state.accum,
        flag=state.flag,
        sp=state.sp,
        memory=state.memory.snapshot(),
        halted=state.halted,
        cycles=cycles,
        issued_instructions=issued,
        executed_instructions=executed,
        folded_branches=folded,
        mispredictions=mispredicts,
        misprediction_penalty_cycles=penalty_total,
        stall_cycles=cycles - issued,
        zero_cost_overrides=overrides,
        interlocks=interlocks,
        dynamic_folds=dynamic_folds,
        folded_mispredicts=folded_mispredicts,
        recovery_flush_cycles=recovery_flush,
        body_records=body_records,
    )
