"""Delta-debugging shrinker for disagreeing fuzz programs.

Classic ddmin over source lines: repeatedly try dropping chunks of
lines (halving the chunk size down to single lines) and keep any
candidate on which the *failure predicate* still holds. Candidates
that no longer assemble — e.g. a deleted label still referenced by a
branch — simply fail the predicate, so the grammar needs no special
handling; the only structural tweak is also trying to strip a label
line down to nothing while keeping its referents alive is unnecessary
because generated sources always place labels on their own lines.

The predicate convention matches :func:`repro.verify.runner
.run_differential`: a candidate where every implementation fails to
terminate counts as *agreeing*, so shrinking cannot wander off into
degenerate non-programs; the minimized repro still exhibits a genuine
divergence between implementations.
"""

from __future__ import annotations

from collections.abc import Callable


def _candidates(lines: list[str], chunk: int) -> list[list[str]]:
    out = []
    for start in range(0, len(lines), chunk):
        out.append(lines[:start] + lines[start + chunk:])
    return out


def shrink_source(source: str, failing: Callable[[str], bool],
                  max_checks: int = 2000) -> str:
    """Minimize ``source`` while ``failing`` (the disagreement) holds.

    ``failing`` must be True for ``source`` itself; the result is
    1-minimal with respect to line deletion (no single remaining line
    can be dropped), subject to the ``max_checks`` predicate budget.
    """
    lines = source.splitlines()
    checks = 0

    def check(candidate: list[str]) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        return failing("\n".join(candidate) + "\n")

    chunk = max(1, len(lines) // 2)
    while chunk >= 1:
        shrunk = True
        while shrunk and checks < max_checks:
            shrunk = False
            for candidate in _candidates(lines, chunk):
                if len(candidate) < len(lines) and check(candidate):
                    lines = candidate
                    shrunk = True
                    break
        if chunk == 1:
            break
        chunk //= 2
    return "\n".join(lines) + "\n"
