"""Coverage map over branch-behaviour cells, driving the fuzzer.

A *cell* is the tuple ``(opcode, fold-class, outcome, interlock,
fold-verify)`` classifying one dynamic branch retirement as reported by
the oracle (:class:`repro.verify.oracle.BranchRecord`). The acceptance
metric is the fraction of **reachable** cells hit in the 3-dimensional
projection ``opcode × fold-class × outcome``, plus the dynamic-fold
verification cells ``opcode × {confirmed, recovered, declined}`` (only
reachable for the four short conditional jumps — the only branches the
policy can fold). The interlock axis is tracked and reported but, being
a refinement of the ``mispredict``/``correct`` outcomes, is not part of
the denominator. Body opcodes are tracked too (``opcode × {plain,
folded-body}``) so profile drift is visible.

Reachability is enumerated statically from the ISA and the CRISP fold
policy rather than measured, so a generator regression that stops
producing some behaviour *lowers* the fraction instead of silently
shrinking the universe:

* short conditional jumps are 1 parcel and PC-relative: they can fold
  or stand alone, and resolve to ``correct``/``mispredict``/``override``;
* long conditional jumps are 3 parcels (the CRISP policy folds only
  1-parcel branches): always standalone; with an indirect target their
  outcome is ``dynamic``;
* ``jmp`` folds or stands alone, always taken; ``jmpl`` is standalone
  and additionally reachable as ``dynamic`` via a jump table;
* ``call`` never folds (policy) and is always taken; ``return`` is the
  canonical ``dynamic`` branch;
* ``reti`` is excluded: generated programs take no interrupts.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable

Cell = tuple[str, str, str, str, str]
ProjectedCell = tuple[str, str, str]
FoldVerifyCell = tuple[str, str]

_SHORT_CONDJMPS = ("iftjmpy", "iftjmpn", "iffjmpy", "iffjmpn")
_LONG_CONDJMPS = ("iftjmply", "iftjmpln", "iffjmply", "iffjmpln")
_CONDITIONAL_OUTCOMES = ("correct", "mispredict", "override")
FOLD_VERIFY_OUTCOMES = ("confirmed", "recovered", "declined")


def reachable_cells() -> frozenset[ProjectedCell]:
    """The statically reachable ``opcode × fold-class × outcome`` cells."""
    cells: set[ProjectedCell] = set()
    for opcode in _SHORT_CONDJMPS:
        for fold in ("folded", "standalone"):
            for outcome in _CONDITIONAL_OUTCOMES:
                cells.add((opcode, fold, outcome))
    for opcode in _LONG_CONDJMPS:
        for outcome in _CONDITIONAL_OUTCOMES + ("dynamic",):
            cells.add((opcode, "standalone", outcome))
    cells.add(("jmp", "folded", "always"))
    cells.add(("jmp", "standalone", "always"))
    cells.add(("jmpl", "standalone", "always"))
    cells.add(("jmpl", "standalone", "dynamic"))
    cells.add(("call", "standalone", "always"))
    cells.add(("return", "standalone", "dynamic"))
    return frozenset(cells)


def reachable_fold_verify_cells() -> frozenset[FoldVerifyCell]:
    """The reachable ``opcode × fold-verify`` cells under dynamic fold.

    Only folded conditional branches can engage a dynamic fold, and the
    policy only folds 1-parcel branches, so the axis is reachable
    exactly for the four short conditional jumps.
    """
    return frozenset((opcode, verify) for opcode in _SHORT_CONDJMPS
                     for verify in FOLD_VERIFY_OUTCOMES)


def total_reachable() -> int:
    """Denominator of the acceptance metric (both cell families)."""
    return len(reachable_cells()) + len(reachable_fold_verify_cells())


class CoverageMap:
    """Accumulates hit counts per cell; merge order is irrelevant."""

    def __init__(self) -> None:
        self.cells: Counter[Cell] = Counter()
        self.body_cells: Counter[tuple[str, str]] = Counter()

    def add_branch(self, opcode: str, folded: bool, outcome: str,
                   interlock: str, fold_verify: str = "none",
                   count: int = 1) -> None:
        fold = "folded" if folded else "standalone"
        self.cells[(opcode, fold, outcome, interlock, fold_verify)] += count

    def add_body(self, opcode: str, folded: bool, count: int = 1) -> None:
        self.body_cells[(opcode, "folded-body" if folded else "plain")] \
            += count

    def add_records(self, branch_records: Iterable, body_records:
                    Iterable[tuple[str, bool]] = ()) -> None:
        """Ingest a program's oracle records (``BranchRecord`` ducks)."""
        for record in branch_records:
            self.add_branch(record.opcode, record.folded, record.outcome,
                            record.interlock,
                            getattr(record, "fold_verify", "none"))
        for opcode, folded in body_records:
            self.add_body(opcode, folded)

    def merge(self, other: "CoverageMap") -> None:
        self.cells.update(other.cells)
        self.body_cells.update(other.body_cells)

    # ---- the acceptance metric --------------------------------------------

    def projected(self) -> set[ProjectedCell]:
        return {(op, fold, outcome)
                for (op, fold, outcome, _interlock, _verify) in self.cells}

    def fold_verify_projected(self) -> set[FoldVerifyCell]:
        return {(op, verify)
                for (op, _fold, _outcome, _interlock, verify) in self.cells
                if verify != "none"}

    def hit(self) -> set[ProjectedCell]:
        return self.projected() & reachable_cells()

    def fold_verify_hit(self) -> set[FoldVerifyCell]:
        return self.fold_verify_projected() & reachable_fold_verify_cells()

    def missing(self) -> list[ProjectedCell]:
        return sorted(reachable_cells() - self.projected())

    def missing_fold_verify(self) -> list[FoldVerifyCell]:
        return sorted(reachable_fold_verify_cells()
                      - self.fold_verify_projected())

    def total_hit(self) -> int:
        return len(self.hit()) + len(self.fold_verify_hit())

    def fraction(self) -> float:
        reachable = total_reachable()
        if not reachable:
            return 1.0
        return self.total_hit() / reachable

    # ---- serialization ----------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "reachable": total_reachable(),
            "hit": self.total_hit(),
            "fraction": round(self.fraction(), 6),
            "missing": ["/".join(cell) for cell in self.missing()],
            "missing_fold_verify": ["/".join(cell) for cell
                                    in self.missing_fold_verify()],
            "cells": {"/".join(cell): count for cell, count
                      in sorted(self.cells.items())},
            "body_cells": {"/".join(cell): count for cell, count
                           in sorted(self.body_cells.items())},
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> "CoverageMap":
        cover = cls()
        for key, count in payload.get("cells", {}).items():
            cell = tuple(key.split("/"))
            if len(cell) == 4:  # pre-fold-verify documents
                cell = cell + ("none",)
            if len(cell) != 5:
                raise ValueError(f"bad coverage cell {key!r}")
            cover.cells[cell] = count
        for key, count in payload.get("body_cells", {}).items():
            cell = tuple(key.split("/"))
            if len(cell) != 2:
                raise ValueError(f"bad body cell {key!r}")
            cover.body_cells[cell] = count
        return cover
