"""Differential conformance and coverage-guided fuzzing (``crisp-verify``).

The repo carries two cycle-accurate kernels (:mod:`repro.sim` fast path
and :mod:`repro.sim.reference`); this package adds the third leg of the
tripod and the machinery to exercise all three adversarially:

* :mod:`repro.verify.oracle` — a pipeline-free ISA-level interpreter
  that executes assembled programs directly *and* derives analytic
  branch-cost ground truth (folds, prediction outcomes, CC-interlock
  penalties, total cycles) from the dynamic trace alone;
* :mod:`repro.verify.generator` — a seeded, pure constraint-shaped
  assembly program generator with coverage-oriented profiles;
* :mod:`repro.verify.runner` — the 3-way differential check (fast
  kernel vs. reference kernel vs. oracle) over architectural state,
  ``ExecutionStats``/``PipelineStats``, attribution totals and the
  Next-PC / Alternate-Next-PC invariants;
* :mod:`repro.verify.coverage` — the opcode × fold-class ×
  prediction-outcome × interlock coverage map driving generation;
* :mod:`repro.verify.shrink` — minimizes any disagreeing program to a
  small ``.s`` repro.

See ``docs/validation.md`` ("Differential verification") for usage.
"""

from repro.verify.coverage import CoverageMap, reachable_cells
from repro.verify.generator import PROFILES, generate_source
from repro.verify.oracle import OracleError, OracleResult, run_oracle
from repro.verify.runner import (
    FuzzTask,
    ProgramReport,
    ideal_config,
    run_differential,
    run_fuzz_task,
)
from repro.verify.shrink import shrink_source

__all__ = [
    "CoverageMap",
    "FuzzTask",
    "OracleError",
    "OracleResult",
    "PROFILES",
    "ProgramReport",
    "generate_source",
    "ideal_config",
    "reachable_cells",
    "run_differential",
    "run_fuzz_task",
    "run_oracle",
    "shrink_source",
]
