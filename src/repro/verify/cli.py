"""``crisp-verify`` — differential conformance fuzzing front-end.

Subcommands:

``fuzz``
    Generate programs and run the 3-way differential check
    (fast kernel vs reference kernel vs architectural oracle) on each.
    Stops after ``--programs`` N, or at ``--target-coverage`` F, or at a
    ``--budget`` wall-clock limit (CI mode; program count then depends
    on machine speed, everything else stays seed-deterministic).
    Disagreements are shrunk to minimal ``.s`` repros in
    ``--corpus-dir`` and the process exits 1.
``replay``
    Re-run corpus ``.s`` files through the same differential check.
``coverage``
    Oracle-only sweep: report which opcode × fold-class × outcome ×
    interlock cells a seed/profile mix reaches, without running the
    cycle kernels.

``--jobs N`` fans tasks out over processes via
:func:`repro.eval.parallel.map_ordered`; results are merged in task
order, so output is byte-identical to a serial run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.asm.assembler import AssemblyError, assemble
from repro.eval.parallel import map_ordered
from repro.verify.coverage import CoverageMap, reachable_cells
from repro.verify.generator import PROFILES, generate_source
from repro.verify.oracle import OracleError, run_oracle
from repro.verify.runner import (
    FuzzTask,
    ProgramReport,
    program_parcels,
    run_differential,
    run_fuzz_task,
)
from repro.verify.shrink import shrink_source

_BATCH = 25  #: tasks per scheduling round in coverage/budget modes


def _tasks(seed: int, start: int, count: int, profiles: list[str],
           stress: bool) -> list[FuzzTask]:
    return [FuzzTask(seed=seed * 1_000_003 + index,
                     profile=profiles[index % len(profiles)],
                     stress=stress)
            for index in range(start, start + count)]


def _still_failing(source: str, stress: bool) -> bool:
    try:
        program = assemble(source)
    except Exception:
        return False
    try:
        mismatches, _ = run_differential(
            program, stress=stress, max_cycles=1_000_000)
    except Exception:
        return False
    return bool(mismatches)


def _shrink_and_save(report: ProgramReport, corpus_dir: Path) -> Path:
    assert report.source is not None
    minimal = shrink_source(
        report.source, lambda src: _still_failing(src, stress=True))
    if not _still_failing(minimal, stress=True):
        minimal = report.source  # budget ran out mid-shrink: keep original
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"repro-{report.profile}-{report.seed}.s"
    header = (f"; shrunk disagreement repro (profile {report.profile}, "
              f"task seed {report.seed})\n"
              + "".join(f"; {line}\n" for line in report.mismatches[:8]))
    path.write_text(header + minimal)
    return path


def cmd_fuzz(args: argparse.Namespace) -> int:
    profiles = args.profile or list(PROFILES)
    coverage = CoverageMap()
    failures: list[ProgramReport] = []
    ran = 0
    deadline = (time.monotonic() + args.budget
                if args.budget is not None else None)

    def run_batch(count: int) -> None:
        nonlocal ran
        batch = _tasks(args.seed, ran, count, profiles,
                       stress=not args.no_stress)
        for report in map_ordered(run_fuzz_task, batch, jobs=args.jobs):
            coverage.add_records(
                [_Cell(*cell) for cell in report.branch_cells],
                report.body_cells)
            if not report.ok:
                failures.append(report)
        ran += count

    if args.target_coverage is not None:
        while (coverage.fraction() < args.target_coverage
               and ran < args.max_programs):
            run_batch(min(_BATCH, args.max_programs - ran))
    elif deadline is not None:
        while time.monotonic() < deadline and ran < args.max_programs:
            run_batch(min(_BATCH, args.max_programs - ran))
    else:
        run_batch(args.programs)

    print(f"programs: {ran}")
    print(f"profiles: {', '.join(profiles)}")
    print(f"agreements: {ran - len(failures)}")
    print(f"disagreements: {len(failures)}")
    print(f"coverage: {len(coverage.hit())}/{len(reachable_cells())} "
          f"reachable cells ({coverage.fraction():.1%})")
    for cell in coverage.missing():
        print(f"  missing: {'/'.join(cell)}")

    if args.coverage_out:
        Path(args.coverage_out).write_text(coverage.to_json())
        print(f"coverage map written to {args.coverage_out}")

    if failures:
        corpus_dir = Path(args.corpus_dir)
        for report in failures[:args.max_shrinks]:
            print(f"FAIL seed={report.seed} profile={report.profile}")
            for line in report.mismatches[:8]:
                print(f"  {line}")
            path = _shrink_and_save(report, corpus_dir)
            print(f"  shrunk repro: {path}")
        return 1
    return 0


class _Cell:
    """Adapter giving coverage the BranchRecord attribute shape."""

    __slots__ = ("opcode", "folded", "outcome", "interlock")

    def __init__(self, opcode: str, folded: bool, outcome: str,
                 interlock: str) -> None:
        self.opcode = opcode
        self.folded = folded
        self.outcome = outcome
        self.interlock = interlock


def cmd_replay(args: argparse.Namespace) -> int:
    status = 0
    for name in args.files:
        source = Path(name).read_text()
        try:
            program = assemble(source)
        except AssemblyError as exc:
            print(f"{name}: ASSEMBLY ERROR: {exc}")
            status = 1
            continue
        mismatches, oracle = run_differential(
            program, stress=not args.no_stress)
        if mismatches:
            print(f"{name}: DISAGREE ({len(mismatches)} mismatches)")
            for line in mismatches:
                print(f"  {line}")
            status = 1
        else:
            summary = ""
            if oracle is not None:
                summary = (f" cycles={oracle.cycles}"
                           f" issued={oracle.issued_instructions}"
                           f" folded={oracle.folded_branches}"
                           f" mispredicts={oracle.mispredictions}")
            print(f"{name}: agree "
                  f"({program_parcels(program)} parcels{summary})")
    return status


def cmd_coverage(args: argparse.Namespace) -> int:
    profiles = args.profile or list(PROFILES)
    coverage = CoverageMap()
    for index in range(args.programs):
        seed = args.seed * 1_000_003 + index
        profile = profiles[index % len(profiles)]
        try:
            program = assemble(generate_source(seed, profile))
            result = run_oracle(program)
        except (AssemblyError, OracleError) as exc:
            print(f"seed {seed} ({profile}): generator produced a bad "
                  f"program: {exc}", file=sys.stderr)
            return 1
        coverage.add_records(result.branches, result.body_records)
    print(f"programs: {args.programs}")
    print(f"coverage: {len(coverage.hit())}/{len(reachable_cells())} "
          f"reachable cells ({coverage.fraction():.1%})")
    for cell, count in sorted(coverage.cells.items()):
        print(f"  {'/'.join(cell)}: {count}")
    for cell in coverage.missing():
        print(f"  missing: {'/'.join(cell)}")
    if args.json:
        Path(args.json).write_text(coverage.to_json())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crisp-verify",
        description="Differential conformance fuzzing for the CRISP "
                    "simulators (fast kernel vs reference vs oracle).")
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="generate and differentially "
                                       "check programs")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--programs", type=int, default=200,
                      help="number of programs (default mode)")
    fuzz.add_argument("--budget", type=float, default=None, metavar="SECS",
                      help="wall-clock stop instead of a program count")
    fuzz.add_argument("--target-coverage", type=float, default=None,
                      metavar="FRACTION",
                      help="keep generating until this fraction of "
                           "reachable cells is hit")
    fuzz.add_argument("--max-programs", type=int, default=2000,
                      help="hard cap for budget/target modes")
    fuzz.add_argument("--profile", action="append", choices=PROFILES,
                      help="restrict profiles (repeatable; default all)")
    fuzz.add_argument("--jobs", type=int, default=None,
                      help="worker processes (0 = all cores)")
    fuzz.add_argument("--no-stress", action="store_true",
                      help="skip the cold-cache stress comparison")
    fuzz.add_argument("--coverage-out", metavar="FILE",
                      help="write the coverage map as JSON")
    fuzz.add_argument("--corpus-dir", default="tests/corpus",
                      help="where shrunk repros are written")
    fuzz.add_argument("--max-shrinks", type=int, default=3,
                      help="shrink at most this many disagreements")
    fuzz.set_defaults(func=cmd_fuzz)

    replay = sub.add_parser("replay", help="re-check corpus .s files")
    replay.add_argument("files", nargs="+")
    replay.add_argument("--no-stress", action="store_true")
    replay.set_defaults(func=cmd_replay)

    cover = sub.add_parser("coverage", help="oracle-only coverage sweep")
    cover.add_argument("--seed", type=int, default=0)
    cover.add_argument("--programs", type=int, default=200)
    cover.add_argument("--profile", action="append", choices=PROFILES)
    cover.add_argument("--json", metavar="FILE")
    cover.set_defaults(func=cmd_coverage)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
