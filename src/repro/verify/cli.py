"""``crisp-verify`` — differential conformance fuzzing front-end.

Subcommands:

``fuzz``
    Generate programs and run the 3-way differential check
    (fast kernel vs reference kernel vs architectural oracle) on each;
    ``--engine blockspec``/``--engine batched`` widen it to 4-way by
    adding that tier as a bitwise arm; ``--engine all`` runs the full
    5-way matrix. With the batched arm in play and no worker pool, the
    whole round's batched regimes run through **one** lock-step
    :class:`~repro.sim.batched.BatchedSimulator` (identical programs
    collapse into shared cohorts) — reports stay byte-identical to
    per-task execution. Coverage is reported per engine arm.
    Stops after ``--programs`` N, or at ``--target-coverage`` F, or at a
    ``--budget`` wall-clock limit (CI mode; program count then depends
    on machine speed, everything else stays seed-deterministic).
    Disagreements are shrunk to minimal ``.s`` repros in
    ``--corpus-dir`` and the process exits 1.
``replay``
    Re-run corpus ``.s`` files through the same differential check.
``coverage``
    Oracle-only sweep: report which opcode × fold-class × outcome ×
    interlock × fold-verify cells a seed/profile mix reaches, without
    running the cycle kernels. ``--engine`` picks the matrix the
    tallies are broken down over: one line per engine arm, with the
    native/fallback split made explicit so a tier-specific coverage
    hole can't hide behind the fast arm's totals.

``--jobs N`` fans tasks out over processes via
:func:`repro.eval.parallel.map_ordered`; results are merged in task
order, so output is byte-identical to a serial run.

By default tasks cycle over fold policies — static CRISP, then
``FoldPolicy.dynamic`` at confidence thresholds 1, 2 and 3 — so one run
covers both the paper's machine and the dynamic-confidence extension
(the fold-verify coverage cells are only reachable under the latter).
``--dyn-confidence N`` pins the mix; ``--inject always-wrong`` turns on
misprediction fault injection in both cycle kernels.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.asm.assembler import AssemblyError, assemble
from repro.core.policy import FoldPolicy
from repro.eval.parallel import TaskFailure, effective_jobs, map_ordered
from repro.sim.dynfold import INJECT_MODES
from repro.verify.coverage import CoverageMap, total_reachable
from repro.verify.generator import PROFILES, generate_source
from repro.verify.oracle import OracleError, run_oracle
from repro.verify.runner import (
    ENGINE_MATRIX,
    FuzzTask,
    ProgramReport,
    program_parcels,
    run_differential,
    run_fuzz_task,
    run_fuzz_tasks_batched,
)
from repro.verify.shrink import shrink_source

_BATCH = 25  #: tasks per scheduling round in coverage/budget modes

#: default per-task fold-policy mix: static, then dynamic_fold at each
#: confidence threshold (None = the static CRISP policy)
_DYN_MIX: tuple[int | None, ...] = (None, 1, 2, 3)


def _confidence_policy(confidence: int | None) -> FoldPolicy | None:
    return (None if confidence is None
            else FoldPolicy.dynamic(confidence=confidence))


def _tasks(seed: int, start: int, count: int, profiles: list[str],
           stress: bool,
           dyn_mix: tuple[int | None, ...] = _DYN_MIX,
           inject: str | None = None,
           engine: str = "fast") -> list[FuzzTask]:
    return [FuzzTask(seed=seed * 1_000_003 + index,
                     profile=profiles[index % len(profiles)],
                     stress=stress,
                     dyn_confidence=dyn_mix[index % len(dyn_mix)],
                     inject=inject, engine=engine)
            for index in range(start, start + count)]


def _task_engine(choice: str) -> str:
    """CLI ``--engine`` value -> per-task engine matrix key.

    Every choice names a :data:`~repro.verify.runner.ENGINE_MATRIX`
    row; each extra arm is always compared *against* the fast kernel,
    so there is no standalone-blockspec or standalone-batched mode.
    """
    return choice


class _EngineCoverage:
    """Per-engine cell tallies: what each arm of the matrix compared.

    Every cell a task reaches is compared on every arm of its matrix —
    under dynamic-fold policies the blockspec/batched tiers fall back
    to the per-cycle loop, but the arm still runs and is still checked
    bitwise. The *native* subset excludes those fallback policies, so
    a hole in a tier's own machinery (traces, lock-step cohorts) can't
    hide behind the fallback path's share of the total.
    """

    def __init__(self, engines: tuple[str, ...]) -> None:
        self.engines = engines
        self.compared = {engine: CoverageMap() for engine in engines}
        self.native = {engine: CoverageMap() for engine in engines}

    def add(self, branch_records, body_records,
            dyn_confidence: int | None) -> None:
        for engine in self.engines:
            self.compared[engine].add_records(branch_records, body_records)
            if engine == "fast" or dyn_confidence is None:
                self.native[engine].add_records(branch_records,
                                                body_records)

    def lines(self) -> list[str]:
        out = []
        for engine in self.engines:
            compared = self.compared[engine]
            native_hit = self.native[engine].total_hit()
            fallback_only = compared.total_hit() - native_hit
            text = (f"coverage[{engine}]: {compared.total_hit()}"
                    f"/{total_reachable()} cells compared "
                    f"({compared.fraction():.1%})")
            if fallback_only:
                text += (f" — {native_hit} native, {fallback_only} "
                         f"via per-cycle fallback")
            out.append(text)
        return out


def _still_failing(source: str, stress: bool,
                   dyn_confidence: int | None = None,
                   inject: str | None = None,
                   engine: str = "fast") -> bool:
    try:
        program = assemble(source)
    except Exception:
        return False
    try:
        mismatches, _ = run_differential(
            program, _confidence_policy(dyn_confidence),
            stress=stress, max_cycles=1_000_000, inject=inject,
            engines=ENGINE_MATRIX[engine])
    except Exception:
        return False
    return bool(mismatches)


def _shrink_and_save(report: ProgramReport, corpus_dir: Path) -> Path:
    assert report.source is not None

    def still_failing(src: str) -> bool:
        return _still_failing(src, stress=True,
                              dyn_confidence=report.dyn_confidence,
                              inject=report.inject,
                              engine=report.engine)

    minimal = shrink_source(report.source, still_failing)
    if not still_failing(minimal):
        minimal = report.source  # budget ran out mid-shrink: keep original
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"repro-{report.profile}-{report.seed}.s"
    regime = ""
    if report.dyn_confidence is not None:
        regime += f", dyn-confidence {report.dyn_confidence}"
    if report.inject is not None:
        regime += f", inject {report.inject}"
    header = (f"; shrunk disagreement repro (profile {report.profile}, "
              f"task seed {report.seed}{regime})\n"
              + "".join(f"; {line}\n" for line in report.mismatches[:8]))
    path.write_text(header + minimal)
    return path


def cmd_fuzz(args: argparse.Namespace) -> int:
    profiles = args.profile or list(PROFILES)
    matrix = ENGINE_MATRIX[_task_engine(args.engine)]
    # the lock-step scheduler is serial by construction; with a worker
    # pool each task runs its own two-instance batches instead (the
    # reports are byte-identical either way)
    lockstep = "batched" in matrix and effective_jobs(args.jobs) == 1
    coverage = CoverageMap()
    engine_cover = _EngineCoverage(matrix)
    failures: list[ProgramReport] = []
    lost: list[TaskFailure] = []
    ran = 0
    started = time.monotonic()
    deadline = (started + args.budget
                if args.budget is not None else None)
    # ETA target: the fixed program count in plain mode, the hard cap
    # in budget/coverage modes (where the real stop is time/coverage)
    expected = (args.programs if args.budget is None
                and args.target_coverage is None else None)

    if args.dyn_confidence:
        dyn_mix = tuple(None if value < 0 else value
                        for value in args.dyn_confidence)
    else:
        dyn_mix = _DYN_MIX

    from repro.obs.campaign import close_campaign, open_campaign
    recorder, campaign_stream = open_campaign(
        "crisp-verify fuzz", args.campaign_out,
        jobs=args.jobs, expected_tasks=expected)

    def heartbeat() -> None:
        """One progress line per batch on stderr (stdout stays stable)."""
        if args.no_heartbeat:
            return
        agreements = ran - len(failures) - len(lost)
        rate = agreements / ran if ran else 0.0
        elapsed = time.monotonic() - started
        if deadline is not None:
            eta_text = f"budget left {max(deadline - time.monotonic(), 0.0):.0f}s"
        elif expected and ran < expected:
            eta_text = f"eta {(expected - ran) * elapsed / ran:.0f}s"
        else:
            eta_text = f"elapsed {elapsed:.0f}s"
        print(f"fuzz: {ran} programs  agree {rate:.1%}  "
              f"coverage {coverage.fraction():.1%}  {eta_text}",
              file=sys.stderr, flush=True)

    def run_batch(count: int) -> None:
        nonlocal ran
        batch = _tasks(args.seed, ran, count, profiles,
                       stress=not args.no_stress,
                       dyn_mix=dyn_mix, inject=args.inject,
                       engine=_task_engine(args.engine))
        if lockstep:
            reports, lockstep_result = run_fuzz_tasks_batched(batch)
            if recorder is not None:
                recorder.note(
                    "batched",
                    instances=lockstep_result.arrays.size,
                    cohorts=lockstep_result.cohorts,
                    supersteps=lockstep_result.supersteps,
                    shared_cycles=lockstep_result.shared_cycles,
                    peeled=lockstep_result.peeled)
        else:
            reports = map_ordered(
                run_fuzz_task, batch, jobs=args.jobs, recorder=recorder,
                labeler=lambda task: f"fuzz/{task.profile}/{task.seed}")
        for report in reports:
            if isinstance(report, TaskFailure):
                # A worker crashed (twice) on this task; the campaign
                # continues but the lost point is visible and fatal.
                lost.append(report)
                continue
            cells = [_Cell(*cell) for cell in report.branch_cells]
            coverage.add_records(cells, report.body_cells)
            engine_cover.add(cells, report.body_cells,
                             report.dyn_confidence)
            if not report.ok:
                failures.append(report)
        ran += count
        if recorder is not None:
            recorder.note("coverage", programs=ran,
                          disagreements=len(failures),
                          cells=coverage.total_hit(),
                          fraction=round(coverage.fraction(), 4))
        heartbeat()

    try:
        if args.target_coverage is not None:
            while (coverage.fraction() < args.target_coverage
                   and ran < args.max_programs):
                run_batch(min(_BATCH, args.max_programs - ran))
        elif deadline is not None:
            while time.monotonic() < deadline and ran < args.max_programs:
                run_batch(min(_BATCH, args.max_programs - ran))
        else:
            # batched (identical task list to a single call — tasks are
            # generated by absolute index) so heartbeats appear live
            while ran < args.programs:
                run_batch(min(_BATCH, args.programs - ran))
    finally:
        paths = close_campaign(recorder, campaign_stream, args.campaign_out)
        if paths is not None:
            print(f"campaign artefacts: {paths['manifest']}, "
                  f"{paths['trace']}, {paths['stream']}", file=sys.stderr)

    print(f"programs: {ran}")
    print(f"profiles: {', '.join(profiles)}")
    print(f"agreements: {ran - len(failures) - len(lost)}")
    print(f"disagreements: {len(failures)}")
    for failure in lost:
        task = failure.task
        print(f"LOST seed={getattr(task, 'seed', '?')} "
              f"profile={getattr(task, 'profile', '?')} "
              f"after {failure.attempts} attempts: {failure.error}")
    print(f"coverage: {coverage.total_hit()}/{total_reachable()} "
          f"reachable cells ({coverage.fraction():.1%})")
    for line in engine_cover.lines():
        print(line)
    for cell in coverage.missing():
        print(f"  missing: {'/'.join(cell)}")
    for cell in coverage.missing_fold_verify():
        print(f"  missing fold-verify: {'/'.join(cell)}")

    if args.coverage_out:
        Path(args.coverage_out).write_text(coverage.to_json())
        print(f"coverage map written to {args.coverage_out}")

    if failures:
        corpus_dir = Path(args.corpus_dir)
        for report in failures[:args.max_shrinks]:
            print(f"FAIL seed={report.seed} profile={report.profile}")
            for line in report.mismatches[:8]:
                print(f"  {line}")
            path = _shrink_and_save(report, corpus_dir)
            print(f"  shrunk repro: {path}")
        return 1
    return 1 if lost else 0


class _Cell:
    """Adapter giving coverage the BranchRecord attribute shape."""

    __slots__ = ("opcode", "folded", "outcome", "interlock", "fold_verify")

    def __init__(self, opcode: str, folded: bool, outcome: str,
                 interlock: str, fold_verify: str = "none") -> None:
        self.opcode = opcode
        self.folded = folded
        self.outcome = outcome
        self.interlock = interlock
        self.fold_verify = fold_verify


def cmd_replay(args: argparse.Namespace) -> int:
    status = 0
    for name in args.files:
        source = Path(name).read_text()
        try:
            program = assemble(source)
        except AssemblyError as exc:
            print(f"{name}: ASSEMBLY ERROR: {exc}")
            status = 1
            continue
        mismatches, oracle = run_differential(
            program, _confidence_policy(args.dyn_confidence),
            stress=not args.no_stress, inject=args.inject,
            engines=ENGINE_MATRIX[_task_engine(args.engine)])
        if mismatches:
            print(f"{name}: DISAGREE ({len(mismatches)} mismatches)")
            for line in mismatches:
                print(f"  {line}")
            status = 1
        else:
            summary = ""
            if oracle is not None:
                summary = (f" cycles={oracle.cycles}"
                           f" issued={oracle.issued_instructions}"
                           f" folded={oracle.folded_branches}"
                           f" mispredicts={oracle.mispredictions}")
            print(f"{name}: agree "
                  f"({program_parcels(program)} parcels{summary})")
    return status


def cmd_coverage(args: argparse.Namespace) -> int:
    profiles = args.profile or list(PROFILES)
    if args.dyn_confidence:
        dyn_mix: tuple[int | None, ...] = tuple(
            None if value < 0 else value for value in args.dyn_confidence)
    else:
        dyn_mix = _DYN_MIX
    coverage = CoverageMap()
    engine_cover = _EngineCoverage(ENGINE_MATRIX[_task_engine(args.engine)])
    for index in range(args.programs):
        seed = args.seed * 1_000_003 + index
        profile = profiles[index % len(profiles)]
        confidence = dyn_mix[index % len(dyn_mix)]
        policy = _confidence_policy(confidence)
        try:
            program = assemble(generate_source(seed, profile))
            result = run_oracle(program, policy)
        except (AssemblyError, OracleError) as exc:
            print(f"seed {seed} ({profile}): generator produced a bad "
                  f"program: {exc}", file=sys.stderr)
            return 1
        coverage.add_records(result.branches, result.body_records)
        engine_cover.add(result.branches, result.body_records, confidence)
    print(f"programs: {args.programs}")
    print(f"coverage: {coverage.total_hit()}/{total_reachable()} "
          f"reachable cells ({coverage.fraction():.1%})")
    for line in engine_cover.lines():
        print(line)
    for cell, count in sorted(coverage.cells.items()):
        print(f"  {'/'.join(cell)}: {count}")
    for cell in coverage.missing():
        print(f"  missing: {'/'.join(cell)}")
    for cell in coverage.missing_fold_verify():
        print(f"  missing fold-verify: {'/'.join(cell)}")
    if args.json:
        Path(args.json).write_text(coverage.to_json())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crisp-verify",
        description="Differential conformance fuzzing for the CRISP "
                    "simulators (fast kernel vs reference vs oracle).")
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="generate and differentially "
                                       "check programs")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--programs", type=int, default=200,
                      help="number of programs (default mode)")
    fuzz.add_argument("--budget", type=float, default=None, metavar="SECS",
                      help="wall-clock stop instead of a program count")
    fuzz.add_argument("--target-coverage", type=float, default=None,
                      metavar="FRACTION",
                      help="keep generating until this fraction of "
                           "reachable cells is hit")
    fuzz.add_argument("--max-programs", type=int, default=2000,
                      help="hard cap for budget/target modes")
    fuzz.add_argument("--profile", action="append", choices=PROFILES,
                      help="restrict profiles (repeatable; default all)")
    fuzz.add_argument("--jobs", type=int, default=None,
                      help="worker processes (0 = all cores)")
    fuzz.add_argument("--no-stress", action="store_true",
                      help="skip the cold-cache stress comparison")
    fuzz.add_argument("--coverage-out", metavar="FILE",
                      help="write the coverage map as JSON")
    fuzz.add_argument("--corpus-dir", default="tests/corpus",
                      help="where shrunk repros are written")
    fuzz.add_argument("--max-shrinks", type=int, default=3,
                      help="shrink at most this many disagreements")
    fuzz.add_argument("--dyn-confidence", action="append", type=int,
                      metavar="N",
                      help="pin the fold-policy mix to these dynamic-fold "
                           "confidence thresholds (repeatable; -1 = the "
                           "static policy; default cycles static,1,2,3)")
    fuzz.add_argument("--inject", choices=INJECT_MODES, default=None,
                      help="misprediction fault injection in both kernels")
    fuzz.add_argument("--engine",
                      choices=("fast", "blockspec", "batched", "all"),
                      default="fast",
                      help="engine matrix: 'blockspec'/'batched' add "
                           "that tier as a fourth bitwise arm, 'all' "
                           "runs the 5-way matrix")
    fuzz.add_argument("--campaign-out", metavar="PREFIX", default=None,
                      help="record campaign telemetry: PREFIX.json "
                           "(manifest), PREFIX.jsonl (live stream for "
                           "'crisp-obs tail'), PREFIX_trace.json (merged "
                           "Perfetto trace). The fuzz results are "
                           "untouched")
    fuzz.add_argument("--no-heartbeat", action="store_true",
                      help="suppress the per-batch progress line on "
                           "stderr")
    fuzz.set_defaults(func=cmd_fuzz)

    replay = sub.add_parser("replay", help="re-check corpus .s files")
    replay.add_argument("files", nargs="+")
    replay.add_argument("--no-stress", action="store_true")
    replay.add_argument("--dyn-confidence", type=int, default=None,
                        metavar="N",
                        help="replay under FoldPolicy.dynamic(N)")
    replay.add_argument("--inject", choices=INJECT_MODES, default=None)
    replay.add_argument("--engine",
                        choices=("fast", "blockspec", "batched", "all"),
                        default="fast",
                        help="as for fuzz: widen the engine matrix")
    replay.set_defaults(func=cmd_replay)

    cover = sub.add_parser("coverage", help="oracle-only coverage sweep")
    cover.add_argument("--seed", type=int, default=0)
    cover.add_argument("--programs", type=int, default=200)
    cover.add_argument("--profile", action="append", choices=PROFILES)
    cover.add_argument("--dyn-confidence", action="append", type=int,
                       metavar="N",
                       help="as for fuzz: pin the fold-policy mix")
    cover.add_argument("--engine",
                       choices=("fast", "blockspec", "batched", "all"),
                       default="fast",
                       help="engine matrix to break the cell tallies "
                            "down over (one line per arm, with the "
                            "native/fallback split)")
    cover.add_argument("--json", metavar="FILE")
    cover.set_defaults(func=cmd_coverage)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
