"""Differential execution: fast kernel vs reference vs oracle — and,
with ``engines=("fast", "blockspec")``, a fourth arm running the
trace-compiled blockspec tier (see :mod:`repro.sim.blockspec`), which
must be bitwise identical to the fast kernel in every regime. Adding
``"batched"`` widens the matrix again (5-way with both): the lock-step
campaign tier (see :mod:`repro.sim.batched`) runs each regime as a
two-instance batch — one cohort leader plus one replicated follower,
so both the leader path and the follower finalization are compared
bitwise against the fast kernel on arch state, ``ExecutionStats``,
``PipelineStats`` and the attribution table.

Two comparison regimes are run per program:

**Ideal mode** — both cycle kernels get a conflict-free, pre-warmed
decoded cache (:func:`ideal_config`), which makes the pipeline's timing
exactly the analytic model the oracle computes. Here the oracle's
cycle/issue/fold/mispredict/stall counters, ``ExecutionStats`` and full
architectural state (every memory byte, accumulator, flag, SP) must
match the fast kernel *exactly*; ``zero_cost_overrides`` is checked as
a lower bound, because the kernels legitimately count additional
overrides on wrong-path and post-halt fetches the correct-path oracle
never sees. Those wrong-path-dependent counters (overrides, squashed
slots, cache hit/miss traffic) are instead reconciled fast-vs-reference
bit for bit, as is the entire ``PipelineStats`` dict.

**Stress mode** — a cold 16-entry cache forces miss traffic, conflict
evictions and wrong-path demand fetches. Timing is no longer analytic,
so the oracle only checks timing-independent facts (architectural
state, ``ExecutionStats``, issued/executed/folded counts — these are
address-deterministic regardless of cache behaviour), while the two
kernels must again agree bitwise.

On top of both, the runner validates the decode layer itself:

* every decoded-cache entry matches the oracle's independently derived
  fold structure, and its Next-PC / Alternate-Next-PC fields match a
  from-scratch recomputation out of the branch specifier (target =
  branch's own PC + displacement, resp. absolute/indirect rules);
* the per-site attribution table reconciles exactly with the aggregate
  pipeline counters on an instrumented run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.asm.assembler import AssemblyError, assemble
from repro.asm.program import Program
from repro.core.policy import FoldPolicy
from repro.isa.instructions import BranchMode
from repro.isa.parcels import PARCEL_BYTES
from repro.obs.attrib import attribute_run
from repro.sim.cpu import CpuConfig, CrispCpu
from repro.sim.progcache import predecode_cached
from repro.sim.reference import ReferenceCpu
from repro.sim.semantics import SimulationError
from repro.verify.generator import generate_source
from repro.verify.oracle import OracleError, OracleResult, run_oracle
from repro.verify.oracle import oracle_entries

_EXEC_ERRORS = (SimulationError, ZeroDivisionError)

#: CLI/task ``engine`` choice -> the engine arms a differential runs.
#: Every non-fast arm is compared *against* the fast kernel, so "fast"
#: is always present; "all" is the full 5-way matrix.
ENGINE_MATRIX: dict[str, tuple[str, ...]] = {
    "fast": ("fast",),
    "blockspec": ("fast", "blockspec"),
    "batched": ("fast", "batched"),
    "all": ("fast", "blockspec", "batched"),
}


def program_parcels(program: Program) -> int:
    return (program.code_end - program.code_base) // PARCEL_BYTES


def _next_pow2(n: int) -> int:
    power = 1
    while power < n:
        power <<= 1
    return power


def ideal_config(program: Program,
                 policy: FoldPolicy | None = None,
                 inject: str | None = None) -> CpuConfig:
    """A conflict-free cache configuration for analytic-timing runs.

    The cache needs one line per code address plus margin for the
    PDU's prefetch overrunning the image (decode stops at the first
    unmapped parcel, but may land a stray entry first).
    """
    span = program_parcels(program)
    return CpuConfig(
        fold_policy=policy if policy is not None else FoldPolicy.crisp(),
        icache_entries=_next_pow2(span + 64), inject=inject)


def stress_config(policy: FoldPolicy | None = None,
                  inject: str | None = None) -> CpuConfig:
    """A deliberately tiny cache: misses, conflicts, wrong-path fetches."""
    return CpuConfig(
        fold_policy=policy if policy is not None else FoldPolicy.crisp(),
        icache_entries=16, inject=inject)


# ---- invariant checks ------------------------------------------------------


def check_nextpc_invariants(program: Program,
                            policy: FoldPolicy) -> list[str]:
    """Recompute every entry's Next-PC fields from the branch specifier.

    Independent of :mod:`repro.core.nextpc`: a taken static target is
    the branch instruction's *own* address plus its PC-relative
    displacement (fold adjust falls out of using the branch PC, not the
    entry PC), or the absolute specifier; indirect and return entries
    must have no static fields at all.
    """
    problems: list[str] = []
    mirror = oracle_entries(program, policy)
    entries = predecode_cached(program, policy)
    seen = set()
    for entry in entries:
        expect = mirror.get(entry.address)
        seen.add(entry.address)
        where = f"entry {entry.address:#x}"
        if expect is None:
            problems.append(f"{where}: decoder entry at non-instruction "
                            f"address")
            continue
        if (entry.body, entry.branch) != (expect.body, expect.branch) or \
                entry.length_bytes != expect.length_bytes:
            problems.append(f"{where}: fold structure differs from "
                            f"instruction-level mirror")
            continue
        sequential = entry.address + entry.length_bytes
        if entry.branch is None:
            want = (sequential, None)
        else:
            spec = entry.branch.branch
            if spec is None or spec.is_indirect:
                want = (None, None)
            else:
                branch_pc = (entry.address if entry.body is None
                             else entry.address + entry.body.length_bytes())
                if spec.mode is BranchMode.PC_RELATIVE:
                    target = branch_pc + spec.value
                else:
                    target = spec.value
                if not entry.branch.is_conditional_branch:
                    want = (target, None)
                elif entry.branch.predicted_taken:
                    want = (target, sequential)
                else:
                    want = (sequential, target)
        got = (entry.next_pc, entry.alt_pc)
        if got != want:
            problems.append(f"{where}: Next-PC/Alternate {got} != "
                            f"recomputed {want}")
    for address in mirror:
        if address not in seen:
            problems.append(f"entry {address:#x}: missing from decoder "
                            f"pre-decode")
    return problems


def _compare_kernels(label: str, fast: CrispCpu, ref: ReferenceCpu,
                     out: list[str]) -> None:
    fast_stats = fast.stats.as_dict()
    ref_stats = ref.stats.as_dict()
    if fast_stats != ref_stats:
        keys = sorted(set(fast_stats) | set(ref_stats))
        for key in keys:
            a, b = fast_stats.get(key), ref_stats.get(key)
            if a != b:
                out.append(f"{label} stats.{key}: fast {a} != reference {b}")
    if fast.memory.snapshot() != ref.memory.snapshot():
        out.append(f"{label} memory: fast != reference")
    for attr in ("accum", "flag", "sp"):
        a, b = getattr(fast.state, attr), getattr(ref.state, attr)
        if a != b:
            out.append(f"{label} state.{attr}: fast {a} != reference {b}")


def _compare_engines(label: str, fast: CrispCpu, other: CrispCpu,
                     out: list[str]) -> None:
    """Bitwise fast-vs-blockspec comparison: full stats + arch state."""
    fast_stats = fast.stats.as_dict()
    other_stats = other.stats.as_dict()
    if fast_stats != other_stats:
        for key in sorted(set(fast_stats) | set(other_stats)):
            a, b = fast_stats.get(key), other_stats.get(key)
            if a != b:
                out.append(f"{label} stats.{key}: fast {a} != blockspec {b}")
    if fast.memory.snapshot() != other.memory.snapshot():
        out.append(f"{label} memory: fast != blockspec")
    for attr in ("accum", "flag", "sp"):
        a, b = getattr(fast.state, attr), getattr(other.state, attr)
        if a != b:
            out.append(f"{label} state.{attr}: fast {a} != blockspec {b}")


def _batched_instances(program: Program, config: CpuConfig, *,
                       warm: bool, max_cycles: int) -> list:
    """Run one regime as a two-instance lock-step batch.

    Duplicating the item puts a cohort follower behind the leader, so
    the comparison exercises both the lock-step execution path and the
    bit-identical follower finalization (under peel-off configs —
    injection, dynamic fold — both instances finalize individually,
    which checks that path instead).
    """
    from repro.sim.batched import BatchItem, run_batch

    item = BatchItem(program, config, max_cycles=max_cycles, warm=warm)
    return run_batch([item, item]).instances


def _compare_batched(label: str, fast: CrispCpu, instances: list,
                     out: list[str]) -> None:
    """Bitwise fast-vs-batched comparison over every batch instance."""
    fast_stats = fast.stats.as_dict()
    fast_memory = fast.memory.snapshot()
    for inst in instances:
        who = ("batched" if inst.shared_with is None
               else "batched-follower")
        if inst.error is not None:
            out.append(f"{label} {who} failed: {inst.error}")
            continue
        stats = inst.stats.as_dict()
        if stats != fast_stats:
            for key in sorted(set(stats) | set(fast_stats)):
                a, b = fast_stats.get(key), stats.get(key)
                if a != b:
                    out.append(f"{label} stats.{key}: fast {a} != "
                               f"{who} {b}")
        if inst.memory != fast_memory:
            out.append(f"{label} memory: fast != {who}")
        for attr, value in (("accum", inst.accum), ("flag", inst.flag),
                            ("sp", inst.sp)):
            want = getattr(fast.state, attr)
            if want != value:
                out.append(f"{label} state.{attr}: fast {want} != "
                           f"{who} {value}")


def _compare_arch(label: str, fast: CrispCpu,
                  oracle: OracleResult, out: list[str]) -> None:
    if fast.memory.snapshot() != oracle.memory:
        out.append(f"{label} memory: kernel != oracle")
    for attr in ("accum", "flag", "sp"):
        a, b = getattr(fast.state, attr), getattr(oracle, attr)
        if a != b:
            out.append(f"{label} state.{attr}: kernel {a} != oracle {b}")
    if fast.stats.execution.as_dict() != oracle.execution.as_dict():
        out.append(f"{label} ExecutionStats: kernel != oracle")


def run_differential(program: Program,
                     policy: FoldPolicy | None = None,
                     *,
                     stress: bool = True,
                     check_attribution: bool = True,
                     max_cycles: int = 5_000_000,
                     inject: str | None = None,
                     engines: tuple[str, ...] = ("fast",),
                     batched_results: dict[str, list] | None = None,
                     ) -> tuple[list[str], OracleResult | None]:
    """Run all three implementations; return (mismatches, oracle result).

    An empty mismatch list means full 3-way agreement. If the oracle
    *and* both kernels fail to complete (non-terminating or faulting
    program — possible for shrinker candidates, never for generated
    programs), that counts as agreement and returns ``([], None)``.

    ``inject`` (e.g. ``"always-wrong"``) turns on misprediction fault
    injection in both cycle kernels. The oracle does not model injected
    faults, so exact timing checks are skipped in that regime; the two
    kernels must still agree bitwise, architectural state must still
    match the oracle, and the timing-independent counts (issued /
    executed / folded) must still be oracle-exact — injected recoveries
    refetch the verified-correct path, so they may only add cycles,
    never instructions.

    ``engines`` widens the matrix: with ``"blockspec"`` included, a
    fourth arm runs the trace-compiled tier under the same ideal and
    stress configurations and must be bitwise identical to the fast
    kernel — full ``PipelineStats``, attribution table, every memory
    byte. (Under dynamic-fold policies the blockspec engine falls back
    to the per-cycle loop, so the check is exercised across the whole
    policy mix either way.) ``"batched"`` adds the lock-step campaign
    tier the same way: each regime runs as a leader+follower batch
    (:mod:`repro.sim.batched`) checked bitwise instance by instance,
    plus an ``engine="batched"`` attribution run compared table for
    table. ``batched_results`` lets a campaign scheduler inject
    pre-computed batch instances per regime (``{"ideal": [...],
    "stress": [...]}``) instead of running them inline — the results
    are bit-identical either way, so reports don't depend on which
    path produced them.
    """
    if policy is None:
        policy = FoldPolicy.crisp()
    blockspec = "blockspec" in engines
    batched = "batched" in engines
    mismatches: list[str] = []

    oracle: OracleResult | None = None
    oracle_error: Exception | None = None
    try:
        oracle = run_oracle(program, policy)
    except (OracleError, *_EXEC_ERRORS) as exc:
        oracle_error = exc

    config = ideal_config(program, policy, inject=inject)
    fast = CrispCpu(program, config)
    fast.warm_cache()
    try:
        fast.run(max_cycles)
    except _EXEC_ERRORS as exc:
        if oracle_error is not None:
            return [], None  # all implementations agree the program is bad
        return [f"ideal fast kernel failed but oracle halted: {exc}"], oracle
    if oracle_error is not None:
        return [f"ideal fast kernel halted but oracle failed: "
                f"{oracle_error}"], None
    assert oracle is not None

    ref = ReferenceCpu(program, config)
    ref.warm_cache()
    try:
        ref.run(max_cycles)
    except _EXEC_ERRORS as exc:
        return [f"ideal reference kernel failed: {exc}"], oracle

    _compare_kernels("ideal", fast, ref, mismatches)
    fast_stats = fast.stats.as_dict()
    if inject is None:
        for key, want in oracle.timing_dict().items():
            got = fast_stats[key]
            if got != want:
                mismatches.append(
                    f"ideal {key}: kernel {got} != oracle {want}")
        if fast.stats.dynamic_folds < oracle.dynamic_folds:
            mismatches.append(
                f"ideal dynamic_folds: kernel {fast.stats.dynamic_folds} "
                f"below oracle correct-path count {oracle.dynamic_folds}")
    else:
        # injected recoveries change timing but never instruction counts
        for key in ("issued_instructions", "executed_instructions",
                    "folded_branches"):
            got, want = fast_stats[key], oracle.timing_dict()[key]
            if got != want:
                mismatches.append(
                    f"ideal(inject) {key}: kernel {got} != oracle {want}")
    _compare_arch("ideal", fast, oracle, mismatches)
    if fast.stats.zero_cost_overrides < oracle.zero_cost_overrides:
        mismatches.append(
            f"ideal zero_cost_overrides: kernel "
            f"{fast.stats.zero_cost_overrides} below oracle correct-path "
            f"count {oracle.zero_cost_overrides}")

    if blockspec:
        bconfig = dataclasses.replace(config, engine="blockspec")
        bcpu = CrispCpu(program, bconfig)
        bcpu.warm_cache()
        try:
            bcpu.run(max_cycles)
        except _EXEC_ERRORS as exc:
            mismatches.append(f"ideal blockspec kernel failed: {exc}")
        else:
            _compare_engines("ideal", fast, bcpu, mismatches)

    if batched:
        instances = (batched_results.get("ideal")
                     if batched_results is not None else None)
        if instances is None:
            instances = _batched_instances(
                program, config, warm=True, max_cycles=max_cycles)
        _compare_batched("ideal", fast, instances, mismatches)

    mismatches.extend(check_nextpc_invariants(program, policy))

    if check_attribution:
        cpu, table = attribute_run(program, config, max_cycles=max_cycles)
        mismatches.extend(
            f"attribution: {problem}"
            for problem in table.reconcile(cpu.stats))
        if blockspec:
            # with an attribution sink attached the blockspec engine
            # deoptimizes every cycle, so the table must come out
            # identical — this pins the sink guard itself
            bcpu2, btable = attribute_run(
                program, dataclasses.replace(config, engine="blockspec"),
                max_cycles=max_cycles)
            mismatches.extend(
                f"blockspec attribution: {problem}"
                for problem in btable.reconcile(bcpu2.stats))
            if btable.as_dict() != table.as_dict():
                mismatches.append(
                    "attribution table: fast != blockspec")
        if batched:
            # the batched tier's quantum-sliced loop steps through the
            # same probes, so an instrumented run must attribute every
            # event to the same sites with the same counts
            qcpu, qtable = attribute_run(
                program, dataclasses.replace(config, engine="batched"),
                max_cycles=max_cycles)
            mismatches.extend(
                f"batched attribution: {problem}"
                for problem in qtable.reconcile(qcpu.stats))
            if qtable.as_dict() != table.as_dict():
                mismatches.append(
                    "attribution table: fast != batched")

    if stress:
        sconfig = stress_config(policy, inject=inject)
        sfast = CrispCpu(program, sconfig)
        sref = ReferenceCpu(program, sconfig)
        try:
            sfast.run(max_cycles)
            sref.run(max_cycles)
        except _EXEC_ERRORS as exc:
            mismatches.append(f"stress kernel failed: {exc}")
        else:
            _compare_kernels("stress", sfast, sref, mismatches)
            sstats = sfast.stats.as_dict()
            for key in ("issued_instructions", "executed_instructions",
                        "folded_branches"):
                got, want = sstats[key], oracle.timing_dict()[key]
                if got != want:
                    mismatches.append(
                        f"stress {key}: kernel {got} != oracle {want}")
            _compare_arch("stress", sfast, oracle, mismatches)
            if blockspec:
                sbcpu = CrispCpu(
                    program, dataclasses.replace(sconfig,
                                                 engine="blockspec"))
                try:
                    sbcpu.run(max_cycles)
                except _EXEC_ERRORS as exc:
                    mismatches.append(
                        f"stress blockspec kernel failed: {exc}")
                else:
                    _compare_engines("stress", sfast, sbcpu, mismatches)
            if batched:
                instances = (batched_results.get("stress")
                             if batched_results is not None else None)
                if instances is None:
                    instances = _batched_instances(
                        program, sconfig, warm=False,
                        max_cycles=max_cycles)
                _compare_batched("stress", sfast, instances, mismatches)

    return mismatches, oracle


# ---- picklable fuzz tasks for repro.eval.parallel --------------------------


@dataclass(frozen=True)
class FuzzTask:
    """One generated program to run through the differential check."""

    seed: int
    profile: str
    stress: bool = True
    #: run under ``FoldPolicy.dynamic(confidence)`` instead of the
    #: static CRISP policy when set
    dyn_confidence: int | None = None
    inject: str | None = None  #: misprediction fault-injection mode
    #: :data:`ENGINE_MATRIX` key: "fast" = the 3-way check,
    #: "blockspec"/"batched" add that tier as a fourth bitwise arm,
    #: "all" runs the full 5-way matrix
    engine: str = "fast"


def task_policy(task: FuzzTask) -> FoldPolicy | None:
    """The fold policy a task runs under (None = default static)."""
    if task.dyn_confidence is None:
        return None
    return FoldPolicy.dynamic(confidence=task.dyn_confidence)


@dataclass
class ProgramReport:
    """Worker result: verdict plus the coverage records to merge."""

    seed: int
    profile: str
    ok: bool
    mismatches: list[str] = field(default_factory=list)
    parcels: int = 0
    dyn_confidence: int | None = None  #: regime the task ran under
    inject: str | None = None
    engine: str = "fast"  #: engine matrix the task was checked under
    branch_cells: list[tuple[str, bool, str, str, str]] = \
        field(default_factory=list)
    body_cells: list[tuple[str, bool]] = field(default_factory=list)
    source: str | None = None  #: carried only for disagreeing programs


def run_fuzz_task(task: FuzzTask) -> ProgramReport:
    """Module-level worker: pure function of the task (process-safe).

    The generate/assemble and differential phases are wrapped in
    :func:`repro.obs.spans.span` sub-spans — no-ops normally, rendered
    inside the task's slice on the worker track when the scheduler runs
    a campaign recording (``--campaign-out``).
    """
    from repro.obs.spans import span

    with span("generate", seed=task.seed, profile=task.profile):
        source = generate_source(task.seed, task.profile)
        try:
            program = assemble(source)
        except AssemblyError as exc:
            return ProgramReport(task.seed, task.profile, ok=False,
                                 mismatches=[f"assemble: {exc}"],
                                 source=source)
    engines = ENGINE_MATRIX[task.engine]
    with span("differential", seed=task.seed):
        mismatches, oracle = run_differential(
            program, task_policy(task), stress=task.stress,
            inject=task.inject, engines=engines)
    return _task_report(task, program, source, mismatches, oracle)


def _task_report(task: FuzzTask, program: Program, source: str,
                 mismatches: list[str], oracle) -> ProgramReport:
    report = ProgramReport(task.seed, task.profile, ok=not mismatches,
                           mismatches=mismatches,
                           parcels=program_parcels(program),
                           dyn_confidence=task.dyn_confidence,
                           inject=task.inject, engine=task.engine)
    if oracle is not None:
        report.branch_cells = [
            (record.opcode, record.folded, record.outcome, record.interlock,
             record.fold_verify)
            for record in oracle.branches]
        report.body_cells = list(oracle.body_records)
    if mismatches:
        report.source = source
    return report


def run_fuzz_tasks_batched(tasks: list[FuzzTask]):
    """Run a round of fuzz tasks with their batched arms in lock-step.

    The per-task path (:func:`run_fuzz_task` with ``"batched"`` in the
    matrix) runs a private two-instance batch per regime. This serial
    scheduler instead *generates every program up front*, pools all
    tasks' ideal- and stress-regime instances into **one**
    :class:`~repro.sim.batched.BatchedSimulator` — so identical
    programs across tasks collapse into shared cohorts — and then runs
    each task's differential with the pre-computed instances injected
    via ``batched_results``. Batch instances are bit-identical to
    inline ones, so the returned reports are byte-identical to
    per-task execution (serial or ``--jobs N``).

    Returns ``(reports, batch_result)`` — the latter carries the
    lock-step telemetry (cohorts, supersteps, shared cycles) for the
    campaign recorder.
    """
    from repro.obs.spans import span
    from repro.sim.batched import BatchItem, run_batch

    prepared: list[tuple[FuzzTask, str, Program | None, str | None]] = []
    items: list[BatchItem] = []
    slots: list[dict[str, tuple[int, int]] | None] = []
    for task in tasks:
        with span("generate", seed=task.seed, profile=task.profile):
            source = generate_source(task.seed, task.profile)
            try:
                program = assemble(source)
            except AssemblyError as exc:
                prepared.append((task, source, None, f"assemble: {exc}"))
                slots.append(None)
                continue
        policy = task_policy(task)
        regimes: dict[str, tuple[int, int]] = {}
        ideal = BatchItem(program,
                          ideal_config(program, policy, inject=task.inject),
                          max_cycles=5_000_000, warm=True)
        regimes["ideal"] = (len(items), len(items) + 1)
        items.extend((ideal, ideal))
        if task.stress:
            stress = BatchItem(program,
                               stress_config(policy, inject=task.inject),
                               max_cycles=5_000_000, warm=False)
            regimes["stress"] = (len(items), len(items) + 1)
            items.extend((stress, stress))
        prepared.append((task, source, program, None))
        slots.append(regimes)

    batch = run_batch(items)
    by_index = {inst.index: inst for inst in batch.instances}
    reports: list[ProgramReport] = []
    for (task, source, program, problem), regimes in zip(prepared, slots):
        if program is None:
            reports.append(ProgramReport(task.seed, task.profile, ok=False,
                                         mismatches=[problem],
                                         source=source))
            continue
        assert regimes is not None
        injected = {name: [by_index[first], by_index[second]]
                    for name, (first, second) in regimes.items()}
        with span("differential", seed=task.seed):
            mismatches, oracle = run_differential(
                program, task_policy(task), stress=task.stress,
                inject=task.inject, engines=ENGINE_MATRIX[task.engine],
                batched_results=injected)
        reports.append(_task_report(task, program, source, mismatches,
                                    oracle))
    return reports, batch
