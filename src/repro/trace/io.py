"""Branch-trace serialization — "trace tapes".

The paper contrasts its in-situ measurement with "the traditional
evaluation method of using trace tapes". Both methods are supported:
:func:`save_trace` / :func:`load_trace` persist branch-event streams in a
compact line format, so expensive workload runs can be captured once and
replayed through any predictor configuration.

Format: one event per line, ``pc taken cond target`` in hex/flags::

    # crisp-trace v1
    1006 T c 1000
    1014 N c 1020

``target`` is ``-`` when unknown.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.trace.events import BranchEvent

MAGIC = "# crisp-trace v1"


class TraceFormatError(ValueError):
    """Raised on malformed trace files."""


def write_events(stream: TextIO, events: Iterable[BranchEvent]) -> int:
    """Write events to an open text stream; returns the event count."""
    stream.write(MAGIC + "\n")
    count = 0
    for event in events:
        taken = "T" if event.taken else "N"
        kind = "c" if event.conditional else "u"
        target = "-" if event.target is None else f"{event.target:x}"
        stream.write(f"{event.pc:x} {taken} {kind} {target}\n")
        count += 1
    return count


def read_events(stream: TextIO) -> Iterator[BranchEvent]:
    """Parse events from an open text stream (validates the header)."""
    header = stream.readline().rstrip("\n")
    if header != MAGIC:
        raise TraceFormatError(f"not a crisp-trace file: {header!r}")
    for line_no, line in enumerate(stream, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 4 or fields[1] not in "TN" or fields[2] not in "cu":
            raise TraceFormatError(f"line {line_no}: bad record {line!r}")
        target = None if fields[3] == "-" else int(fields[3], 16)
        yield BranchEvent(
            pc=int(fields[0], 16),
            taken=fields[1] == "T",
            conditional=fields[2] == "c",
            target=target,
        )


def save_trace(path: str | Path, events: Iterable[BranchEvent]) -> int:
    """Write a trace tape to ``path``; returns the event count."""
    with open(path, "w", encoding="ascii") as handle:
        return write_events(handle, events)


def load_trace(path: str | Path) -> list[BranchEvent]:
    """Read a whole trace tape."""
    with open(path, encoding="ascii") as handle:
        return list(read_events(handle))


def trace_to_string(events: Iterable[BranchEvent]) -> str:
    """Serialize to a string (round-trips through :func:`read_events`)."""
    buffer = io.StringIO()
    write_events(buffer, events)
    return buffer.getvalue()
