"""The branch-trace event format."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BranchEvent:
    """One dynamic branch execution.

    ``pc`` identifies the static branch; ``taken`` is the outcome;
    ``conditional`` separates the branches prediction applies to;
    ``target`` is the (static) destination when known — predictors that
    model target storage (BTB, jump trace) use it.
    """

    pc: int
    taken: bool
    conditional: bool = True
    target: int | None = None
