"""Per-branch trace analytics.

Aggregates a branch-event stream into per-static-branch statistics and
classifies each site into the behaviour classes the synthetic workloads
are built from (biased / loop-like / alternating / phase-structured /
mixed). Closing the calibration loop: running this over a *real*
captured trace shows the same class structure the synthetic generators
assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.events import BranchEvent


@dataclass
class BranchSiteStats:
    """Dynamic statistics of one static branch."""

    pc: int
    executions: int = 0
    taken: int = 0
    transitions: int = 0  #: direction changes between consecutive runs
    _last: bool | None = field(default=None, repr=False)

    def observe(self, taken: bool) -> None:
        self.executions += 1
        if taken:
            self.taken += 1
        if self._last is not None and self._last != taken:
            self.transitions += 1
        self._last = taken

    @property
    def taken_fraction(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def bias(self) -> float:
        """Majority-direction fraction — the optimal static accuracy."""
        fraction = self.taken_fraction
        return max(fraction, 1.0 - fraction)

    @property
    def switch_rate(self) -> float:
        """Direction changes per opportunity (1.0 = strict alternation)."""
        if self.executions < 2:
            return 0.0
        return self.transitions / (self.executions - 1)

    @property
    def classification(self) -> str:
        """biased / loop / alternating / phased / mixed.

        * ``biased``: one direction ≥ 95 % of the time;
        * ``alternating``: switches nearly every execution;
        * ``loop``: taken-dominated with the regular one-switch-per-
          iteration-count signature of loop back-edges;
        * ``phased``: long same-direction runs (low switch rate) without
          a dominant overall direction;
        * ``mixed``: everything else (data-dependent).
        """
        if self.executions < 4:
            return "mixed"
        if self.bias >= 0.95:
            return "biased"
        if self.switch_rate >= 0.8:
            return "alternating"
        expected_loop_switches = 2 * min(self.taken,
                                         self.executions - self.taken)
        if self.taken_fraction >= 0.6 and self.transitions \
                >= 0.8 * expected_loop_switches:
            return "loop"
        if self.switch_rate <= 0.2:
            return "phased"
        return "mixed"


@dataclass
class TraceProfile:
    """Whole-trace analytics."""

    sites: dict[int, BranchSiteStats] = field(default_factory=dict)
    events: int = 0

    @property
    def static_sites(self) -> int:
        return len(self.sites)

    def class_mixture(self) -> dict[str, float]:
        """Dynamic-execution-weighted fraction per behaviour class."""
        weights: dict[str, int] = {}
        for site in self.sites.values():
            key = site.classification
            weights[key] = weights.get(key, 0) + site.executions
        total = sum(weights.values()) or 1
        return {key: count / total for key, count in weights.items()}

    def optimal_static_accuracy(self) -> float:
        """Aggregate best-static-bit accuracy (Table 1's definition)."""
        if not self.events:
            return 0.0
        best = sum(max(site.taken, site.executions - site.taken)
                   for site in self.sites.values())
        return best / self.events

    def hottest(self, count: int = 10) -> list[BranchSiteStats]:
        """The most-executed branch sites."""
        return sorted(self.sites.values(),
                      key=lambda site: -site.executions)[:count]


def profile_trace(events: Iterable[BranchEvent],
                  conditional_only: bool = True) -> TraceProfile:
    """Aggregate an event stream into per-branch statistics."""
    profile = TraceProfile()
    for event in events:
        if conditional_only and not event.conditional:
            continue
        site = profile.sites.get(event.pc)
        if site is None:
            site = profile.sites[event.pc] = BranchSiteStats(event.pc)
        site.observe(event.taken)
        profile.events += 1
    return profile
