"""Branch traces: the event format, capture, and synthetic generators.

The prediction study consumes only (branch PC, taken, target) streams, so
the paper's large proprietary workloads — troff, the C compiler, a VLSI
design-rule checker, with 1.5–38 million branches each — are substituted
with distribution-calibrated synthetic generators
(:mod:`repro.trace.synthetic`), while the small benchmarks run for real
on the functional simulator (:mod:`repro.trace.capture`).
"""

from repro.trace.events import BranchEvent
from repro.trace.capture import capture_trace
from repro.trace.io import (
    TraceFormatError,
    load_trace,
    save_trace,
    trace_to_string,
)
from repro.trace.synthetic import (
    BranchProfile,
    SyntheticWorkload,
    TROFF_LIKE,
    CC_LIKE,
    DRC_LIKE,
    synthetic_workloads,
)

__all__ = [
    "BranchEvent",
    "capture_trace",
    "TraceFormatError",
    "load_trace",
    "save_trace",
    "trace_to_string",
    "BranchProfile",
    "SyntheticWorkload",
    "TROFF_LIKE",
    "CC_LIKE",
    "DRC_LIKE",
    "synthetic_workloads",
]
