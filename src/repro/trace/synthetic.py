"""Synthetic branch-trace generators for the paper's large workloads.

troff (22 M branches), the C compiler (1.5 M) and a VLSI design-rule
checker (38 M) are proprietary programs we cannot run; the prediction
study, however, consumes only a (branch-PC, taken) event stream. Each
generator below models a *population of static branches* with the
behaviour classes real traces exhibit:

* ``bias(p)`` — i.i.d. data-dependent branches (static ≈ max(p, 1−p),
  one-bit dynamic ≈ p² + (1−p)²);
* ``loop(n)`` — n-iteration loop back-edges (taken n times, then not);
* ``runs(a, b)`` — phase-structured branches (scan a row, skip a gap):
  static caps at a/(a+b) while dynamic adapts to each phase, the effect
  that lets dynamic schemes beat static on the DRC trace;
* ``alternating()`` — strict TFTF, where static scores 50 % and one-bit
  dynamic 0 % (the paper's explanation for the small-benchmark rows).

The mixture weights are calibrated (see ``tests/test_trace_synthetic.py``
and the Table-1 bench) so each generator reproduces its program's
static/1/2/3-bit accuracy row to within a few points. Only the *mixture*
is synthetic; the predictors under test are the real implementations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.trace.events import BranchEvent

Behaviour = Callable[[random.Random], Iterator[bool]]


def bias(p_taken: float) -> Behaviour:
    """I.i.d. branch taken with probability ``p_taken``."""
    def make(rng: random.Random) -> Iterator[bool]:
        while True:
            yield rng.random() < p_taken
    return make


def loop(iterations: int) -> Behaviour:
    """A loop back-edge: taken ``iterations`` times, then one not-taken."""
    def make(rng: random.Random) -> Iterator[bool]:
        while True:
            for _ in range(iterations):
                yield True
            yield False
    return make


def runs(taken_run: int, not_taken_run: int) -> Behaviour:
    """Phase-structured: ``taken_run`` takens, then ``not_taken_run`` nots."""
    def make(rng: random.Random) -> Iterator[bool]:
        while True:
            for _ in range(taken_run):
                yield True
            for _ in range(not_taken_run):
                yield False
    return make


def alternating() -> Behaviour:
    """Strict alternation — the Figure-3 ``if (i & 1)`` behaviour."""
    def make(rng: random.Random) -> Iterator[bool]:
        value = True
        while True:
            yield value
            value = not value
    return make


@dataclass(frozen=True)
class BranchProfile:
    """A class of static branches within a workload."""

    weight: float  #: fraction of dynamic branch executions
    population: int  #: number of static branches with this behaviour
    behaviour: Behaviour
    label: str = ""


@dataclass(frozen=True)
class SyntheticWorkload:
    """A calibrated synthetic branch-trace generator."""

    name: str
    description: str
    profiles: tuple[BranchProfile, ...]
    paper_branches: int  #: dynamic branch count the paper reports
    paper_row: tuple[float, float, float, float]  #: Table-1 accuracies

    def generate(self, events: int, seed: int = 1987) -> Iterator[BranchEvent]:
        """Yield ``events`` dynamic branches, deterministically per seed."""
        rng = random.Random(seed)
        streams: list[tuple[int, Iterator[bool]]] = []
        weights: list[float] = []
        base_pc = 0x100000
        for profile in self.profiles:
            for index in range(profile.population):
                pc = base_pc
                base_pc += 4
                streams.append((pc, profile.behaviour(rng)))
                weights.append(profile.weight / profile.population)
        indices = list(range(len(streams)))
        for _ in range(events):
            which = rng.choices(indices, weights)[0]
            pc, stream = streams[which]
            yield BranchEvent(pc, next(stream), conditional=True,
                              target=pc - 64)


TROFF_LIKE = SyntheticWorkload(
    "troff",
    "Text-processor-like: mostly strongly biased dispatch and loop "
    "branches; static and dynamic nearly tie in the low .90s.",
    (
        BranchProfile(0.54, 30, bias(0.99), "biased dispatch"),
        BranchProfile(0.34, 12, loop(24), "inner loops"),
        BranchProfile(0.06, 6, runs(40, 8), "scan phases"),
        BranchProfile(0.06, 8, bias(0.60), "data-dependent"),
    ),
    paper_branches=22_000_000,
    paper_row=(0.94, 0.93, 0.95, 0.95),
)

CC_LIKE = SyntheticWorkload(
    "ccom",
    "Compiler-like: weakly biased data-dependent tests pull every scheme "
    "into the .70s; extra hysteresis (3 bits) loses on phase changes.",
    (
        BranchProfile(0.40, 20, bias(0.97), "error paths"),
        BranchProfile(0.30, 16, runs(16, 12), "phase-structured tests"),
        BranchProfile(0.06, 6, alternating(), "alternators"),
        BranchProfile(0.24, 12, bias(0.60), "weak data-dependent"),
    ),
    paper_branches=1_500_000,
    paper_row=(0.74, 0.77, 0.77, 0.74),
)

DRC_LIKE = SyntheticWorkload(
    "vlsi_drc",
    "Design-rule-checker-like: long scan/skip phases let dynamic history "
    "adapt (.95) where one static bit cannot (.89).",
    (
        BranchProfile(0.66, 20, bias(0.995), "grid guards"),
        BranchProfile(0.18, 10, runs(60, 45), "scan phases"),
        BranchProfile(0.08, 6, loop(16), "row loops"),
        BranchProfile(0.08, 8, bias(0.65), "rule tests"),
    ),
    paper_branches=38_000_000,
    paper_row=(0.89, 0.95, 0.95, 0.95),
)


def synthetic_workloads() -> dict[str, SyntheticWorkload]:
    """The three large-program substitutes, by name."""
    return {workload.name: workload
            for workload in (TROFF_LIKE, CC_LIKE, DRC_LIKE)}
