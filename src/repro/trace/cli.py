"""``crisp-trace``: capture, inspect and study branch-trace tapes."""

from __future__ import annotations

import argparse


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="crisp-trace",
        description="Capture and analyze branch traces.")
    commands = parser.add_subparsers(dest="command", required=True)

    capture = commands.add_parser(
        "capture", help="run a program and write its branch trace")
    capture.add_argument("source", help="mini-C (.c) or assembly source")
    capture.add_argument("-o", "--output", required=True,
                         help="trace file to write")
    capture.add_argument("--conditional-only", action="store_true",
                         help="record only conditional branches")

    info = commands.add_parser("info", help="summarize a trace tape")
    info.add_argument("trace", help="trace file")

    study = commands.add_parser(
        "study", help="score the Table-1 predictor line-up on a tape")
    study.add_argument("trace", help="trace file")

    classify = commands.add_parser(
        "classify", help="per-branch behaviour classification of a tape")
    classify.add_argument("trace", help="trace file")
    classify.add_argument("--top", type=int, default=10,
                          help="hottest sites to list")

    synth = commands.add_parser(
        "synthesize", help="generate a calibrated synthetic tape")
    synth.add_argument("workload", choices=["troff", "ccom", "vlsi_drc"])
    synth.add_argument("-o", "--output", required=True)
    synth.add_argument("--events", type=int, default=100_000)
    synth.add_argument("--seed", type=int, default=1987)

    args = parser.parse_args(argv)
    if args.command == "capture":
        return _capture(args)
    if args.command == "info":
        return _info(args)
    if args.command == "study":
        return _study(args)
    if args.command == "classify":
        return _classify(args)
    return _synthesize(args)


def _load_program(path: str):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith(".c"):
        from repro.lang import compile_source
        return compile_source(text)
    from repro.asm import assemble
    return assemble(text)


def _capture(args) -> int:
    from repro.trace import capture_trace, save_trace
    program = _load_program(args.source)
    events = capture_trace(program, conditional_only=args.conditional_only)
    count = save_trace(args.output, events)
    print(f"wrote {count} branch events to {args.output}")
    return 0


def _info(args) -> int:
    from repro.trace import load_trace
    events = load_trace(args.trace)
    conditional = sum(1 for e in events if e.conditional)
    taken = sum(1 for e in events if e.taken)
    static = len({e.pc for e in events})
    print(f"{len(events)} dynamic branches ({conditional} conditional), "
          f"{static} static sites, {taken} taken "
          f"({100 * taken / len(events):.1f}%)" if events
          else "empty trace")
    return 0


def _study(args) -> int:
    from repro.predict import PredictionStudy
    from repro.trace import load_trace
    study = PredictionStudy()
    study.observe_all(load_trace(args.trace))
    for name, accuracy in study.accuracies().items():
        print(f"{name:<16} {accuracy:6.1%}")
    return 0


def _classify(args) -> int:
    from repro.trace import load_trace
    from repro.trace.analyze import profile_trace
    profile = profile_trace(load_trace(args.trace))
    print(f"{profile.events} conditional executions over "
          f"{profile.static_sites} sites; optimal static accuracy "
          f"{profile.optimal_static_accuracy():.1%}")
    print("class mixture (execution-weighted):")
    for name, fraction in sorted(profile.class_mixture().items(),
                                 key=lambda kv: -kv[1]):
        print(f"  {name:<12} {fraction:6.1%}")
    print(f"hottest {args.top} sites:")
    for site in profile.hottest(args.top):
        print(f"  {site.pc:#08x} x{site.executions:<7} "
              f"taken {site.taken_fraction:6.1%}  "
              f"switch {site.switch_rate:5.1%}  {site.classification}")
    return 0


def _synthesize(args) -> int:
    from repro.trace import save_trace, synthetic_workloads
    workload = synthetic_workloads()[args.workload]
    count = save_trace(args.output,
                       workload.generate(args.events, args.seed))
    print(f"wrote {count} synthetic {args.workload} events "
          f"to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
