"""Capture branch traces from real program runs."""

from __future__ import annotations

from repro.asm.program import Program
from repro.isa.instructions import BranchMode
from repro.trace.events import BranchEvent


def capture_trace(program: Program,
                  max_instructions: int = 50_000_000,
                  conditional_only: bool = False) -> list[BranchEvent]:
    """Run ``program`` on the functional simulator; return its branch
    trace in execution order."""
    from repro.sim.functional import FunctionalSimulator

    events: list[BranchEvent] = []

    def hook(pc: int, instruction, taken: bool) -> None:
        conditional = instruction.is_conditional_branch
        if conditional_only and not conditional:
            return
        target = None
        spec = instruction.branch
        if spec is not None:
            if spec.mode is BranchMode.PC_RELATIVE:
                target = pc + spec.value
            elif spec.mode is BranchMode.ABSOLUTE:
                target = spec.value
        events.append(BranchEvent(pc, taken, conditional, target))

    FunctionalSimulator(program, branch_hook=hook).run(max_instructions)
    return events
