# Convenience targets for the CRISP branch-folding reproduction.

PYTHON ?= python

.PHONY: install test bench bench-throughput bench-blockspec \
	bench-batched eval report examples obs obs-overhead \
	campaign-overhead gate annotate trend fuzz fuzz-inject \
	fuzz-engines fuzz-batched clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

eval:
	$(PYTHON) -m repro.eval.cli all

report:
	$(PYTHON) -m repro.eval.cli report
	$(PYTHON) -m repro.obs.cli trend

trend:
	$(PYTHON) -m repro.obs.cli trend

obs:
	$(PYTHON) -m repro.obs.cli --workload figure3 \
		--trace obs_trace.json --manifest obs_run.json \
		--metrics obs_metrics.jsonl

obs-overhead:
	$(PYTHON) -m pytest benchmarks/bench_obs_overhead.py -q -s

campaign-overhead:
	$(PYTHON) -m pytest benchmarks/bench_campaign_overhead.py -q -s

bench-throughput:
	$(PYTHON) -m pytest benchmarks/bench_sim_throughput.py -q -s

bench-blockspec:
	$(PYTHON) -m pytest benchmarks/bench_sim_throughput.py -q -s \
		-k blockspec

bench-batched:
	$(PYTHON) -m pytest benchmarks/bench_sim_throughput.py -q -s \
		-k batched

gate:
	$(PYTHON) -m repro.obs.cli gate --baseline BENCH_obs_baseline.json \
		--threshold 2% --update-trajectory BENCH_table4_trajectory.json

annotate:
	$(PYTHON) -m repro.obs.cli annotate --workload figure3 --spread

# the default fuzz mix already rotates {static, dynamic_fold @ conf 1/2/3}
fuzz:
	$(PYTHON) -m repro.verify.cli fuzz --seed 0 --budget 60 --jobs 0 \
		--coverage-out fuzz_coverage.json \
		--campaign-out fuzz_campaign

# every verified-correct fold forced down the recovery path
fuzz-inject:
	$(PYTHON) -m repro.verify.cli fuzz --seed 1 --budget 30 --jobs 0 \
		--inject always-wrong --coverage-out fuzz_coverage_inject.json \
		--campaign-out fuzz_campaign_inject

# 5-way differential: oracle / reference / fast / blockspec / batched
fuzz-engines:
	$(PYTHON) -m repro.verify.cli fuzz --seed 2 --budget 60 --jobs 0 \
		--engine all --coverage-out fuzz_coverage_engines.json

# lock-step campaign scheduler: serial on purpose, so all tasks' batched
# arms pool into one BatchedSimulator (identical programs share cohorts)
fuzz-batched:
	$(PYTHON) -m repro.verify.cli fuzz --seed 0 --budget 45 \
		--engine batched --coverage-out fuzz_coverage_batched.json \
		--campaign-out fuzz_campaign_batched

examples:
	@for example in examples/*.py; do \
		echo "== $$example =="; \
		$(PYTHON) $$example || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks build *.egg-info
	rm -f obs_trace.json obs_run.json obs_metrics.jsonl \
		fuzz_coverage.json fuzz_coverage_inject.json \
		fuzz_coverage_engines.json fuzz_coverage_batched.json \
		fuzz_campaign.json fuzz_campaign.jsonl fuzz_campaign_trace.json \
		fuzz_campaign_inject.json fuzz_campaign_inject.jsonl \
		fuzz_campaign_inject_trace.json \
		fuzz_campaign_batched.json fuzz_campaign_batched.jsonl \
		fuzz_campaign_batched_trace.json \
		fuzz_campaign_report.md fuzz_campaign_inject_report.md \
		fuzz_campaign_batched_report.md trend_report.md
