# Convenience targets for the CRISP branch-folding reproduction.

PYTHON ?= python

.PHONY: install test bench eval report examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

eval:
	$(PYTHON) -m repro.eval.cli all

report:
	$(PYTHON) -m repro.eval.cli report

examples:
	@for example in examples/*.py; do \
		echo "== $$example =="; \
		$(PYTHON) $$example || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks build *.egg-info
