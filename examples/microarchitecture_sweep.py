"""Design-space exploration: sweep the machine around CRISP's shipping
configuration.

Uses the public configuration surface (fold policy, decoded-cache size,
memory latency, prefetch depth) to show where the paper's design choices
sit: 32 cache entries are enough for real loops, the CRISP fold policy
captures nearly all of fold-everything's win, and the decoded cache
insulates the pipeline from memory latency.

Run:  python examples/microarchitecture_sweep.py
"""

from repro.core import FoldPolicy
from repro.lang import CompilerOptions, compile_source
from repro.sim import CpuConfig
from repro.sim.cpu import run_cycle_accurate
from repro.workloads import get_workload

WORKLOAD = "strings"


def run(config: CpuConfig):
    program = compile_source(get_workload(WORKLOAD).source,
                             CompilerOptions(spreading=True))
    return run_cycle_accurate(program, config).stats


def main() -> None:
    print(f"workload: {WORKLOAD!r} "
          f"({get_workload(WORKLOAD).description})\n")

    print("=== fold policy ===")
    for name, policy in [("none", FoldPolicy.none()),
                         ("crisp", FoldPolicy.crisp()),
                         ("fold-all", FoldPolicy.fold_all())]:
        stats = run(CpuConfig(fold_policy=policy))
        print(f"  {name:<9} cycles={stats.cycles:7d}  "
              f"folded={stats.folded_branches:5d}  "
              f"issued CPI={stats.issued_cpi:.3f}  "
              f"apparent CPI={stats.apparent_cpi:.3f}")

    print()
    print("=== decoded instruction cache size (paper: 32 entries) ===")
    for entries in (8, 16, 32, 64, 128):
        stats = run(CpuConfig(icache_entries=entries))
        print(f"  {entries:4d} entries: cycles={stats.cycles:7d}  "
              f"hit rate={stats.icache_hit_rate:.3f}")

    print()
    print("=== main-memory latency (the cache decouples the EU) ===")
    for latency in (1, 2, 4, 8, 16):
        stats = run(CpuConfig(mem_latency=latency))
        print(f"  {latency:3d} cycles/fetch: cycles={stats.cycles:7d}")

    print()
    print("=== prefetch depth ===")
    for depth in (2, 4, 8, 16, 32):
        stats = run(CpuConfig(prefetch_depth=depth))
        print(f"  depth {depth:3d}: cycles={stats.cycles:7d}  "
              f"misses={stats.icache_misses}")


if __name__ == "__main__":
    main()
