"""Observe the pipeline: cycle-level tracing, precise interrupts, and
the stack cache.

The paper notes that every pipeline stage carries its instruction's PC
"to identify the instruction in the case of an interrupt or other
exception", and that squashing is safe because the ISA has no side
effects before the result write. This example makes those mechanisms
visible: a traced run showing folding and speculation in flight, a timer
interrupt delivered mid-loop with precise resumption, and the stack-cache
locality measurement behind CRISP's memory-to-memory format.

Run:  python examples/interrupts_and_tracing.py
"""

from repro.asm import assemble
from repro.lang import compile_source
from repro.sim import CrispCpu
from repro.sim.functional import FunctionalSimulator
from repro.sim.stackcache import attach
from repro.sim.tracer import PipelineTrace

TRACED_PROGRAM = """
        .word i, 0
loop:   add i, $1
        cmp.s< i, $4
        iftjmpy loop
        halt
"""

INTERRUPTIBLE_PROGRAM = """
        .entry main
        .word count, 0
        .word ticks, 0
        .word saved, 0

handler:
        mov saved, Accum
        add ticks, $1
        mov Accum, saved
        reti

main:
loop:   add count, $1
        cmp.s< count, $200
        iftjmpy loop
        halt
"""


def main() -> None:
    print("=== pipeline trace (watch the folded cmp+branch, '?', 'x') ===")
    trace = PipelineTrace(CrispCpu(assemble(TRACED_PROGRAM)))
    trace.run()
    print(trace.format_window(0, 26))
    print(f"\n{trace.bubbles()} bubble cycles out of "
          f"{trace.cpu.stats.cycles}")

    print("\n=== a 100-cycle timer interrupting a loop ===")
    program = assemble(INTERRUPTIBLE_PROGRAM)
    cpu = CrispCpu(program)
    vector = program.symbols["handler"]
    while not cpu.halted:
        if cpu.stats.cycles and cpu.stats.cycles % 100 == 0:
            cpu.interrupt(vector)
        cpu.step()
    print(f"count = {cpu.read_symbol('count')} (must be 200)")
    print(f"timer ticks handled = {cpu.read_symbol('ticks')}")
    print(f"interrupts taken = {cpu.interrupts_taken}, "
          f"total cycles = {cpu.stats.cycles}")

    print("\n=== stack-cache locality (why memory-to-memory is fast) ===")
    source = """
        int table[16];
        int main() {
            int i, acc;
            acc = 0;
            for (i = 0; i < 16; i++) table[i] = i * 3;
            for (i = 0; i < 16; i++) acc += table[i];
            return acc;
        }
    """
    simulator = FunctionalSimulator(compile_source(source))
    model = attach(simulator.state)
    simulator.run()
    print(model.summary())
    print("(locals hit the 32-word stack cache; the global table misses)")


if __name__ == "__main__":
    main()
