"""Branch-prediction laboratory: measure every scheme on your program.

The paper compared one static bit against 1/2/3 bits of dynamic history
by instrumenting a compiler so all schemes measured a live run at once.
This example does the same for a program of your choice, then adds the
schemes the paper argues against (BTB, MU5 jump trace) — and shows the
alternating-branch pathology that makes static beat dynamic.

Run:  python examples/branch_prediction_lab.py
"""

from repro.lang import compile_source
from repro.predict import (
    BranchTargetBuffer,
    CounterPredictor,
    JumpTrace,
    OptimalStaticPredictor,
    PredictionStudy,
)
from repro.predict.harness import measure_predictors
from repro.trace import TROFF_LIKE

# a program with three kinds of branches: a predictable loop, a biased
# guard, and an alternating condition
SOURCE = """
int hits; int misses; int toggles;

int main()
{
    int i;
    for (i = 0; i < 3000; i++) {
        if (i % 100 == 99)      /* rare: strongly biased not-taken */
            misses++;
        else
            hits++;
        if (i & 1)              /* alternates every iteration */
            toggles++;
    }
    return hits + misses + toggles;
}
"""


def main() -> None:
    program = compile_source(SOURCE)

    print("=== paper line-up (optimal static, 1/2/3-bit dynamic) ===")
    study = measure_predictors(program)
    for name, accuracy in study.accuracies().items():
        print(f"  {name:<16} {accuracy:6.1%}")
    print(f"  ({study.events} dynamic conditional branches)")

    print()
    print("=== full zoo on the same program ===")
    zoo = PredictionStudy([
        OptimalStaticPredictor(),
        CounterPredictor(1),
        CounterPredictor(2),
        BranchTargetBuffer(sets=128, ways=4),
        BranchTargetBuffer(sets=4, ways=1),
        JumpTrace(entries=8),
    ])
    from repro.trace import capture_trace
    zoo.observe_all(capture_trace(program, conditional_only=True))
    for name, accuracy in zoo.accuracies().items():
        print(f"  {name:<16} {accuracy:6.1%}")

    print()
    print("=== the alternating-branch pathology (paper, Table 1) ===")
    print("an if that flips every iteration: static gets exactly 50%,")
    print("every dynamic scheme gets ~0%:")
    pathological = PredictionStudy()
    from repro.trace.events import BranchEvent
    outcome = True
    for _ in range(1000):
        pathological.observe(BranchEvent(0x1000, outcome))
        outcome = not outcome
    for name, accuracy in pathological.accuracies().items():
        print(f"  {name:<16} {accuracy:6.1%}")

    print()
    print("=== a synthetic 'large program' trace (troff-like) ===")
    big = PredictionStudy()
    big.observe_all(TROFF_LIKE.generate(50_000))
    for name, accuracy in big.accuracies().items():
        print(f"  {name:<16} {accuracy:6.1%}   "
              f"(paper troff row: {TROFF_LIKE.paper_row})")
        break  # header printed once; show whole row below
    print(f"  all schemes: {[round(a, 3) for a in big.row()]}")


if __name__ == "__main__":
    main()
