"""Working below the compiler: assembly, encoding, and decoded entries.

Shows the substrate layers directly — assemble a hand-written program,
inspect the parcel encoding (1/3/5-parcel instructions, the 10-bit
branch offsets), watch the folder build Decoded Instruction Cache
entries with Next-PC / Alternate Next-PC fields, and single-step the
cycle-accurate machine.

Run:  python examples/assembler_playground.py
"""

from repro.asm import assemble, disassemble
from repro.core import FoldPolicy, decode_entry
from repro.isa.encoding import encode_instruction
from repro.sim import CrispCpu
from repro.sim.memory import Memory

SOURCE = """
        .entry main
        .word counter, 0
        .word limit, 12
main:   enter 0
loop:   add counter, $1
        cmp.s< counter, limit
        iftjmpy loop
        halt
"""


def main() -> None:
    program = assemble(SOURCE)

    print("=== listing ===")
    print(program.listing())

    print()
    print("=== parcel encodings ===")
    for address, instruction in zip(program.addresses, program.instructions):
        parcels = encode_instruction(instruction)
        hexes = " ".join(f"{p:04x}" for p in parcels)
        print(f"  {address:#06x}: {hexes:<16} {instruction} "
              f"({len(parcels)} parcel{'s' if len(parcels) > 1 else ''})")

    print()
    print("=== disassembly round-trip ===")
    image = program.parcel_image()
    parcels = [image[a] for a in sorted(image)]
    for line in disassemble(parcels, program.code_base):
        print(f"  {line}")

    print()
    print("=== decoded instruction cache entries (with folding) ===")
    memory = Memory()
    memory.load_program(program)
    for address in program.addresses:
        entry = decode_entry(memory.read_parcel, address, FoldPolicy.crisp())
        folded = "FOLDED " if entry.is_folded else "       "
        print(f"  {folded}{entry}")

    print()
    print("=== single-stepping the pipeline ===")
    cpu = CrispCpu(program)
    for cycle in range(24):
        cpu.step()
        slot = cpu.eu.rr
        executing = (str(slot.entry) if slot is not None and slot.valid
                     else "(bubble)")
        print(f"  cycle {cycle + 1:2d}: RR = {executing}")
        if cpu.halted:
            break
    cpu.run()
    print()
    print(f"finished: {cpu.stats.summary()}")
    print(f"counter = {cpu.read_symbol('counter')}")


if __name__ == "__main__":
    main()
