"""Static analysis: CFGs, block sizes, and fold coverage.

Two of the paper's design arguments are static-code facts:

* basic blocks are "on the order of 3 instructions" (why one prediction
  bit beat delay slots — there is rarely enough independent work to
  fill slots);
* most branch sites follow a 1- or 3-parcel instruction and are
  themselves one parcel (why the restricted fold policy captures almost
  everything).

This example measures both for any program and exports a Graphviz CFG.

Run:  python examples/static_analysis.py
"""

from repro.analysis import build_cfg, static_profile
from repro.core import FoldPolicy
from repro.lang import compile_source
from repro.workloads import FIGURE3, SUITE


def main() -> None:
    print("=== static profile of every workload ===")
    header = (f"{'program':<12}{'instrs':>8}{'blocks':>8}{'mean blk':>10}"
              f"{'1p branch':>11}{'fold cov':>10}")
    print(header)
    sources = {"figure3": FIGURE3}
    sources.update({name: wl.source for name, wl in SUITE.items()})
    for name, source in sources.items():
        program = compile_source(source)
        profile = static_profile(program)
        print(f"{name:<12}{profile.instructions:>8}"
              f"{profile.basic_blocks:>8}"
              f"{profile.mean_block_size:>10.2f}"
              f"{100 * profile.one_parcel_branch_fraction:>10.1f}%"
              f"{100 * profile.fold_coverage:>9.1f}%")

    print()
    print("=== fold policy coverage: CRISP vs fold-everything ===")
    for name in ("figure3", "dhry_like", "fib"):
        source = sources[name]
        program = compile_source(source)
        crisp = static_profile(program, FoldPolicy.crisp())
        everything = static_profile(program, FoldPolicy.fold_all())
        print(f"  {name:<12} crisp folds "
              f"{crisp.foldable_sites}/{crisp.branch_sites} sites, "
              f"fold-all {everything.foldable_sites}/"
              f"{everything.branch_sites}")

    print()
    print("=== Figure-3 control-flow graph (Graphviz) ===")
    cfg = build_cfg(compile_source(FIGURE3))
    print(cfg.to_dot())
    print()
    print(f"{len(cfg)} blocks; sizes {sorted(cfg.block_sizes())}")
    print("(pipe the digraph above into `dot -Tpng` to render it)")


if __name__ == "__main__":
    main()
