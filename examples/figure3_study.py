"""Reproduce the paper's evaluation end-to-end: the Figure-3 program
through Tables 2, 3 and 4.

This is the scenario the paper's evaluation section walks: one small C
program whose branches are deliberately hostile to prediction, measured
with each technique enabled in turn.

Run:  python examples/figure3_study.py
"""

from repro.eval.table2 import format_table2, run_table2
from repro.eval.table3 import format_table3, run_table3
from repro.eval.table4 import format_table4, run_table4
from repro.workloads import FIGURE3


def main() -> None:
    print("The Figure-3 program:")
    print(FIGURE3)

    print("=" * 72)
    print("Table 2 — dynamic instruction counts, CRISP vs VAX")
    print("=" * 72)
    print(format_table2(run_table2()))

    print()
    print("=" * 72)
    print("Table 3 — the loop before and after Branch Spreading")
    print("=" * 72)
    print(format_table3(run_table3()))

    print()
    print("=" * 72)
    print("Table 4 — cases A-E on the cycle-accurate machine")
    print("=" * 72)
    rows = run_table4()
    print(format_table4(rows))

    case_d = next(r for r in rows if r.case.name == "D")
    print()
    print(f"Case D executes {case_d.stats.executed_instructions} "
          f"instructions in {case_d.stats.cycles} cycles — "
          f"{case_d.stats.apparent_ipc:.2f} instructions per clock.")
    print(f"{case_d.stats.folded_branches} branches ran in zero time.")


if __name__ == "__main__":
    main()
