"""Quickstart: compile a C program, run it, watch branches fold away.

Run:  python examples/quickstart.py
"""

from repro.core import FoldPolicy
from repro.isa.parcels import to_s32
from repro.lang import CompilerOptions, compile_source, compile_to_assembly
from repro.sim import CpuConfig
from repro.sim.cpu import run_cycle_accurate
from repro.sim.functional import run_program

SOURCE = """
int histogram[10];

int main()
{
    int i, value, checksum;
    for (i = 0; i < 500; i++) {
        value = (i * 7 + 3) % 10;
        histogram[value] += 1;
    }
    checksum = 0;
    for (i = 0; i < 10; i++)
        checksum += histogram[i] * (i + 1);
    return checksum;
}
"""


def main() -> None:
    # 1. compile (with branch spreading, like the CRISP compiler)
    options = CompilerOptions(spreading=True)
    print("=== generated assembly (excerpt) ===")
    assembly = compile_to_assembly(SOURCE, options)
    print("\n".join(assembly.splitlines()[:18]))
    print("    ...")

    # 2. architectural run: what does the program compute?
    program = compile_source(SOURCE, options)
    functional = run_program(program)
    print("\n=== functional run ===")
    print(f"result           : {to_s32(functional.state.accum)}")
    print(f"instructions     : {functional.stats.instructions}")
    print(f"branches         : {functional.stats.branches} "
          f"({100 * functional.stats.branch_fraction:.1f}% of instructions)")

    # 3. cycle-accurate run with Branch Folding (the paper's machine)
    folded = run_cycle_accurate(compile_source(SOURCE, options))
    print("\n=== cycle-accurate run, Branch Folding ON ===")
    print(folded.stats.summary())

    # 4. same program with folding disabled
    unfolded = run_cycle_accurate(
        compile_source(SOURCE, options),
        CpuConfig(fold_policy=FoldPolicy.none()))
    print("\n=== cycle-accurate run, Branch Folding OFF ===")
    print(unfolded.stats.summary())

    speedup = unfolded.stats.cycles / folded.stats.cycles
    print(f"\nBranch Folding speedup on this program: {speedup:.2f}x")
    print(f"(apparent IPC with folding: {folded.stats.apparent_ipc:.2f} — "
          f"more than one instruction per clock)")


if __name__ == "__main__":
    main()
