"""Unit tests for the mini-C lexer, parser and semantic analysis."""

import pytest

from repro.lang import astnodes as ast
from repro.lang.lexer import CompileError, TokenKind, tokenize
from repro.lang.parser import parse
from repro.lang.sema import analyze


class TestLexer:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int intx for forx")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT,
                         TokenKind.KEYWORD, TokenKind.IDENT]

    def test_numbers(self):
        tokens = tokenize("42 0x1F 0")
        assert [t.value for t in tokens[:-1]] == [42, 31, 0]

    def test_char_literals(self):
        tokens = tokenize("'a' '\\n' '\\0'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 0]

    def test_maximal_munch(self):
        tokens = tokenize("a<<=b;a<<b;a<=b")
        texts = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
        assert "<<=" in texts and "<<" in texts and "<=" in texts

    def test_comments_ignored(self):
        tokens = tokenize("a // line\n b /* block\n comment */ c")
        assert [t.text for t in tokens[:-1]] == ["a", "b", "c"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_bad_character(self):
        with pytest.raises(CompileError):
            tokenize("int a = `5`;")


class TestParser:
    def test_global_variables(self):
        unit = parse("int a; int b = 5; int c[10];")
        assert [g.name for g in unit.globals] == ["a", "b", "c"]
        assert unit.globals[1].initializer == 5
        assert unit.globals[2].array_size == 10

    def test_comma_separated_globals(self):
        unit = parse("int a, b = 2, c;")
        assert len(unit.globals) == 3

    def test_negative_initializer(self):
        unit = parse("int a = -3;")
        assert unit.globals[0].initializer == -3

    def test_function_with_params(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        function = unit.function("add")
        assert function.params == ["a", "b"]
        assert isinstance(function.body.statements[0], ast.Return)

    def test_void_function(self):
        unit = parse("void f() { return; }")
        assert not unit.function("f").returns_value

    def test_precedence(self):
        unit = parse("int main() { return 1 + 2 * 3; }")
        ret = unit.function("main").body.statements[0]
        assert isinstance(ret.value, ast.Binary)
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_right_associative_assignment(self):
        unit = parse("int main() { int a; int b; a = b = 1; return a; }")
        stmt = unit.function("main").body.statements[2]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_if_else_chain(self):
        unit = parse("""
            int main() {
                if (1) return 1; else if (2) return 2; else return 3;
            }
        """)
        outer = unit.function("main").body.statements[0]
        assert isinstance(outer, ast.If)
        assert isinstance(outer.else_branch, ast.If)

    def test_for_loop_forms(self):
        unit = parse("""
            int main() {
                for (int i = 0; i < 10; i++) ;
                for (;;) break;
                return 0;
            }
        """)
        loops = [s for s in unit.function("main").body.statements
                 if isinstance(s, ast.For)]
        assert len(loops) == 2
        assert loops[1].condition is None

    def test_do_while(self):
        unit = parse("int main() { int i = 0; do i++; while (i < 3); return i; }")
        assert any(isinstance(s, ast.DoWhile)
                   for s in unit.function("main").body.statements)

    def test_ternary(self):
        unit = parse("int main() { return 1 ? 2 : 3; }")
        ret = unit.function("main").body.statements[0]
        assert isinstance(ret.value, ast.Conditional)

    def test_logical_operators(self):
        unit = parse("int main() { return 1 && 2 || 3; }")
        ret = unit.function("main").body.statements[0]
        assert isinstance(ret.value, ast.Logical)
        assert ret.value.op == "||"

    def test_array_indexing(self):
        unit = parse("int a[4]; int main() { return a[2]; }")
        ret = unit.function("main").body.statements[0]
        assert isinstance(ret.value, ast.ArrayIndex)

    def test_prefix_postfix(self):
        unit = parse("int main() { int i = 0; ++i; i--; return i; }")
        statements = unit.function("main").body.statements
        assert statements[1].expr.is_prefix
        assert not statements[2].expr.is_prefix

    def test_error_on_bad_assignment_target(self):
        with pytest.raises(CompileError):
            parse("int main() { 1 = 2; return 0; }")

    def test_error_on_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("int main() { return 0 }")

    def test_error_on_unterminated_block(self):
        with pytest.raises(CompileError):
            parse("int main() { return 0;")


class TestSema:
    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            analyze(parse("int main() { return nope; }"))

    def test_scoping_and_shadowing(self):
        info = analyze(parse("""
            int x;
            int main() {
                int x = 1;
                { int x = 2; x = 3; }
                return x;
            }
        """))
        assert info.locals_bytes["main"] == 8  # two distinct locals

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            analyze(parse("int main() { return missing(); }"))

    def test_forward_call_allowed(self):
        analyze(parse("""
            int main() { return helper(1); }
            int helper(int x) { return x; }
        """))

    def test_arity_checked(self):
        with pytest.raises(CompileError, match="argument"):
            analyze(parse("""
                int f(int a) { return a; }
                int main() { return f(1, 2); }
            """))

    def test_local_array_rejected(self):
        with pytest.raises(CompileError, match="local arrays"):
            analyze(parse("int main() { int a[4]; return 0; }"))

    def test_array_without_index_rejected(self):
        with pytest.raises(CompileError, match="without an index"):
            analyze(parse("int a[4]; int main() { return a; }"))

    def test_indexing_scalar_rejected(self):
        with pytest.raises(CompileError, match="not an array"):
            analyze(parse("int x; int main() { return x[0]; }"))

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break"):
            analyze(parse("int main() { break; return 0; }"))

    def test_duplicate_global(self):
        with pytest.raises(CompileError, match="redefinition"):
            analyze(parse("int a; int a;"))

    def test_duplicate_local_same_scope(self):
        with pytest.raises(CompileError, match="redefinition"):
            analyze(parse("int main() { int a; int a; return 0; }"))

    def test_void_returning_value_rejected(self):
        with pytest.raises(CompileError, match="returns a value"):
            analyze(parse("void f() { return 1; }"))
