"""Trace-tape serialization tests."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.asm import assemble
from repro.predict import PredictionStudy
from repro.trace import (
    BranchEvent,
    TraceFormatError,
    capture_trace,
    load_trace,
    save_trace,
    trace_to_string,
)
from repro.trace.io import read_events


events_strategy = st.lists(st.builds(
    BranchEvent,
    pc=st.integers(0, 2 ** 31 - 1),
    taken=st.booleans(),
    conditional=st.booleans(),
    target=st.one_of(st.none(), st.integers(0, 2 ** 31 - 1)),
), max_size=50)


class TestRoundtrip:
    @given(events_strategy)
    def test_string_roundtrip(self, events):
        text = trace_to_string(events)
        assert list(read_events(io.StringIO(text))) == events

    def test_file_roundtrip(self, tmp_path):
        events = [BranchEvent(0x1006, True, True, 0x1000),
                  BranchEvent(0x1014, False, False, None)]
        path = tmp_path / "run.trace"
        assert save_trace(path, events) == 2
        assert load_trace(path) == events

    def test_captured_program_trace_roundtrips(self, tmp_path):
        program = assemble("""
            .word i, 0
loop:       add i, $1
            cmp.s< i, $5
            iftjmpy loop
            halt
        """)
        events = capture_trace(program)
        path = tmp_path / "loop.trace"
        save_trace(path, events)
        assert load_trace(path) == events

    def test_replay_gives_identical_study(self, tmp_path):
        program = assemble("""
            .word i, 0
loop:       add i, $1
            and3 i, $3
            cmp.= Accum, $0
            iffjmpn skip
            add i, $1
skip:       cmp.s< i, $40
            iftjmpy loop
            halt
        """)
        live = PredictionStudy()
        live.observe_all(capture_trace(program, conditional_only=True))
        path = tmp_path / "tape.trace"
        save_trace(path, capture_trace(program, conditional_only=True))
        replayed = PredictionStudy()
        replayed.observe_all(load_trace(path))
        assert replayed.accuracies() == live.accuracies()


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="not a crisp-trace"):
            list(read_events(io.StringIO("garbage\n")))

    def test_bad_record(self):
        text = "# crisp-trace v1\n1000 X c -\n"
        with pytest.raises(TraceFormatError, match="bad record"):
            list(read_events(io.StringIO(text)))

    def test_comments_and_blanks_skipped(self):
        text = "# crisp-trace v1\n\n# comment\n1000 T c -\n"
        events = list(read_events(io.StringIO(text)))
        assert len(events) == 1
