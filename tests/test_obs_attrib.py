"""Per-site attribution and the differential manifest layer.

Pins the two tentpole properties:

* attribution totals reconcile *exactly* with ``PipelineStats`` on every
  Table-4 case (no event is lost or double-counted), and
* a manifest written, read back and diffed against itself is all-zero
  (the schema round-trip the gate depends on).
"""

import json
import math

import pytest

from repro.eval.table4 import CASE_DEFINITIONS, case_program_config
from repro.lang import compile_with_debug
from repro.obs.attrib import (
    AttributionTable,
    SiteStats,
    annotate_listing,
    attribute_run,
    table_from_branch_events,
)
from repro.obs.diff import (
    GATE_METRICS,
    check_gate,
    diff_documents,
    diff_metrics,
    diff_sites,
    gate_values,
    parse_threshold,
    trajectory_entry,
    update_trajectory,
)
from repro.obs.manifest import (
    SCHEMA_VERSION,
    manifest_for_cpu,
    read_manifest,
    write_manifest,
)


@pytest.fixture(scope="module", params=[case.name for case in CASE_DEFINITIONS])
def attributed_case(request):
    case = next(c for c in CASE_DEFINITIONS if c.name == request.param)
    program, config = case_program_config(case)
    cpu, table = attribute_run(program, config)
    return case, program, cpu, table


class TestReconciliation:
    def test_per_site_sums_match_aggregates(self, attributed_case):
        case, _, cpu, table = attributed_case
        assert table.reconcile(cpu.stats) == [], f"case {case.name}"

    def test_totals_cover_every_counter(self, attributed_case):
        _, _, cpu, table = attributed_case
        totals = table.totals()
        assert totals["executions"] == cpu.stats.execution.branches
        assert totals["taken"] == cpu.stats.execution.taken_branches
        assert totals["folded"] == cpu.stats.folded_branches
        assert totals["mispredicts"] == cpu.stats.mispredictions
        assert (totals["penalty_cycles"]
                == cpu.stats.misprediction_penalty_cycles)
        assert totals["overrides"] == cpu.stats.zero_cost_overrides
        assert totals["icache_misses"] == cpu.stats.icache_misses

    def test_attribution_does_not_perturb_timing(self, attributed_case):
        from repro.sim.cpu import run_cycle_accurate
        case, _, cpu, _ = attributed_case
        program, config = case_program_config(case)
        plain = run_cycle_accurate(program, config)
        assert plain.stats.cycles == cpu.stats.cycles

    def test_branch_sites_are_stable_across_folding(self):
        """The same branch PCs appear whether or not folding is on."""
        case_b = next(c for c in CASE_DEFINITIONS if c.name == "B")
        case_c = next(c for c in CASE_DEFINITIONS if c.name == "C")
        pcs = []
        for case in (case_b, case_c):  # identical code, folding differs
            program, config = case_program_config(case)
            _, table = attribute_run(program, config)
            pcs.append({row.pc for row in table.branch_sites()})
        assert pcs[0] == pcs[1]


class TestSiteStats:
    def test_rates(self):
        row = SiteStats(pc=0x1000, executions=100, taken=25, folded=50,
                        speculations=80, mispredicts=8)
        assert row.fold_rate == 0.5
        assert row.taken_rate == 0.25
        assert row.prediction_hit_rate == 0.9
        assert SiteStats(pc=0).prediction_hit_rate == 1.0

    def test_dict_round_trip_drops_zeros(self):
        row = SiteStats(pc=0x1000, executions=3, decodes=1)
        data = row.as_dict()
        assert data == {"executions": 3, "decodes": 1}
        assert SiteStats.from_dict(0x1000, data) == row

    def test_table_round_trip(self, attributed_case):
        _, _, _, table = attributed_case
        rebuilt = AttributionTable.from_dict(table.as_dict())
        assert rebuilt.as_dict() == table.as_dict()
        assert rebuilt.totals() == table.totals()


class TestAnnotateListing:
    def test_margin_and_source_interleave(self):
        from repro.lang import CompilerOptions, PredictionMode
        from repro.workloads import FIGURE3
        case_d = next(c for c in CASE_DEFINITIONS if c.name == "D")
        _, config = case_program_config(case_d)
        program, debug = compile_with_debug(FIGURE3, CompilerOptions(
            spreading=True, prediction=PredictionMode.HEURISTIC))
        _, table = attribute_run(program, config)
        listing = annotate_listing(program, table, debug)
        assert "fold%" in listing and "totals:" in listing
        assert "; L" in listing  # mini-C lines interleaved
        # every branch site's execution count appears in the margin
        for row in table.branch_sites():
            assert f"{row.executions}" in listing

    def test_debug_info_lines_point_into_source(self):
        from repro.workloads import FIGURE3
        program, debug = compile_with_debug(FIGURE3)
        assert debug.line_for_address  # table is populated
        for address, line in debug.line_for_address.items():
            assert debug.source_line(line) is not None
            assert debug.line_at(address) == line

    def test_branch_events_adapter(self):
        class Event:
            def __init__(self, pc, taken):
                self.pc, self.taken = pc, taken
        table = table_from_branch_events(
            [Event(0x10, True), Event(0x10, False), Event(0x20, True)])
        assert table.site(0x10).executions == 2
        assert table.site(0x10).taken == 1
        assert table.site(0x20).taken_rate == 1.0


class TestManifestRoundTrip:
    def test_write_read_diff_is_all_zero(self, attributed_case, tmp_path):
        case, _, cpu, table = attributed_case
        manifest = manifest_for_cpu(f"case_{case.name}", cpu,
                                    sites=table.as_dict())
        assert manifest["schema"] == SCHEMA_VERSION
        path = tmp_path / "run.json"
        write_manifest(str(path), manifest)
        loaded = read_manifest(str(path))
        assert loaded == json.loads(json.dumps(manifest))  # JSON-clean
        diff = diff_documents(loaded, loaded)
        for case_diff in diff["cases"].values():
            assert case_diff["metrics"] == []
            assert case_diff["sites"] == {}

    def test_schema1_documents_still_diff(self):
        """Readers must treat ``sites`` as optional (version-1 docs)."""
        old = {"kind": "crisp-run-manifest", "workload": "w",
               "metrics": {"cycles": 100}}
        new = {"kind": "crisp-run-manifest", "workload": "w",
               "metrics": {"cycles": 90},
               "sites": {"0x10": {"executions": 5}}}
        diff = diff_documents(old, new)["cases"]["w"]
        assert diff["metrics"][0]["delta"] == -10
        assert diff["sites"]["0x10"][0]["after"] == 5


class TestDiff:
    def test_deltas_over_union_of_leaves(self):
        deltas = {d.metric: d for d in diff_metrics(
            {"a": 1, "nested": {"b": 2.5}}, {"nested": {"b": 3.0}, "c": 4})}
        assert deltas["a"].delta == -1
        assert deltas["nested.b"].delta == 0.5
        assert deltas["c"].before == 0.0
        assert deltas["c"].relative == math.inf
        assert deltas["c"].as_dict()["relative"] is None

    def test_bools_are_not_metrics(self):
        assert diff_metrics({"flag": True}, {"flag": False}) == []

    def test_site_diff_orders_by_address(self):
        changed = diff_sites(
            {"0x100": {"executions": 1}, "0x20": {"executions": 2}},
            {"0x100": {"executions": 5}, "0x20": {"executions": 2}})
        assert list(changed) == ["0x100"]  # unchanged site omitted

    def test_case_set_mismatch_raises(self):
        base = {"kind": "crisp-bench-baseline",
                "cases": [{"extra": {"case": "A"}, "metrics": {}}]}
        other = {"kind": "crisp-bench-baseline",
                 "cases": [{"extra": {"case": "B"}, "metrics": {}}]}
        with pytest.raises(ValueError, match="case sets differ"):
            diff_documents(base, other)
        with pytest.raises(ValueError, match="unsupported document kind"):
            diff_documents({"kind": "mystery"}, {"kind": "mystery"})


class TestGate:
    METRICS = {"execution": {"branches": 100, "conditional_branches": 80},
               "folded_branches": 90, "mispredictions": 4,
               "issued_cpi": 1.10, "cycles": 1000}

    def manifest(self, **overrides):
        metrics = json.loads(json.dumps(self.METRICS))
        metrics.update(overrides)
        return {"kind": "crisp-run-manifest", "workload": "w",
                "metrics": metrics}

    def test_parse_threshold(self):
        assert parse_threshold("2%") == pytest.approx(0.02)
        assert parse_threshold("0.05") == pytest.approx(0.05)
        for bad in ("150%", "-1", "1.0"):
            with pytest.raises(ValueError):
                parse_threshold(bad)

    def test_gate_values(self):
        values = gate_values(self.METRICS)
        assert values["fold_rate"] == pytest.approx(0.9)
        assert values["issued_cpi"] == pytest.approx(1.10)
        assert values["prediction_accuracy"] == pytest.approx(0.95)
        assert set(values) == set(GATE_METRICS)

    def test_identical_documents_pass(self):
        regressions, checked = check_gate(self.manifest(), self.manifest())
        assert regressions == []
        assert list(checked) == ["w"]

    def test_each_direction_is_respected(self):
        # fold_rate: higher is better -> falling fails
        worse, _ = check_gate(self.manifest(),
                              self.manifest(folded_branches=80))
        assert [r.metric for r in worse] == ["fold_rate"]
        # issued_cpi: lower is better -> rising fails, falling passes
        worse, _ = check_gate(self.manifest(), self.manifest(issued_cpi=1.2))
        assert [r.metric for r in worse] == ["issued_cpi"]
        better, _ = check_gate(self.manifest(), self.manifest(issued_cpi=0.9))
        assert better == []

    def test_threshold_is_relative(self):
        slightly = self.manifest(folded_branches=89)  # -1.1% fold rate
        assert check_gate(self.manifest(), slightly, 0.02)[0] == []
        assert len(check_gate(self.manifest(), slightly, 0.01)[0]) == 1

    def test_regression_describes_itself(self):
        regressions, _ = check_gate(self.manifest(),
                                    self.manifest(folded_branches=0))
        description = regressions[0].describe()
        assert "fold_rate fell" in description and "100.00%" in description


class TestTrajectory:
    def test_entry_carries_headline_metrics(self):
        entry = trajectory_entry(
            {"kind": "crisp-run-manifest", "workload": "w", "git_sha": "abc",
             "metrics": TestGate.METRICS})
        assert entry["git_sha"] == "abc"
        assert entry["cases"]["w"]["cycles"] == 1000
        assert entry["cases"]["w"]["fold_rate"] == pytest.approx(0.9)

    def test_same_sha_replaces_last_entry(self):
        document = update_trajectory(None, {"git_sha": "a", "cases": {}})
        document = update_trajectory(document, {"git_sha": "a",
                                                "cases": {"w": {}}})
        assert len(document["entries"]) == 1
        assert document["entries"][-1]["cases"] == {"w": {}}
        document = update_trajectory(document, {"git_sha": "b", "cases": {}})
        assert len(document["entries"]) == 2


class TestFuzzedReconciliation:
    """Property extension of the fixed Table-4 cases: attribution totals
    must reconcile exactly with ``PipelineStats`` across the fuzz
    generator's whole program distribution (folded chains, interlocks,
    indirect jumps, frames), not just curated workloads."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_site_totals_reconcile_on_fuzzed_programs(self, seed):
        from repro.asm.assembler import assemble
        from repro.verify.generator import PROFILES, generate_source
        from repro.verify.runner import ideal_config

        profile = PROFILES[seed % len(PROFILES)]
        program = assemble(generate_source(seed, profile))
        cpu, table = attribute_run(program, ideal_config(program))
        assert table.reconcile(cpu.stats) == [], (seed, profile)
        totals = table.totals()
        assert totals["executions"] == cpu.stats.execution.branches
        assert totals["penalty_cycles"] \
            == cpu.stats.misprediction_penalty_cycles
