"""The block-specializing trace tier (:mod:`repro.sim.blockspec`).

The tier is an *optimization*, so almost every test here is a parity
test: for any program and configuration, ``engine="blockspec"`` must
produce bit-identical results to the fast per-cycle kernel — the full
``PipelineStats`` dict (including per-opcode execution counts), every
memory byte, and the architectural registers. The rest pins down the
deopt machinery: dynamic-fold configs never trace, attached sinks force
the per-cycle path, the watchdog budget stays exact, hopeless heads
stop being probed, and on-disk trace payloads are reproducible across
processes.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.asm.assembler import assemble
from repro.core.policy import FoldPolicy
from repro.eval.table4 import CASE_DEFINITIONS, case_program_config
from repro.obs.events import EventBus
from repro.sim.blockspec import (
    HOT_THRESHOLD,
    MAX_VARIANTS,
    clear_compiled_traces,
)
from repro.sim.cpu import CpuConfig, CrispCpu, run_cycle_accurate
from repro.sim.progcache import default_cache, reset_default
from repro.sim.semantics import SimulationHungError
from repro.workloads import get_workload

HOT_LOOP = Path(__file__).parent / "corpus" / "branch_hot_loop.s"


@pytest.fixture(autouse=True)
def _fresh_caches(monkeypatch):
    """Isolate the compile cache and the in-process trace cache."""
    monkeypatch.delenv("CRISP_CACHE_DIR", raising=False)
    reset_default()
    clear_compiled_traces()
    yield
    reset_default()
    clear_compiled_traces()


def _finished(program, config):
    cpu = CrispCpu(program, config, obs=EventBus(enabled=False))
    cpu.warm_cache()
    cpu.run()
    return cpu


def _assert_parity(program, config):
    fast = _finished(program, config)
    blockspec = _finished(
        program, dataclasses.replace(config, engine="blockspec"))
    assert blockspec.stats.as_dict() == fast.stats.as_dict()
    assert blockspec.memory.snapshot() == fast.memory.snapshot()
    assert blockspec.state.accum == fast.state.accum
    assert blockspec.state.sp == fast.state.sp
    assert blockspec.state.flag == fast.state.flag
    return fast, blockspec


class TestEngineConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            CpuConfig(engine="turbo")

    def test_known_engines_accepted(self):
        assert CpuConfig(engine="fast").engine == "fast"
        assert CpuConfig(engine="blockspec").engine == "blockspec"


class TestParity:
    @pytest.mark.parametrize("case", CASE_DEFINITIONS,
                             ids=[c.name for c in CASE_DEFINITIONS])
    def test_table4_cases_bit_identical(self, case):
        program, config = case_program_config(case)
        _assert_parity(program, config)

    @pytest.mark.parametrize("workload",
                             ["sieve", "fib", "collatz", "strings"])
    def test_workloads_bit_identical(self, workload):
        program = get_workload(workload).compiled()
        _assert_parity(program, CpuConfig())

    def test_traces_actually_run_on_case_e(self):
        """The parity tests must not pass vacuously: on the loop-heavy
        case E the tier must enter compiled traces and the compile must
        be visible in the program-cache counters."""
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        cache = default_cache()
        _, blockspec = _assert_parity(program, config)
        engine = blockspec._blockspec
        assert engine is not None
        assert any(trace is not None for trace in engine.traces.values())
        assert cache.blocks_compiled >= 1
        assert cache.generated_bytes > 0

    def test_variant_cap_holds(self):
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        blockspec = _finished(
            program, dataclasses.replace(config, engine="blockspec"))
        variants = blockspec._blockspec.head_variants
        assert variants and all(count <= MAX_VARIANTS
                                for count in variants.values())


class TestDeopt:
    def test_dynamic_fold_configs_never_trace(self):
        """Dynamic-confidence folding is shadow-driven state the trace
        compiler refuses; the dispatch must fall back to the plain
        stepping loop (and stay bit-identical doing so)."""
        program = assemble(HOT_LOOP.read_text())
        config = CpuConfig(fold_policy=FoldPolicy.dynamic(confidence=2))
        fast = _finished(program, config)
        blockspec = _finished(
            program, dataclasses.replace(config, engine="blockspec"))
        assert blockspec.stats.as_dict() == fast.stats.as_dict()
        assert blockspec._blockspec is None  # plain loop: tier unused

    def test_attached_sinks_force_per_cycle_path(self):
        """Per-event attribution needs per-cycle probes, so attaching a
        sink must deopt — and the attributed table must equal fast's."""
        from repro.obs.attrib import attribute_run

        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "D"))
        cpu, table = attribute_run(program, config)
        bcpu, btable = attribute_run(
            program, dataclasses.replace(config, engine="blockspec"))
        assert btable.as_dict() == table.as_dict()
        assert bcpu.stats.as_dict() == cpu.stats.as_dict()

    def test_watchdog_budget_stays_exact(self):
        """A trace burst consumes cycles from the same budget as the
        stepping loop, so exhaustion fires at the identical point —
        same error, same final cycle count as the fast engine."""
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        limit = 2000  # case E needs ~9.8k cycles: both engines must trip
        observed = {}
        for engine in ("fast", "blockspec"):
            cpu = CrispCpu(program,
                           dataclasses.replace(config, engine=engine),
                           obs=EventBus(enabled=False))
            cpu.warm_cache()
            with pytest.raises(SimulationHungError):
                cpu.run(limit)
            observed[engine] = cpu.stats.cycles
        assert observed["blockspec"] == observed["fast"]

    def test_hopeless_heads_stop_probing(self):
        """A head rejected MAX_VARIANTS times is marked dead (heat -1)
        so the hot loop stops paying the lookup; heat for live heads
        saturates at the threshold instead of growing unboundedly."""
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        blockspec = _finished(
            program, dataclasses.replace(config, engine="blockspec"))
        heat = blockspec._blockspec.heat
        assert all(count == -1 or count <= HOT_THRESHOLD + 1
                   for count in heat.values())


class TestDifferentialAndInjection:
    def test_hot_loop_4way_under_fault_injection(self):
        """The committed hot-loop corpus program must survive the full
        4-way differential with every fold forced down the recovery
        path (recoveries are a deopt point, not a trace state)."""
        from repro.verify.runner import run_differential

        program = assemble(HOT_LOOP.read_text())
        mismatches, oracle = run_differential(
            program, engines=("fast", "blockspec"), inject="always-wrong")
        assert mismatches == []
        assert oracle is not None and oracle.halted

    def test_corpus_4way_clean(self):
        from repro.verify.runner import run_differential

        for path in sorted(HOT_LOOP.parent.glob("*.s")):
            program = assemble(path.read_text())
            mismatches, _oracle = run_differential(
                program, engines=("fast", "blockspec"))
            assert mismatches == [], path.name


_WORKER = """
import dataclasses, json, sys
from repro.eval.table4 import CASE_DEFINITIONS, case_program_config
from repro.obs.events import EventBus
from repro.sim.cpu import CrispCpu

case = next(c for c in CASE_DEFINITIONS if c.name == "E")
program, config = case_program_config(case)
cpu = CrispCpu(program, dataclasses.replace(config, engine="blockspec"),
               obs=EventBus(enabled=False))
cpu.warm_cache()
cpu.run()
print(json.dumps(cpu.stats.as_dict(), sort_keys=True))
"""


class TestCrossProcessDeterminism:
    def test_disk_payloads_and_runs_bit_identical(self, tmp_path):
        """Two fresh processes compiling the same trace must write
        byte-identical disk payloads (same content hash => same
        generated source) and report identical run stats — a
        nondeterministic emitter would poison the shared cache tier."""
        outputs, payloads = [], []
        for i in range(2):
            cache_dir = tmp_path / f"proc{i}"
            env = dict(os.environ, CRISP_CACHE_DIR=str(cache_dir))
            result = subprocess.run(
                [sys.executable, "-c", _WORKER], env=env,
                capture_output=True, text=True, check=True)
            outputs.append(json.loads(result.stdout))
            payloads.append({path.name: path.read_bytes()
                             for path in sorted(cache_dir.glob("*.pkl"))})
        assert outputs[0] == outputs[1]
        assert payloads[0].keys() == payloads[1].keys()
        assert payloads[0] == payloads[1]

    def test_second_process_loads_traces_from_disk(self, tmp_path):
        """Sharing one cache dir, the second process must serve the
        blockspec payload from the disk tier instead of recompiling."""
        probe = _WORKER + (
            "from repro.sim.progcache import default_cache\n"
            "stats = default_cache().stats()\n"
            "print(stats['disk_hits'], stats['blocks_compiled'])\n")
        env = dict(os.environ, CRISP_CACHE_DIR=str(tmp_path))
        first = subprocess.run([sys.executable, "-c", probe], env=env,
                               capture_output=True, text=True, check=True)
        second = subprocess.run([sys.executable, "-c", probe], env=env,
                                capture_output=True, text=True, check=True)
        assert first.stdout.splitlines()[0] == second.stdout.splitlines()[0]
        disk_hits, compiled = map(int, second.stdout.split()[-2:])
        assert disk_hits >= 1
        assert compiled == 0  # everything came from the disk tier


class TestCacheInvalidation:
    def test_icache_generation_tracks_fills_and_invalidation(self):
        program = get_workload("fib").compiled()
        cpu = CrispCpu(program, obs=EventBus(enabled=False))
        start = cpu.icache.generation
        cpu.run()
        assert cpu.icache.generation > start
        filled = cpu.icache.generation
        cpu.icache.invalidate()
        assert cpu.icache.generation == filled + 1

    def test_stale_generation_forces_revalidation(self):
        """After an icache invalidation the cached ``gen_ok`` stamp no
        longer matches, so the trace must re-prove residency (and fail,
        since the lines are gone) instead of running stale."""
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        cpu = _finished(
            program, dataclasses.replace(config, engine="blockspec"))
        engine = cpu._blockspec
        trace = next(t for t in engine.traces.values() if t is not None)
        assert trace.gen_ok == cpu.icache.generation
        cpu.icache.invalidate()
        assert trace.gen_ok != cpu.icache.generation
        assert engine._validate(trace) is False
