"""Tests for trace capture and the calibrated synthetic generators."""

import itertools

import pytest

from repro.asm import assemble
from repro.lang import compile_source
from repro.predict.harness import PredictionStudy
from repro.trace import (
    BranchEvent,
    CC_LIKE,
    DRC_LIKE,
    TROFF_LIKE,
    capture_trace,
    synthetic_workloads,
)
from repro.trace.synthetic import alternating, bias, loop, runs


class TestBehaviours:
    def rng(self):
        import random
        return random.Random(7)

    def take(self, behaviour, n):
        return list(itertools.islice(behaviour(self.rng()), n))

    def test_bias_extremes(self):
        assert all(self.take(bias(1.0), 50))
        assert not any(self.take(bias(0.0), 50))

    def test_loop_pattern(self):
        assert self.take(loop(3), 8) == [True, True, True, False,
                                         True, True, True, False]

    def test_runs_pattern(self):
        assert self.take(runs(2, 3), 10) == [True, True, False, False,
                                             False, True, True, False,
                                             False, False]

    def test_alternating_pattern(self):
        assert self.take(alternating(), 4) == [True, False, True, False]


class TestSyntheticWorkloads:
    def test_deterministic_per_seed(self):
        first = list(TROFF_LIKE.generate(500, seed=3))
        second = list(TROFF_LIKE.generate(500, seed=3))
        assert first == second

    def test_different_seeds_differ(self):
        a = [e.taken for e in TROFF_LIKE.generate(500, seed=1)]
        b = [e.taken for e in TROFF_LIKE.generate(500, seed=2)]
        assert a != b

    def test_event_count(self):
        assert sum(1 for _ in CC_LIKE.generate(1234)) == 1234

    def test_all_conditional_with_targets(self):
        for event in DRC_LIKE.generate(100):
            assert event.conditional
            assert event.target is not None

    @pytest.mark.parametrize("workload", [TROFF_LIKE, CC_LIKE, DRC_LIKE],
                             ids=lambda w: w.name)
    def test_calibration_matches_paper_row(self, workload):
        """Each synthetic trace must reproduce its Table-1 row within a
        few points — this is the substitution's acceptance test."""
        study = PredictionStudy()
        study.observe_all(workload.generate(60_000, seed=1987))
        for measured, paper in zip(study.row(), workload.paper_row):
            assert abs(measured - paper) < 0.05, (
                f"{workload.name}: measured {measured:.3f} vs "
                f"paper {paper:.3f}")

    def test_ordering_effects(self):
        """The qualitative Table-1 claims: dynamic beats static on the
        DRC-like trace; everything lands in the .70s on the compiler-like
        trace; troff-like sits in the low .90s for all schemes."""
        rows = {}
        for workload in (TROFF_LIKE, CC_LIKE, DRC_LIKE):
            study = PredictionStudy()
            study.observe_all(workload.generate(40_000))
            rows[workload.name] = study.row()
        static, one, two, three = rows["vlsi_drc"]
        assert one > static and two > static
        assert all(0.68 <= value <= 0.82 for value in rows["ccom"])
        assert all(value >= 0.90 for value in rows["troff"])

    def test_registry(self):
        names = set(synthetic_workloads())
        assert names == {"troff", "ccom", "vlsi_drc"}


class TestCaptureTrace:
    SOURCE = """
        .word i, 0
loop:   add i, $1
        cmp.s< i, $5
        iftjmpy loop
        jmp done
done:   halt
    """

    def test_capture_all_branches(self):
        events = capture_trace(assemble(self.SOURCE))
        conditional = [e for e in events if e.conditional]
        unconditional = [e for e in events if not e.conditional]
        assert len(conditional) == 5
        assert [e.taken for e in conditional] == [True] * 4 + [False]
        assert len(unconditional) == 1

    def test_conditional_only_filter(self):
        events = capture_trace(assemble(self.SOURCE), conditional_only=True)
        assert all(e.conditional for e in events)

    def test_targets_resolved(self):
        events = capture_trace(assemble(self.SOURCE))
        loop_events = [e for e in events if e.conditional]
        assert all(e.target == 0x1000 + 6 for e in loop_events) or \
            all(e.target is not None for e in loop_events)

    def test_capture_from_compiled_program(self):
        program = compile_source("""
            int main() {
                int n = 0;
                for (int i = 0; i < 10; i++) if (i % 3 == 0) n++;
                return n;
            }
        """)
        events = capture_trace(program, conditional_only=True)
        assert len(events) >= 20  # 10 loop tests + 10 if tests (+ entry)
