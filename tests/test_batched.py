"""The lock-step batch tier (:mod:`repro.sim.batched`).

The tier's contract is stronger than "fast": every instance of a batch
must finish **bit-identical** to an independent fast-kernel run of the
same (program, config, budget) — the full ``PipelineStats`` dict
(per-opcode counts included), every memory byte, and the architectural
registers — no matter how the batch is shaped (ragged sizes, shared
cohorts, numpy or pure-Python arrays) or how an instance leaves the
common path (retire, watchdog, dynamic-fold/injection/interrupt
peel-off). The rest pins the mask bookkeeping itself: cohort dedup,
peel reasons, array totals, and the quantum-sliced single-instance
loop behind ``CpuConfig(engine="batched")``.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.asm.assembler import assemble
from repro.core.policy import FoldPolicy
from repro.eval.table4 import CASE_DEFINITIONS, case_program_config
from repro.obs.events import EventBus
from repro.sim.batched import (
    BatchArrays,
    BatchItem,
    BatchedSimulator,
    HAVE_NUMPY,
    PEEL_FLUSH,
    PEEL_FOLD,
    PEEL_INTERRUPT,
    PEEL_RETIRE,
    PEEL_WATCHDOG,
    run_batch,
)
from repro.sim.cpu import CpuConfig, CrispCpu
from repro.sim.semantics import SimulationHungError
from repro.workloads import get_workload

HOT_LOOP = Path(__file__).parent / "corpus" / "branch_hot_loop.s"


def _fast(program, config, max_cycles=None, warm=False):
    cpu = CrispCpu(program, config, obs=EventBus(enabled=False))
    if warm:
        cpu.warm_cache()
    cpu.run(max_cycles)
    return cpu


def _assert_instance_matches(instance, fast_cpu):
    assert instance.error is None
    assert instance.stats.as_dict() == fast_cpu.stats.as_dict()
    assert instance.memory == fast_cpu.memory.snapshot()
    assert instance.accum == fast_cpu.state.accum
    assert instance.sp == fast_cpu.state.sp
    assert instance.flag == fast_cpu.state.flag


class TestEngineConfig:
    def test_batched_engine_accepted(self):
        assert CpuConfig(engine="batched").engine == "batched"

    def test_unknown_engine_still_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            CpuConfig(engine="vector")


class TestParity:
    @pytest.mark.parametrize("case", CASE_DEFINITIONS,
                             ids=[c.name for c in CASE_DEFINITIONS])
    def test_table4_cases_bit_identical(self, case):
        program, config = case_program_config(case)
        fast = _fast(program, config, warm=True)
        result = run_batch([BatchItem(program, config, warm=True)])
        _assert_instance_matches(result.instances[0], fast)

    @pytest.mark.parametrize("workload",
                             ["sieve", "fib", "collatz", "strings"])
    def test_workloads_bit_identical(self, workload):
        program = get_workload(workload).compiled()
        fast = _fast(program, CpuConfig())
        result = run_batch([BatchItem(program, CpuConfig())])
        _assert_instance_matches(result.instances[0], fast)

    def test_engine_batched_single_run_bit_identical(self):
        """``CpuConfig(engine="batched")`` on one machine dispatches the
        quantum-sliced loop, which must be invisible in the results."""
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        fast = _fast(program, config, warm=True)
        batched = _fast(program,
                        dataclasses.replace(config, engine="batched"),
                        warm=True)
        assert batched.stats.as_dict() == fast.stats.as_dict()
        assert batched.memory.snapshot() == fast.memory.snapshot()
        assert batched.state.accum == fast.state.accum


class TestRaggedBatches:
    """Mixed programs/configs at awkward sizes: every instance must
    still match its own independent fast-kernel run."""

    @pytest.mark.parametrize("size", [1, 7, 256])
    def test_ragged_sizes(self, size):
        cases = [case_program_config(case) for case in CASE_DEFINITIONS]
        items = [BatchItem(*cases[index % len(cases)], warm=True)
                 for index in range(size)]
        result = run_batch(items)
        assert len(result.instances) == size
        expected = [_fast(program, config, warm=True)
                    for program, config in cases]
        for index, instance in enumerate(result.instances):
            assert instance.index == index
            _assert_instance_matches(instance,
                                     expected[index % len(cases)])

    def test_cohort_dedup_shares_one_leader(self):
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        item = BatchItem(program, config, warm=True)
        result = run_batch([item] * 256)
        assert result.cohorts == 1
        leaders = [i for i in result.instances if i.shared_with is None]
        followers = [i for i in result.instances
                     if i.shared_with is not None]
        assert len(leaders) == 1 and len(followers) == 255
        assert all(f.shared_with == leaders[0].index for f in followers)
        # followers share the read-only memory snapshot but own their
        # stats objects (value-equal, not identity-shared)
        assert all(f.memory is leaders[0].memory for f in followers)
        assert all(f.stats is not leaders[0].stats for f in followers)
        assert result.shared_cycles == 255 * leaders[0].stats.cycles

    def test_distinct_configs_do_not_share(self):
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        other = dataclasses.replace(config, icache_entries=16)
        result = run_batch([BatchItem(program, config, warm=True),
                            BatchItem(program, other, warm=True)])
        assert result.cohorts == 2
        assert (result.instances[0].stats.as_dict()
                != result.instances[1].stats.as_dict())


class TestPeelOff:
    def test_dynamic_fold_peels_at_build_time(self):
        program = assemble(HOT_LOOP.read_text())
        config = CpuConfig(fold_policy=FoldPolicy.dynamic(confidence=2))
        fast = _fast(program, config, warm=True)
        result = run_batch([BatchItem(program, config, warm=True)] * 2)
        assert result.peeled == {PEEL_FOLD: 2}
        assert result.cohorts == 0  # never entered the common path
        for instance in result.instances:
            assert instance.peel == PEEL_FOLD
            _assert_instance_matches(instance, fast)

    def test_injection_peels_as_flush(self):
        program = assemble(HOT_LOOP.read_text())
        config = CpuConfig(inject="always-wrong")
        fast = _fast(program, config, warm=True)
        result = run_batch([BatchItem(program, config, warm=True)])
        assert result.peeled == {PEEL_FLUSH: 1}
        _assert_instance_matches(result.instances[0], fast)
        assert result.instances[0].stats.mispredictions > 0

    def test_interrupt_schedule_peels_and_matches_manual_loop(self):
        # the canonical handler program from the interrupt suite
        program_text = """
        .entry main
        .word count, 0
        .word ticks, 0
        .word saved_acc, 0

handler:
        mov saved_acc, Accum
        add ticks, $1
        mov Accum, saved_acc
        reti

main:
loop:   add count, $1
        cmp.s< count, $50
        iftjmpy loop
        halt
"""
        program = assemble(program_text)
        vector = program.symbols["handler"]
        # manual stepping loop: a driver delivering at cycles 40 and 90
        manual = CrispCpu(program, obs=EventBus(enabled=False))
        schedule = [(40, vector), (90, vector)]
        cursor = 0
        while not manual.halted:
            while (cursor < len(schedule)
                   and manual.stats.cycles >= schedule[cursor][0]):
                manual.interrupt(schedule[cursor][1])
                cursor += 1
            manual.step()
        manual.eu.flush_execution()
        result = run_batch([BatchItem(program, CpuConfig(),
                                      interrupts=((40, vector),
                                                  (90, vector)))])
        instance = result.instances[0]
        assert result.peeled == {PEEL_INTERRUPT: 1}
        assert instance.peel == PEEL_INTERRUPT
        assert instance.interrupts_taken == 2 == manual.interrupts_taken
        _assert_instance_matches(instance, manual)

    def test_watchdog_peels_with_exact_budget(self):
        """Budget exhaustion must fire at the identical point as the
        fast kernel — same diagnostic error, same final counters (the
        fast loop trips even when halt lands on the last budgeted
        cycle, and the watchdog's ring-buffer sampling steps are part
        of the observable stats)."""
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        limit = 2000  # case E needs ~9.8k cycles
        fast = CrispCpu(program, config, obs=EventBus(enabled=False))
        fast.warm_cache()
        with pytest.raises(SimulationHungError) as excinfo:
            fast.run(limit)
        result = run_batch(
            [BatchItem(program, config, max_cycles=limit, warm=True)] * 3)
        assert result.peeled == {PEEL_WATCHDOG: 3}
        for instance in result.instances:
            assert isinstance(instance.error, SimulationHungError)
            assert instance.error.max_cycles == limit
            assert str(instance.error) == str(excinfo.value)
            assert instance.stats.as_dict() == fast.stats.as_dict()
            assert not instance.ok

    def test_engine_batched_watchdog_budget_stays_exact(self):
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        observed = {}
        for engine in ("fast", "batched"):
            cpu = CrispCpu(program,
                           dataclasses.replace(config, engine=engine),
                           obs=EventBus(enabled=False))
            cpu.warm_cache()
            with pytest.raises(SimulationHungError):
                cpu.run(2000)
            observed[engine] = cpu.stats.cycles
        assert observed["batched"] == observed["fast"]

    def test_retirement_is_progressive(self):
        """A short program retires while a long cohort keeps stepping:
        the short one's mask row must drop without disturbing the
        long one's trajectory."""
        short = get_workload("fib").compiled()
        long_program, long_config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        result = run_batch([BatchItem(short, CpuConfig()),
                            BatchItem(long_program, long_config,
                                      warm=True)])
        assert result.peeled == {PEEL_RETIRE: 2}
        _assert_instance_matches(result.instances[0],
                                 _fast(short, CpuConfig()))
        _assert_instance_matches(
            result.instances[1], _fast(long_program, long_config,
                                       warm=True))

    def test_dynamic_fold_engine_batched_falls_back_cleanly(self):
        """``engine="batched"`` + dynamic fold runs the plain stepping
        loop (the lock-step dispatch refuses shadow state), exactly
        like the blockspec tier's fallback — and stays bit-identical."""
        program = assemble(HOT_LOOP.read_text())
        config = CpuConfig(fold_policy=FoldPolicy.dynamic(confidence=2))
        fast = _fast(program, config, warm=True)
        batched = _fast(program,
                        dataclasses.replace(config, engine="batched"),
                        warm=True)
        assert batched.stats.as_dict() == fast.stats.as_dict()


class TestBackends:
    def test_python_fallback_is_bit_identical(self):
        """The pure-Python column store must be indistinguishable from
        the numpy backend in every result and every aggregate."""
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "D"))
        items = [BatchItem(program, config, warm=True)] * 5
        python = run_batch(items, numpy=False)
        assert python.arrays.backend == "python"
        fast = _fast(program, config, warm=True)
        for instance in python.instances:
            _assert_instance_matches(instance, fast)
        if HAVE_NUMPY:
            numpy = run_batch(items, numpy=True)
            assert numpy.arrays.backend == "numpy"
            assert numpy.totals() == python.totals()
            for a, b in zip(numpy.instances, python.instances):
                assert a.stats.as_dict() == b.stats.as_dict()

    def test_totals_are_columnwise_sums(self):
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "A"))
        result = run_batch([BatchItem(program, config, warm=True)] * 4)
        totals = result.totals()
        per_instance = [i.stats for i in result.instances]
        assert totals["cycles"] == sum(s.cycles for s in per_instance)
        assert totals["issued_instructions"] == sum(
            s.issued_instructions for s in per_instance)
        assert result.aggregate_cycles == totals["cycles"]

    def test_arrays_mask_bookkeeping(self):
        arrays = BatchArrays(4, numpy=False)
        assert arrays.active_count() == 0
        arrays.activate([0, 2])
        assert arrays.active_count() == 2
        arrays.broadcast("cycles", [0, 2], 7)
        assert arrays.column("cycles") == [7, 0, 7, 0]
        arrays.deactivate([0])
        assert arrays.active_count() == 1
        arrays.scatter_row(1, {"cycles": 3, "accum": -2})
        assert arrays.value("cycles", 1) == 3
        assert arrays.totals()["cycles"] == 17

    def test_numpy_request_without_numpy_raises(self, monkeypatch):
        import repro.sim.batched as batched_module
        monkeypatch.setattr(batched_module, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError, match="numpy backend"):
            BatchArrays(2, numpy=True)

    def test_quantum_choice_is_invisible(self):
        """Superstep size is a scheduling knob, never a semantic one."""
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "E"))
        item = BatchItem(program, config, warm=True)
        small = run_batch([item] * 2, quantum=129)
        large = run_batch([item] * 2, quantum=1 << 20)
        assert small.supersteps > large.supersteps
        for a, b in zip(small.instances, large.instances):
            assert a.stats.as_dict() == b.stats.as_dict()
            assert a.memory == b.memory


class TestBuildTimeClassification:
    def test_build_time_peel_reasons(self):
        program, config = case_program_config(
            next(c for c in CASE_DEFINITIONS if c.name == "A"))
        sim = BatchedSimulator([
            BatchItem(program, config),
            BatchItem(program, CpuConfig(
                fold_policy=FoldPolicy.dynamic(confidence=1))),
            BatchItem(program, CpuConfig(inject="always-wrong")),
            BatchItem(program, config, interrupts=((10, 0),)),
        ])
        assert len(sim.cohorts) == 1
        assert [(index, reason) for index, reason in sim._individual] \
            == [(1, PEEL_FOLD), (2, PEEL_FLUSH), (3, PEEL_INTERRUPT)]
