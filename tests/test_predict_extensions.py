"""Finite-table and two-level (gshare) predictor tests."""

import pytest

from repro.predict import (
    CounterPredictor,
    FiniteCounterPredictor,
    GsharePredictor,
    OptimalStaticPredictor,
    PredictionStudy,
)
from repro.trace import TROFF_LIKE
from repro.trace.events import BranchEvent


def feed(predictor, outcomes, pc=0x1000):
    for taken in outcomes:
        predictor.observe(pc, taken)
    return predictor


class TestFiniteCounterPredictor:
    def test_behaves_like_infinite_without_aliasing(self):
        pattern = ([True] * 9 + [False]) * 20
        finite = feed(FiniteCounterPredictor(2, 64), pattern)
        infinite = feed(CounterPredictor(2), pattern)
        assert finite.accuracy == infinite.accuracy

    def test_aliasing_degrades_accuracy(self):
        # two branches with opposite behaviour mapped to the same entry
        tiny = FiniteCounterPredictor(2, entries=1)
        roomy = FiniteCounterPredictor(2, entries=64)
        for _ in range(200):
            for predictor in (tiny, roomy):
                predictor.observe(0x1000, True)
                predictor.observe(0x1004, False)  # distinct low PC bits
        assert roomy.accuracy > 0.9
        assert tiny.accuracy < roomy.accuracy

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            FiniteCounterPredictor(2, entries=100)
        with pytest.raises(ValueError):
            FiniteCounterPredictor(0, entries=64)

    def test_reset(self):
        predictor = feed(FiniteCounterPredictor(2, 16), [True] * 10)
        predictor.reset()
        assert predictor.total == 0
        assert predictor.predict(0x1000) is False


class TestGshare:
    def test_learns_alternating_branch(self):
        # THE case static wins in the paper: gshare solves it outright
        gshare = GsharePredictor(history_bits=4, entries=64)
        outcomes = [bool(i % 2) for i in range(400)]
        feed(gshare, outcomes)
        # after warmup, every prediction is right
        late = GsharePredictor(history_bits=4, entries=64)
        for taken in outcomes[:100]:
            late.observe(0x1000, taken)
        late.correct = late.total = 0
        for taken in outcomes[100:]:
            late.observe(0x1000, taken)
        assert late.accuracy == 1.0

    def test_learns_period_three_pattern(self):
        gshare = GsharePredictor(history_bits=6, entries=256)
        outcomes = ([True, True, False] * 150)
        for taken in outcomes[:150]:
            gshare.observe(0x1000, taken)
        gshare.correct = gshare.total = 0
        for taken in outcomes[150:]:
            gshare.observe(0x1000, taken)
        assert gshare.accuracy > 0.95

    def test_beats_counters_on_correlated_benchmark_mix(self):
        # alternating + biased mix: gshare >= 2-bit counters
        study = PredictionStudy([
            OptimalStaticPredictor(),
            CounterPredictor(2),
            GsharePredictor(history_bits=8, entries=4096),
        ])
        outcome = True
        for i in range(4000):
            study.observe(BranchEvent(0x1000, bool(i % 2)))
            study.observe(BranchEvent(0x2000, i % 10 != 9))
        accuracies = study.accuracies()
        assert accuracies["gshare-h8-4096"] > accuracies["2-bit-dynamic"]
        assert accuracies["gshare-h8-4096"] > accuracies["static-optimal"]

    def test_reasonable_on_large_synthetic_trace(self):
        study = PredictionStudy([
            CounterPredictor(2),
            GsharePredictor(history_bits=10, entries=4096),
        ])
        study.observe_all(TROFF_LIKE.generate(40_000))
        accuracies = study.accuracies()
        assert accuracies["gshare-h10-4096"] > 0.9

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            GsharePredictor(entries=100)
