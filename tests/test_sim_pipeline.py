"""Tests for the cycle-accurate pipeline: folding, penalties, recovery."""

import pytest

from repro.asm import assemble
from repro.core import FoldPolicy
from repro.sim import CpuConfig, CrispCpu
from repro.sim.cpu import run_cycle_accurate
from repro.sim.functional import run_program

# note: $7 keeps the compare at three parcels (short immediate), so it
# folds with the branch under the CRISP policy
COUNT_LOOP = """
    .word i, 0
loop:   add i, $1
        cmp.s< i, $7
        iftjmpy loop
        halt
"""


def run(source, config=None):
    return run_cycle_accurate(assemble(source), config)


class TestBasicExecution:
    def test_straight_line(self):
        cpu = run("""
            .word r, 0
            mov r, $3
            add r, $4
            halt
        """)
        assert cpu.read_symbol("r") == 7
        assert cpu.halted

    def test_loop_result_matches_functional(self):
        cpu = run(COUNT_LOOP)
        sim = run_program(assemble(COUNT_LOOP))
        assert cpu.read_symbol("i") == sim.read_symbol("i") == 7

    def test_executed_count_matches_functional(self):
        cpu = run(COUNT_LOOP)
        sim = run_program(assemble(COUNT_LOOP))
        assert (cpu.stats.executed_instructions
                == sim.stats.instructions)

    def test_call_return(self):
        cpu = run("""
            .entry main
            .word r, 0
f:          mov r, $5
            return
main:       call f
            add r, $2
            halt
        """)
        assert cpu.read_symbol("r") == 7


class TestFolding:
    def test_folded_branches_counted(self):
        cpu = run(COUNT_LOOP)
        # cmp.s< folds with iftjmpy: every loop branch is folded
        assert cpu.stats.folded_branches == 7
        assert (cpu.stats.issued_instructions
                == cpu.stats.executed_instructions - 7)

    def test_no_folding_when_disabled(self):
        config = CpuConfig(fold_policy=FoldPolicy.none())
        cpu = run(COUNT_LOOP, config)
        assert cpu.stats.folded_branches == 0
        assert (cpu.stats.issued_instructions
                == cpu.stats.executed_instructions)

    def test_folding_reduces_cycles(self):
        folded = run(COUNT_LOOP).stats.cycles
        unfolded = run(COUNT_LOOP,
                       CpuConfig(fold_policy=FoldPolicy.none())).stats.cycles
        assert folded < unfolded

    def test_unconditional_branch_folds_to_zero_time(self):
        # loop with a folded jmp: issued slots per iteration must not
        # include the jmp
        source = """
            .word i, 0
loop:       add i, $1
            cmp.s< i, $100
            iffjmpn done
            add i, $0
            jmp loop
done:       halt
        """
        cpu = run(source)
        sim = run_program(assemble(source))
        jmp_count = sim.stats.opcode_counts["jmp"]
        assert jmp_count == 99
        assert cpu.stats.folded_branches >= jmp_count


class TestMispredictionPenalties:
    """The paper's 3/2/1/0-cycle recovery costs by compare-branch distance."""

    def _penalty(self, source, config=None):
        # warm the cache so entries flow back-to-back: the per-distance
        # penalties are steady-state properties, not cold-start ones
        cpu = CrispCpu(assemble(source), config)
        cpu.warm_cache()
        cpu.run()
        return cpu.stats

    def test_folded_compare_and_branch_costs_three(self):
        # d=0: cmp folds with the branch; predicted taken but not taken
        stats = self._penalty("""
            cmp.= $1, $2
            iftjmpy elsewhere
            halt
elsewhere:  halt
        """)
        assert stats.mispredictions == 1
        assert stats.misprediction_penalty_cycles == 3

    def test_compare_one_ahead_of_folded_branch_costs_two(self):
        # d=1: cmp, then a filler folded with the branch
        stats = self._penalty("""
            .word x, 0
            cmp.= $1, $2
            add x, $1
            iftjmpy elsewhere
            halt
elsewhere:  halt
        """)
        assert stats.mispredictions == 1
        assert stats.misprediction_penalty_cycles == 2

    def test_compare_two_ahead_of_folded_branch_costs_one(self):
        stats = self._penalty("""
            .word x, 0
            cmp.= $1, $2
            add x, $1
            add x, $1
            iftjmpy elsewhere
            halt
elsewhere:  halt
        """)
        assert stats.mispredictions == 1
        assert stats.misprediction_penalty_cycles == 1

    def test_compare_three_ahead_costs_nothing(self):
        # the Branch Spreading case: flag is architectural at fetch; the
        # wrong static bit is overridden for free
        stats = self._penalty("""
            .word x, 0
            cmp.= $1, $2
            add x, $1
            add x, $1
            add x, $1
            iftjmpy elsewhere
            halt
elsewhere:  halt
        """)
        assert stats.mispredictions == 0
        assert stats.misprediction_penalty_cycles == 0
        assert stats.zero_cost_overrides == 1

    def test_unfolded_adjacent_compare_costs_three(self):
        # without folding there is no early recovery: the branch resolves
        # at its own RR stage
        stats = self._penalty("""
            cmp.= $1, $2
            iftjmpy elsewhere
            halt
elsewhere:  halt
        """, CpuConfig(fold_policy=FoldPolicy.none()))
        assert stats.mispredictions == 1
        assert stats.misprediction_penalty_cycles == 3

    def test_correct_prediction_costs_nothing(self):
        stats = self._penalty("""
            cmp.= $1, $1
            iftjmpy elsewhere
            halt
elsewhere:  halt
        """)
        assert stats.mispredictions == 0

    def test_wrong_path_side_effects_are_squashed(self):
        # the wrong path writes to r; the write must never land
        cpu = run("""
            .word r, 0
            cmp.= $1, $2
            iftjmpy wrong
            mov r, $1
            halt
wrong:      mov r, $99
            mov r, $98
            mov r, $97
            halt
        """)
        assert cpu.read_symbol("r") == 1


class TestDifferentialAgainstFunctional:
    PROGRAMS = {
        "alternating": """
            .word i, 0
            .word odd, 0
            .word even, 0
loop:       and3 i, $1
            cmp.= Accum, $0
            iftjmpy is_even
            add odd, $1
            jmp next
is_even:    add even, $1
next:       add i, $1
            cmp.s< i, $50
            iftjmpy loop
            halt
        """,
        "nested_calls": """
            .entry main
            .word r, 0
g:          add r, $3
            return
f:          call g
            add r, $1
            return
main:       call f
            call f
            halt
        """,
        "indirect": """
            .entry main
            .word vec, 0
            .word r, 0
main:       mov vec, $t2
            jmp (*0x8000)
t1:         add r, $100
            halt
t2:         add r, $7
            halt
        """,
    }

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_same_results(self, name):
        source = self.PROGRAMS[name]
        program = assemble(source)
        functional = run_program(program)
        cpu = run_cycle_accurate(assemble(source))
        assert cpu.stats.executed_instructions == functional.stats.instructions
        for symbol in program.symbols:
            if program.symbols[symbol] >= 0x8000:
                assert cpu.read_symbol(symbol) == functional.read_symbol(symbol)


class TestCacheBehaviour:
    def test_steady_state_loop_hits_cache(self):
        cpu = run("""
            .word i, 0
loop:       add i, $1
            cmp.s< i, $1000
            iftjmpy loop
            halt
        """)
        assert cpu.stats.icache_hit_rate > 0.98

    def test_tiny_cache_thrashes(self):
        big_body = "\n".join("add *0x8100, $1" for _ in range(40))
        source = f"""
            .word i, 0
            .word x, 0
loop:       {big_body}
            add i, $1
            cmp.s< i, $20
            iftjmpy loop
            halt
        """
        big = run(source, CpuConfig(icache_entries=256)).stats
        small = run(source, CpuConfig(icache_entries=8)).stats
        assert small.cycles > big.cycles
        assert small.icache_hit_rate < big.icache_hit_rate

    def test_memory_latency_slows_cold_start(self):
        fast = run(COUNT_LOOP, CpuConfig(mem_latency=1)).stats.cycles
        slow = run(COUNT_LOOP, CpuConfig(mem_latency=8)).stats.cycles
        assert slow > fast


class TestSteadyStateThroughput:
    def test_spread_loop_issues_one_per_cycle(self):
        # fully spread + folded loop: near 1.0 issued CPI, and apparent
        # CPI well below 1 (the paper's headline: >1 instruction/cycle)
        source = """
            .word i, 0
            .word a, 0
            .word b, 0
loop:       cmp.s< i, $2000
            add a, $1
            add b, $1
            add i, $1
            iftjmpy loop
            halt
        """
        stats = run(source).stats
        assert stats.issued_cpi < 1.1
        assert stats.apparent_cpi < 0.95
        assert stats.apparent_ipc > 1.05
