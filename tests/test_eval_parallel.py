"""The parallel sweep runner must be invisible in the output.

Every test here compares a parallel run against the serial run of the
same work and asserts equality down to the byte (for JSON documents) or
the counter (for stats objects). Speed is *not* asserted here — the CI
container may have a single core — only determinism; throughput has its
own bench (``benchmarks/bench_sim_throughput.py``).
"""

import json

import pytest

from repro.eval.parallel import (
    SweepTask,
    effective_jobs,
    map_ordered,
    run_sweep_task,
)
from repro.eval.sweeps import fold_policy_sweep, run_grid
from repro.eval.table4 import run_table4
from repro.sim.cpu import CpuConfig
from repro.workloads import resolve_source
from repro.workloads.generators import biased_branches, synthetic_suite


class TestEffectiveJobs:
    def test_none_is_serial(self):
        assert effective_jobs(None) == 1

    def test_zero_is_cpu_count(self):
        assert effective_jobs(0) >= 1

    def test_explicit_value(self):
        assert effective_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            effective_jobs(-1)


class TestMapOrdered:
    def test_serial_preserves_order(self):
        assert map_ordered(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        assert map_ordered(_square, list(range(8)), jobs=2) \
            == [k * k for k in range(8)]

    def test_empty_tasks(self):
        assert map_ordered(_square, [], jobs=4) == []


def _square(value):
    return value * value


class TestSweepParity:
    def test_grid_parallel_equals_serial(self):
        serial = run_grid(["alternating", "fib"],
                          {"base": CpuConfig(),
                           "small": CpuConfig(icache_entries=16)})
        parallel = run_grid(["alternating", "fib"],
                            {"base": CpuConfig(),
                             "small": CpuConfig(icache_entries=16)},
                            jobs=2)
        assert [(p.workload, p.label, p.stats.as_dict())
                for p in serial.points] \
            == [(p.workload, p.label, p.stats.as_dict())
                for p in parallel.points]

    def test_fold_policy_sweep_parallel(self):
        serial = fold_policy_sweep(["sieve"])
        parallel = fold_policy_sweep(["sieve"], jobs=2)
        assert serial.cycles_table() == parallel.cycles_table()

    def test_table4_parallel_equals_serial(self):
        serial = run_table4()
        parallel = run_table4(jobs=2)
        assert [(r.case.name, r.relative_performance, r.stats.as_dict())
                for r in serial] \
            == [(r.case.name, r.relative_performance, r.stats.as_dict())
                for r in parallel]

    def test_table4_json_document_byte_identical(self):
        from repro.eval.jsonout import table4_json
        serial = json.dumps(table4_json(), sort_keys=True)
        parallel = json.dumps(table4_json(jobs=2), sort_keys=True)
        assert serial == parallel

    def test_baseline_manifest_byte_identical(self):
        from repro.obs.manifest import table4_baseline
        serial, parallel = table4_baseline(), table4_baseline(jobs=2)
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)


class TestSeededGeneration:
    def test_same_seed_same_source(self):
        assert biased_branches(5, seed=3) == biased_branches(5, seed=3)
        assert synthetic_suite(7)["gen_branchy8"].source \
            == synthetic_suite(7)["gen_branchy8"].source

    def test_different_seed_different_source(self):
        assert synthetic_suite(0)["gen_branchy8"].source \
            != synthetic_suite(1)["gen_branchy8"].source

    def test_seed_zero_matches_legacy_output(self):
        """seed=0 keeps the historical constant stream (k % modulus)."""
        from repro.workloads.generators import branchy_loop
        assert "acc += 0;" in branchy_loop(3)
        assert "acc += 1;" in branchy_loop(3)
        assert "acc += 2;" in branchy_loop(3)

    def test_resolve_source_gen_names(self):
        assert resolve_source("gen_alternating", 4) \
            == synthetic_suite(4)["gen_alternating"].source
        with pytest.raises(KeyError):
            resolve_source("gen_nonexistent", 0)

    def test_seeded_sweep_parallel_equals_serial(self):
        """The seed rides inside each task: workers regenerate the same
        programs the serial path compiles."""
        workloads = ["gen_alternating", "gen_biased5"]
        configs = {"base": CpuConfig()}
        serial = run_grid(workloads, configs, seed=11)
        parallel = run_grid(workloads, configs, seed=11, jobs=2)
        assert serial.cycles_table() == parallel.cycles_table()

    def test_seed_changes_simulation(self):
        base = run_grid(["gen_branchy8"], {"b": CpuConfig()}, seed=0)
        other = run_grid(["gen_branchy8"], {"b": CpuConfig()}, seed=5)
        # different constants, same control structure: executed counts
        # match, but the programs are genuinely different sources
        assert resolve_source("gen_branchy8", 0) \
            != resolve_source("gen_branchy8", 5)
        assert base.points[0].stats.cycles > 0
        assert other.points[0].stats.cycles > 0


class TestSweepTaskWorker:
    def test_worker_matches_grid_point(self):
        task = SweepTask("alternating", "base", CpuConfig())
        point = run_sweep_task(task)
        grid = run_grid(["alternating"], {"base": CpuConfig()})
        assert point.stats.as_dict() == grid.points[0].stats.as_dict()

    def test_task_is_picklable(self):
        import pickle
        task = SweepTask("gen_biased5", "x", CpuConfig(), seed=9)
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
