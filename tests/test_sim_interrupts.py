"""Precise-interrupt tests for the cycle-accurate machine.

The paper: "The PC of each instruction is carried with each pipeline
stage to identify the instruction in the case of an interrupt or other
exception", and the side-effect-free ISA makes squashing in-flight work
safe. These tests deliver interrupts at every point of a running loop
and require exact architectural results afterwards.
"""

import pytest

from repro.asm import assemble
from repro.sim import CrispCpu
from repro.sim.functional import run_program

PROGRAM_WITH_HANDLER = """
        .entry main
        .word count, 0
        .word ticks, 0
        .word saved_acc, 0

handler:
        mov saved_acc, Accum
        add ticks, $1
        mov Accum, saved_acc
        reti

main:
loop:   add count, $1
        cmp.s< count, $50
        iftjmpy loop
        halt
"""

HANDLER_VECTOR_LABEL = "handler"


def run_with_interrupts(source, interrupt_cycles, max_cycles=100_000):
    program = assemble(source)
    cpu = CrispCpu(program)
    vector = program.symbols[HANDLER_VECTOR_LABEL]
    cycle = 0
    pending = sorted(interrupt_cycles, reverse=True)
    while not cpu.halted and cycle < max_cycles:
        if pending and cycle == pending[-1]:
            cpu.interrupt(vector)
            pending.pop()
        cpu.step()
        cycle += 1
    assert cpu.halted, "machine did not halt"
    return cpu


class TestInterrupts:
    def test_uninterrupted_baseline(self):
        cpu = run_with_interrupts(PROGRAM_WITH_HANDLER, [])
        assert cpu.read_symbol("count") == 50
        assert cpu.read_symbol("ticks") == 0

    def test_single_interrupt_resumes_precisely(self):
        cpu = run_with_interrupts(PROGRAM_WITH_HANDLER, [40])
        assert cpu.read_symbol("count") == 50
        assert cpu.read_symbol("ticks") == 1
        assert cpu.interrupts_taken == 1

    @pytest.mark.parametrize("cycle", list(range(5, 60, 7)))
    def test_interrupt_at_any_point_preserves_results(self, cycle):
        # deliver at many different pipeline states: mid-speculation,
        # during cache misses, around branch resolution
        cpu = run_with_interrupts(PROGRAM_WITH_HANDLER, [cycle])
        assert cpu.read_symbol("count") == 50
        assert cpu.read_symbol("ticks") == 1

    def test_many_interrupts(self):
        cycles = list(range(10, 200, 13))
        cpu = run_with_interrupts(PROGRAM_WITH_HANDLER, cycles)
        assert cpu.read_symbol("count") == 50
        assert cpu.read_symbol("ticks") == cpu.interrupts_taken > 3

    def test_flag_preserved_across_handler(self):
        # the handler's own compare must not disturb the interrupted
        # program's flag: reti restores the saved PSW
        source = """
        .entry main
        .word ticks, 0
        .word result, 0

handler:
        cmp.= $1, $1
        add ticks, $1
        reti

main:   cmp.= $1, $2
        nop
        nop
        nop
        nop
        nop
        iftjmpy wrong
        mov result, $7
        halt
wrong:  mov result, $99
        halt
"""
        program = assemble(source)
        cpu = CrispCpu(program)
        vector = program.symbols["handler"]
        # interrupt between the cmp (flag=false) and the branch fetch
        steps = 0
        while not cpu.halted and steps < 1000:
            if steps == 9:
                cpu.interrupt(vector)
            cpu.step()
            steps += 1
        assert cpu.halted
        assert cpu.read_symbol("result") == 7
        assert cpu.read_symbol("ticks") == 1

    def test_reti_semantics_on_functional_simulator(self):
        # reti is an architectural instruction; the functional simulator
        # executes a hand-built frame the same way
        source = """
        .entry main
        .word r, 0
main:   enter 8
        mov 4(sp), $after     ; resume PC
        mov 0(sp), $1         ; saved flag = true
        reti
        halt
after:  iftjmpy good          ; flag restored to true by reti
        halt
good:   mov r, $42
        halt
"""
        simulator = run_program(assemble(source))
        assert simulator.read_symbol("r") == 42

    def test_interrupt_counts_squashes(self):
        cpu = run_with_interrupts(PROGRAM_WITH_HANDLER, [30])
        assert cpu.stats.squashed_slots >= 1
