"""Tests for the pipeline tracer and the stack-cache locality model."""

import pytest

from repro.asm import assemble
from repro.lang import compile_source
from repro.sim import CrispCpu
from repro.sim.functional import FunctionalSimulator
from repro.sim.stackcache import StackCacheModel, attach
from repro.sim.tracer import PipelineTrace

LOOP = """
    .word i, 0
loop:   add i, $1
        cmp.s< i, $6
        iftjmpy loop
        halt
"""


class TestPipelineTrace:
    def test_records_every_cycle(self):
        trace = PipelineTrace(CrispCpu(assemble(LOOP)))
        trace.run()
        assert len(trace.records) == trace.cpu.stats.cycles
        assert trace.records[-1].halted

    def test_folded_entries_visible(self):
        trace = PipelineTrace(CrispCpu(assemble(LOOP)))
        trace.run()
        assert any("+iftjmpy" in record.rr for record in trace.records)

    def test_bubble_accounting_matches_stats(self):
        trace = PipelineTrace(CrispCpu(assemble(LOOP)))
        trace.run()
        assert trace.bubbles() == trace.cpu.stats.stall_cycles

    def test_cold_start_misses_visible(self):
        trace = PipelineTrace(CrispCpu(assemble(LOOP)))
        trace.run()
        assert trace.records[0].icache_miss  # nothing decoded yet

    def test_format_window(self):
        trace = PipelineTrace(CrispCpu(assemble(LOOP)))
        trace.run()
        text = trace.format_window(0, 10)
        assert "IR" in text and "RR" in text
        assert len(text.splitlines()) == 11

    def test_speculative_marker(self):
        # a folded conditional with its compare one ahead shows as
        # speculative (?) somewhere in flight
        source = """
            .word x, 0
            cmp.= $1, $2
            add x, $1
            iftjmpy off
            halt
off:        halt
        """
        cpu = CrispCpu(assemble(source))
        cpu.warm_cache()
        trace = PipelineTrace(cpu)
        trace.run()
        assert any(record.ir.startswith("?") or record.or_.startswith("?")
                   for record in trace.records)


class TestStackCacheModel:
    def test_classification(self):
        model = StackCacheModel(words=32)
        sp = 0x1000
        model.observe(0x1000, sp)  # top of stack
        model.observe(0x1000 + 4 * 31, sp)  # last cached word
        model.observe(0x1000 + 4 * 32, sp)  # just beyond
        model.observe(0x8000 + 0, 0x100000)  # global below sp
        assert model.hits == 2
        assert model.stack_misses == 1
        assert model.global_accesses == 1
        assert model.hit_rate == 0.5

    def test_locals_hit_the_stack_cache(self):
        program = compile_source("""
            int main() {
                int a, b, s;
                s = 0;
                for (a = 0; a < 50; a++) { b = a * 2; s += b; }
                return s;
            }
        """)
        simulator = FunctionalSimulator(program)
        model = attach(simulator.state)
        simulator.run()
        # everything is a local: near-perfect stack-cache locality
        assert model.hit_rate > 0.95

    def test_globals_miss_the_stack_cache(self):
        program = compile_source("""
            int g;
            int main() {
                for (g = 0; g < 50; g++) ;
                return g;
            }
        """)
        simulator = FunctionalSimulator(program)
        model = attach(simulator.state)
        simulator.run()
        assert model.global_accesses > 50
        assert model.hit_rate < 0.5

    def test_summary_text(self):
        model = StackCacheModel()
        model.observe(0, 0)
        assert "stack-cache" in model.summary()
