"""Per-branch trace analytics and behaviour classification."""

import pytest

from repro.lang import compile_source
from repro.trace import capture_trace
from repro.trace.analyze import BranchSiteStats, profile_trace
from repro.trace.events import BranchEvent
from repro.trace.synthetic import TROFF_LIKE
from repro.workloads import FIGURE3


def events_for(pc, outcomes):
    return [BranchEvent(pc, taken) for taken in outcomes]


class TestSiteStats:
    def build(self, outcomes):
        site = BranchSiteStats(0x1000)
        for taken in outcomes:
            site.observe(taken)
        return site

    def test_bias(self):
        site = self.build([True] * 9 + [False])
        assert site.taken_fraction == 0.9
        assert site.bias == 0.9

    def test_switch_rate_alternating(self):
        site = self.build([True, False] * 10)
        assert site.switch_rate == 1.0
        assert site.classification == "alternating"

    def test_biased_classification(self):
        assert self.build([True] * 50).classification == "biased"
        assert self.build([False] * 49 + [True]).classification == "biased"

    def test_loop_classification(self):
        # back edge of an 8-iteration loop entered 6 times
        pattern = ([True] * 8 + [False]) * 6
        assert self.build(pattern).classification == "loop"

    def test_phased_classification(self):
        pattern = [True] * 40 + [False] * 40
        assert self.build(pattern).classification == "phased"

    def test_mixed_classification(self):
        import random
        rng = random.Random(3)
        pattern = [rng.random() < 0.55 for _ in range(200)]
        assert self.build(pattern).classification == "mixed"

    def test_tiny_sample_is_mixed(self):
        assert self.build([True, False]).classification == "mixed"


class TestTraceProfile:
    def test_aggregation(self):
        events = events_for(0x1000, [True] * 5) + \
            events_for(0x2000, [False] * 3)
        profile = profile_trace(events)
        assert profile.static_sites == 2
        assert profile.events == 8
        assert profile.sites[0x1000].executions == 5

    def test_optimal_static_matches_predictor(self):
        from repro.predict import OptimalStaticPredictor
        events = events_for(0x1000, [True, False] * 20) + \
            events_for(0x2000, [True] * 30 + [False] * 3)
        profile = profile_trace(events)
        predictor = OptimalStaticPredictor()
        for event in events:
            predictor.observe(event.pc, event.taken)
        assert profile.optimal_static_accuracy() \
            == pytest.approx(predictor.accuracy)

    def test_unconditional_filtered(self):
        events = [BranchEvent(0x1000, True, conditional=False)]
        assert profile_trace(events).events == 0

    def test_hottest_ordering(self):
        events = events_for(0x1000, [True] * 3) + \
            events_for(0x2000, [True] * 10)
        hottest = profile_trace(events).hottest(1)
        assert hottest[0].pc == 0x2000


class TestOnRealPrograms:
    def test_figure3_contains_an_alternator_and_a_loop(self):
        program = compile_source(FIGURE3)
        profile = profile_trace(capture_trace(program))
        classes = {site.classification
                   for site in profile.sites.values()
                   if site.executions > 100}
        assert "alternating" in classes
        assert "biased" in classes or "loop" in classes

    def test_figure3_mixture_is_half_alternating(self):
        program = compile_source(FIGURE3)
        mixture = profile_trace(capture_trace(program)).class_mixture()
        assert mixture.get("alternating", 0) == pytest.approx(0.5, abs=0.05)

    def test_synthetic_troff_mixture_matches_design(self):
        # the calibrated generator's dominant class must be 'biased',
        # matching its design (54% strongly biased dispatch + loops)
        profile = profile_trace(TROFF_LIKE.generate(30_000))
        mixture = profile.class_mixture()
        assert max(mixture, key=mixture.get) in ("biased", "loop")
        assert profile.optimal_static_accuracy() > 0.9
