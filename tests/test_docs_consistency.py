"""Documentation consistency: the reference docs must not drift from the
code they document."""

import re
from pathlib import Path

import pytest

from repro.isa.opcodes import Opcode
from repro.workloads import SUITE

ROOT = Path(__file__).resolve().parent.parent


def read(relative):
    return (ROOT / relative).read_text(encoding="utf-8")


class TestIsaDoc:
    def test_every_opcode_documented(self):
        text = read("docs/isa.md")
        documented = set(re.findall(r"`([a-z][a-z0-9.<>=!]*)`", text))
        for opcode in Opcode:
            mnemonic = opcode.value
            base = mnemonic.split(".")[0]
            assert mnemonic in text or base in documented, (
                f"opcode {mnemonic!r} missing from docs/isa.md")

    def test_documented_ranges_match_code(self):
        from repro.isa.parcels import SHORT_BRANCH_MAX, SHORT_BRANCH_MIN
        text = read("docs/isa.md")
        assert str(SHORT_BRANCH_MIN) in text
        assert f"+{SHORT_BRANCH_MAX}" in text or str(SHORT_BRANCH_MAX) in text

    def test_documented_defaults_match_code(self):
        from repro.asm.program import (
            DEFAULT_CODE_BASE,
            DEFAULT_DATA_BASE,
            DEFAULT_STACK_TOP,
        )
        text = read("docs/isa.md")
        for value in (DEFAULT_CODE_BASE, DEFAULT_DATA_BASE,
                      DEFAULT_STACK_TOP):
            assert f"{value:#x}" in text


class TestPipelineDoc:
    def test_penalty_table_matches_model(self):
        text = read("docs/pipeline.md")
        for penalty in ("**3**", "**2**", "**1**", "**0**"):
            assert penalty in text

    def test_defaults_mentioned(self):
        from repro.sim.cpu import CpuConfig
        config = CpuConfig()
        text = read("docs/pipeline.md")
        assert f"default {config.mem_latency}" in text
        assert str(config.icache_entries) in text


class TestReadme:
    def test_examples_listed_exist(self):
        text = read("README.md")
        for match in re.findall(r"examples/(\w+)\.py", text):
            assert (ROOT / "examples" / f"{match}.py").exists(), match

    def test_console_scripts_exist(self):
        import tomllib
        config = tomllib.loads(read("pyproject.toml"))
        scripts = config["project"]["scripts"]
        for name, target in scripts.items():
            module, function = target.split(":")
            imported = __import__(module, fromlist=[function])
            assert callable(getattr(imported, function)), name


class TestDesignInventory:
    def test_every_bench_file_listed_in_design(self):
        text = read("DESIGN.md") + read("EXPERIMENTS.md")
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in text, (
                f"{bench.name} missing from DESIGN.md/EXPERIMENTS.md")

    def test_workload_suite_documented(self):
        text = read("DESIGN.md")
        # the suite size is stated in the layout section
        assert f"{len(SUITE)}-program suite" in text
