"""Tests for the VAX instruction-count model and delayed-branch model."""

import pytest

from repro.baselines import DelayedBranchModel, run_vax_model
from repro.baselines.vax import VaxModel
from repro.isa.parcels import to_s32
from repro.lang import compile_source
from repro.lang.parser import parse
from repro.sim.functional import run_program
from repro.sim.stats import ExecutionStats
from repro.workloads import FIGURE3, SUITE


class TestVaxOpcodeSelection:
    def counts(self, source):
        return run_vax_model(source).opcode_counts

    def test_clrl_for_zero_assignment(self):
        counts = self.counts("int x; int main() { x = 0; return 0; }")
        assert counts["clrl"] == 1

    def test_incl_for_increment(self):
        counts = self.counts(
            "int x; int main() { x++; x += 1; x = x + 1; return 0; }")
        assert counts["incl"] == 3

    def test_decl_for_decrement(self):
        counts = self.counts("int x; int main() { x--; x -= 1; return 0; }")
        assert counts["decl"] == 2

    def test_addl2_for_accumulating_assignment(self):
        counts = self.counts(
            "int x; int y; int main() { x += y; x = x + y; return 0; }")
        assert counts["addl2"] == 2

    def test_addl3_for_subexpression(self):
        counts = self.counts(
            "int x; int y; int z; int main() { x = y + z; return 0; }")
        assert counts["addl3"] == 1
        assert counts["movl"] >= 1

    def test_compare_and_inverted_jump(self):
        counts = self.counts("""
            int x;
            int main() { if (x < 5) x = 1; return 0; }
        """)
        assert counts["cmpl"] == 1
        assert counts["jgeq"] == 1  # branch around on the inverse

    def test_bitl_for_mask_test(self):
        counts = self.counts("""
            int x;
            int main() { if (x & 1) x = 1; return 0; }
        """)
        assert counts["bitl"] == 1
        assert counts["jeql"] == 1

    def test_loop_shape(self):
        counts = self.counts("""
            int main() { int s = 0;
                for (int i = 0; i < 10; i++) s += i; return s; }
        """)
        assert counts["jbr"] == 10  # back edges
        assert counts["cmpl"] == 11  # 10 passes + 1 failing test
        assert counts["incl"] == 10

    def test_calls_and_ret(self):
        counts = self.counts("""
            int f(int a) { return a; }
            int main() { return f(1) + f(2); }
        """)
        assert counts["calls"] == 3  # main + two calls of f
        assert counts["ret"] == 3
        assert counts["pushl"] == 2


class TestVaxSemantics:
    """The VAX model doubles as an independent mini-C interpreter."""

    def test_return_value(self):
        result = run_vax_model("int main() { return 6 * 7; }")
        assert result.return_value == 42

    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_agrees_with_crisp_toolchain(self, name):
        # triple-entente differential: the AST interpreter must compute
        # the same checksum as compiled code on the functional simulator
        source = SUITE[name].source
        vax = run_vax_model(source)
        crisp = run_program(compile_source(source))
        assert to_s32(vax.return_value) == to_s32(crisp.state.accum), name

    def test_array_oob_detected(self):
        with pytest.raises(IndexError):
            run_vax_model("""
                int a[4];
                int main() { int i = 9; return a[i]; }
            """)

    def test_instruction_budget(self):
        model = VaxModel(parse("int main() { while (1) ; return 0; }"),
                         max_instructions=1000)
        with pytest.raises(RuntimeError):
            model.run()


class TestVaxTable2:
    def test_figure3_matches_paper_exactly(self):
        # the paper's VAX column, opcode by opcode
        result = run_vax_model(FIGURE3)
        counts = result.opcode_counts
        assert counts["incl"] == 2048
        assert counts["jbr"] == 1536
        assert counts["movl"] == 1026
        assert counts["cmpl"] == 1025
        assert counts["jgeq"] == 1025
        assert counts["addl2"] == 1024
        assert counts["bitl"] == 1024
        assert counts["jeql"] == 1024
        assert counts["clrl"] == 2
        assert result.total_instructions == 9736  # paper: 9736


class TestDelayedBranchModel:
    def stats(self, instructions, branches):
        stats = ExecutionStats()
        stats.instructions = instructions
        stats.branches = branches
        return stats

    def test_perfect_fill_still_pays_branch_slot(self):
        # the paper's point: even with every slot filled, the branch
        # instruction itself costs a cycle that folding eliminates
        model = DelayedBranchModel(delay_slots=1, fill_rates=(1.0,))
        result = model.cost(self.stats(1000, 300))
        assert result.cycles == 1000  # branches included in the 1000

    def test_unfilled_slots_cost_cycles(self):
        model = DelayedBranchModel(delay_slots=1, fill_rates=(0.0,))
        result = model.cost(self.stats(1000, 300))
        assert result.cycles == 1300

    def test_partial_fill(self):
        model = DelayedBranchModel(delay_slots=2, fill_rates=(0.7, 0.25))
        result = model.cost(self.stats(1000, 100))
        assert result.cycles == pytest.approx(1000 + 100 * (2 - 0.95))

    def test_cpi(self):
        model = DelayedBranchModel(delay_slots=1, fill_rates=(0.5,))
        result = model.cost(self.stats(1000, 200))
        assert result.cpi == pytest.approx(1.1)
