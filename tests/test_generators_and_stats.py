"""Coverage for the parametric workload generators, pipeline-statistics
derivations, and Program utilities."""

import pytest

from repro.asm import assemble
from repro.isa.parcels import to_s32
from repro.lang import compile_source
from repro.sim.cpu import run_cycle_accurate
from repro.sim.functional import run_program
from repro.sim.stats import ExecutionStats, PipelineStats
from repro.workloads.generators import (
    biased_branches,
    branchy_loop,
    working_set,
)


class TestGenerators:
    def test_branchy_loop_computes_correctly(self):
        simulator = run_program(compile_source(branchy_loop(3, 10)))
        expected = sum((k % 7) for k in range(3)) * 10
        assert to_s32(simulator.state.accum) == expected

    def test_branchy_loop_density_controls_fraction(self):
        sparse = run_program(compile_source(branchy_loop(16, 50)))
        dense = run_program(compile_source(branchy_loop(1, 50)))
        assert dense.stats.branch_fraction > sparse.stats.branch_fraction

    def test_biased_branches_counts(self):
        simulator = run_program(compile_source(biased_branches(10, 100)))
        assert simulator.read_symbol("rare") == 10
        assert simulator.read_symbol("common") == 90

    def test_biased_branches_period_two_alternates(self):
        from repro.trace import capture_trace
        from repro.trace.analyze import profile_trace
        program = compile_source(biased_branches(2, 200))
        profile = profile_trace(capture_trace(program))
        classes = [site.classification
                   for site in profile.sites.values()
                   if site.executions >= 150]
        assert "alternating" in classes

    def test_working_set_scales_code_size(self):
        small = compile_source(working_set(4, 5))
        large = compile_source(working_set(40, 5))
        assert len(large.instructions) > len(small.instructions) + 30

    def test_working_set_result_consistent(self):
        simulator = run_program(compile_source(working_set(8, 3)))
        expected = sum((k % 5) for k in range(8)) * 3
        assert to_s32(simulator.state.accum) == expected


class TestPipelineStatsDerivations:
    def test_breakdown_sums_to_one_on_real_run(self):
        cpu = run_cycle_accurate(compile_source(branchy_loop(2, 50)))
        breakdown = cpu.stats.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["issue"] > 0.5

    def test_breakdown_property_sums_to_one(self):
        """Property: for any stats obeying the simulator's invariant
        (every cycle either issues or stalls), the four breakdown
        buckets are non-negative and sum to exactly 1.0 — even when the
        charged penalty exceeds the observed stalls (overlapping
        recovery windows), the case the pre-residual buckets got wrong.
        """
        import random
        rng = random.Random(1987)
        for _ in range(500):
            issued = rng.randrange(1, 10_000)
            stalls = rng.randrange(0, 5_000)
            penalty = rng.randrange(0, 8_000)  # may exceed stalls
            stats = PipelineStats(
                cycles=issued + stalls,
                issued_instructions=issued,
                stall_cycles=stalls,
                mispredictions=rng.randrange(0, 100),
                misprediction_penalty_cycles=penalty)
            breakdown = stats.breakdown()
            assert set(breakdown) == {"issue", "penalty", "other_stall",
                                      "residual"}
            assert all(value >= 0.0 for value in breakdown.values())
            assert sum(breakdown.values()) == pytest.approx(1.0, abs=1e-9)

    def test_breakdown_penalty_capped_at_observed_stalls(self):
        stats = PipelineStats(cycles=100, issued_instructions=98,
                              stall_cycles=2,
                              misprediction_penalty_cycles=30)
        breakdown = stats.breakdown()
        assert breakdown["penalty"] == pytest.approx(0.02)
        assert breakdown["other_stall"] == 0.0
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_breakdown_empty_stats(self):
        breakdown = PipelineStats().breakdown()
        assert sum(breakdown.values()) == 0.0

    def test_empty_stats_are_safe(self):
        stats = PipelineStats()
        assert stats.issued_cpi == 0.0
        assert stats.apparent_cpi == 0.0
        assert stats.apparent_ipc == 0.0
        assert stats.icache_hit_rate == 0.0
        assert "0 cycles" in stats.summary()

    def test_execution_stats_empty(self):
        stats = ExecutionStats()
        assert stats.branch_fraction == 0.0
        assert stats.one_parcel_branch_fraction == 0.0
        assert stats.table() == []

    def test_opcode_table_percentages(self):
        stats = ExecutionStats()
        for _ in range(3):
            stats.record("add", is_branch=False, is_conditional=False,
                         taken=False, one_parcel=True)
        stats.record("jmp", is_branch=True, is_conditional=False,
                     taken=True, one_parcel=True)
        rows = stats.table()
        assert rows[0] == ("add", 3, 75.0)
        assert rows[1] == ("jmp", 1, 25.0)


class TestProgramUtilities:
    PROGRAM = """
        .entry main
        .word counter, 5
main:   add counter, $1
        halt
    """

    def test_code_end(self):
        program = assemble(self.PROGRAM)
        assert program.code_end == program.addresses[-1] + 2

    def test_instruction_at(self):
        program = assemble(self.PROGRAM)
        instruction = program.instruction_at(program.entry)
        assert instruction.opcode.value == "add"
        with pytest.raises(KeyError):
            program.instruction_at(program.entry + 1)

    def test_symbol_lookup(self):
        program = assemble(self.PROGRAM)
        assert program.symbol("counter") == 0x8000
        assert program.symbol("main") == program.entry

    def test_empty_program_code_end(self):
        program = assemble("")
        assert program.code_end == program.code_base

    def test_data_image_initial_values(self):
        program = assemble(self.PROGRAM)
        assert program.data_image()[0x8000] == 5
