; Figure-3 style counted loop: the compare folds directly into the
; back-edge (d0 interlock), so every iteration speculates on the
; prediction bit and only the exit iteration mispredicts (penalty 3).
    .entry start
    .word sum, 0
    .word i, 0
start:
    mov i, $12
loop:
    add sum, i
    sub i, $1
    cmp.u> i, $0
    iftjmpy loop
    halt
