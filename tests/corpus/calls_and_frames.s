; Nested calls with stack frames: return-address push/pop, frame
; allocate/release, sp-relative operands inside the frame, and the
; dynamic-target fetch bubble on each return.
    .entry start
    .word x, 3
start:
    call outer
    call leaf
    halt
outer:
    enter 8
    mov 0(sp), x
    add 0(sp), $10
    call leaf
    add x, 0(sp)
    spadd 8
    return
leaf:
    mul x, $2
    return
