; Compare-to-branch distances 1, 2 and >=3: folded branches at d1/d2
; speculate with reduced penalties (2/1); at distance 3 the flag is
; architectural and a wrong prediction bit is a zero-cost override.
    .entry start
    .word a, 5
    .word b, 9
    .word out, 0
start:
    cmp.s< a, b            ; true
    add out, $1            ; d1 gap filler
    iffjmpy skip1          ; folded d1, predicted taken, not taken: mispredict (2)
    add out, $2
skip1:
    cmp.s> a, b            ; false
    add out, $4            ; d2 gap
    sub out, $1            ; d2 gap
    iffjmpn skip2          ; folded d2, not-taken sense false => taken? flag false -> taken; predicted not-taken: mispredict (1)
    add out, $8
skip2:
    cmp.= a, $5            ; true
    add out, $16
    add out, $32
    add out, $64           ; distance 3: flag settled
    iffjmpy skip3          ; predicted taken but flag true & sense false -> not taken: zero-cost override
    add out, $128
skip3:
    halt
