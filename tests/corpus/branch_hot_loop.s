; Port of the m2sim2 hang: a hot counted loop whose back-edge a
; confidence-gated dynamic folder commits to on every iteration once
; the predictor warms up. m2sim2 folded the branch *without* carrying
; a verification record, so the exit iteration's mispredicted fold was
; never caught and the simulator looped forever (fold count climbing,
; flush count stuck at zero — the signature SimulationHungError now
; reports). Here the shadow record must catch every wrong commitment:
; the program must terminate with total == 2 * (2 + 3 + ... + 17) = 304
; and at least one verified recovery recorded under dynamic_fold at
; every confidence threshold — including with --inject always-wrong
; forcing a recovery on every engaged iteration.
    .entry start
    .word total, 0
    .word n, 0
    .word pass, 0
start:
    mov pass, $2
again:
    mov n, $16
hot:
    add total, n
    add total, $1
    sub n, $1
    cmp.u> n, $0
    iftjmpy hot
    sub pass, $1
    cmp.u> pass, $0
    iftjmpy again
    halt
