; Shrinker-minimized repro (8 parcels) from an injected-bug exercise:
; with the fast kernel's OR-stage interlock penalty mutated from 2 to
; 3, this is the minimal program on which the kernels disagree. Kept
; as a regression guard for the per-distance penalty table: a folded
; conditional branch one entry behind its compare (d1) mispredicting.
    .entry start
start:
    cmp.s< $26597, $3
    mul3 Accum, $-28069
    iffjmpn L1
L1:
    halt
