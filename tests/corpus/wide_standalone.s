; Width mix: 3-parcel bodies still fold; 5-parcel bodies (two extended
; operands) exceed the CRISP fold policy, leaving the following branch
; standalone; long conditional jumps are 3 parcels and never fold.
    .entry start
    .word t, 7
start:
    cmp.s>= t, $1          ; true
    mov t, $70000          ; 5-parcel body: branch below stays standalone
    iftjmpy thin           ; standalone, speculates (spec), correct
    nop
thin:
    add t, $3              ; 1-parcel body
    jmp mid                ; folds into the add
mid:
    cmp.u<= t, $100000     ; true
    iffjmply wide          ; long condjmp: standalone, predicted taken
                           ; but not taken at distance 1 -> mispredict
    sub t, $1
wide:
    xor t, $0x5a5a         ; 3-parcel body
    jmp done               ; folds into the 3-parcel xor
    nop
done:
    halt
