; Dynamic targets: a jump table in data feeding an absolute-indirect
; jmpl, an sp-relative indirect jump through a slot written at runtime,
; and a conditional long jump with an indirect target (taken once,
; then falls through).
    .entry start
    .word v, 2
    .word jt, case1        ; 0x8004: jump table entry
start:
    jmpl (*0x8004)         ; absolute-indirect through the table
    add v, $100            ; skipped
case1:
    mov 0(sp), $case2
    jmpl (0(sp))           ; sp-relative indirect
    add v, $200            ; skipped
case2:
    sub v, $1
    cmp.u> v, $0           ; true on the first pass only
    iftjmply (*0x8004)     ; conditional indirect: taken, then not
    halt
