"""``unsigned`` type support: the compiler path onto the ISA's
``cmp.u*`` comparisons, logical right shift, and unsigned divide."""

import pytest

from repro.baselines.vax import run_vax_model
from repro.isa.parcels import to_s32, to_u32
from repro.lang import compile_source, compile_to_assembly
from repro.sim.functional import run_program


def run_main(source):
    simulator = run_program(compile_source(source))
    return to_u32(simulator.state.accum)


class TestParsing:
    def test_forms(self):
        from repro.lang.parser import parse
        unit = parse("""
            unsigned a; unsigned int b;
            unsigned f(unsigned x, int y) { return x; }
            int main() { unsigned c = 1; return f(c, 2); }
        """)
        assert unit.globals[0].is_unsigned
        assert unit.globals[1].is_unsigned
        f = unit.function("f")
        assert f.returns_unsigned
        assert f.param_unsigned == [True, False]


class TestSemantics:
    def test_unsigned_comparison(self):
        # -1 as unsigned is 4294967295: greater than 100
        assert run_main("""
            unsigned a;
            int main() { a = 0 - 1; return a > 100; }
        """) == 1
        assert run_main("""
            int a;
            int main() { a = 0 - 1; return a > 100; }
        """) == 0

    def test_unsigned_wins_mixed_comparison(self):
        # C's usual arithmetic conversions: int compares as unsigned
        assert run_main("""
            unsigned u; int s;
            int main() { u = 1; s = -1; return s > u; }
        """) == 1

    def test_logical_vs_arithmetic_shift(self):
        assert run_main("""
            unsigned a;
            int main() { a = 0 - 16; return a >> 28; }
        """) == 15  # logical: zero-filled
        result = run_main("""
            int a;
            int main() { a = -16; return a >> 28; }
        """)
        assert to_s32(result) == -1  # arithmetic: sign-filled

    def test_unsigned_division(self):
        assert run_main("""
            unsigned a;
            int main() { a = 0 - 2; return a / 2; }
        """) == 0x7FFFFFFF
        assert run_main("""
            unsigned a;
            int main() { a = 0 - 3; return a % 10; }
        """) == (2 ** 32 - 3) % 10

    def test_signed_division_unchanged(self):
        result = run_main("int main() { int a = -7; return a / 2; }")
        assert to_s32(result) == -3

    def test_unsigned_loop_bound(self):
        # classic pitfall made to work: counting down with unsigned
        assert run_main("""
            int main() {
                unsigned u; int n;
                n = 0;
                for (u = 5; u > 0; u--) n++;
                return n;
            }
        """) == 5

    def test_unsigned_function_result_propagates(self):
        assert run_main("""
            unsigned big() { unsigned x = 0 - 1; return x; }
            int main() { return big() > 10; }
        """) == 1

    def test_unsigned_compound_assign(self):
        assert run_main("""
            unsigned a;
            int main() { a = 0 - 4; a /= 4; return a == 1073741823; }
        """) == 1

    def test_unsigned_array(self):
        assert run_main("""
            unsigned arr[3];
            int main() { arr[1] = 0 - 1; return arr[1] > 1000; }
        """) == 1


class TestCodegenShape:
    def test_unsigned_compare_opcodes(self):
        text = compile_to_assembly("""
            unsigned a;
            int main() { if (a < 5) return 1; return 0; }
        """)
        assert "cmp.u<" in text
        assert "cmp.s<" not in text

    def test_logical_shift_opcode(self):
        text = compile_to_assembly("""
            unsigned a;
            int main() { return a >> 3; }
        """)
        assert "shr3" in text

    def test_unsigned_divide_opcode(self):
        text = compile_to_assembly("""
            unsigned a;
            int main() { a = a / 7; return a; }
        """)
        assert "udiv" in text

    def test_equality_stays_shared(self):
        text = compile_to_assembly("""
            unsigned a;
            int main() { if (a == 5) return 1; return 0; }
        """)
        assert "cmp.=" in text


class TestDifferential:
    SOURCES = [
        """
        unsigned h;
        unsigned hash(unsigned x) {
            h = x * 2654435761;
            h ^= h >> 16;
            return h;
        }
        int main() {
            unsigned acc; int i;
            acc = 0;
            for (i = 1; i <= 40; i++)
                acc += hash(i) % 1000;
            return acc;
        }
        """,
        """
        int main() {
            unsigned u; int count;
            count = 0;
            for (u = 0 - 5; u != 0; u++) count++;
            return count;
        }
        """,
    ]

    @pytest.mark.parametrize("index", range(len(SOURCES)))
    def test_matches_interpreter(self, index):
        source = self.SOURCES[index]
        vax = run_vax_model(source)
        assert to_u32(vax.return_value) == run_main(source)
