"""White-box tests of the Execution Unit: drive it directly with
hand-built decoded entries (no PDU, no cache) for exact control of the
per-cycle behaviour."""

import pytest

from repro.core.decoded import DecodedEntry
from repro.core.nextpc import compute_next_pcs
from repro.isa import BranchMode, BranchSpec, Instruction, Opcode, imm, sp_off
from repro.isa.operands import absolute
from repro.sim.eu import ExecutionUnit
from repro.sim.memory import Memory
from repro.sim.semantics import MachineState
from repro.sim.stats import PipelineStats


def entry_for(pc, body=None, branch_instr=None):
    length = (body.length_bytes() if body else 0) + \
        (branch_instr.length_bytes() if branch_instr else 0)
    next_pc, alt = compute_next_pcs(pc, body, branch_instr, length)
    return DecodedEntry(pc, body, branch_instr, next_pc, alt, length)


def add_to(address, value=1):
    return Instruction(Opcode.ADD, (absolute(address), imm(value)))


def cmp_eq(a, b):
    return Instruction(Opcode.CMP_EQ, (imm(a), imm(b)))


def cond_branch(displacement, predicted=True):
    opcode = Opcode.IFJMP_T_Y if predicted else Opcode.IFJMP_T_N
    return Instruction(opcode, (), BranchSpec(BranchMode.PC_RELATIVE,
                                              displacement))


class Harness:
    """Feeds a fixed entry map to the EU the way the CPU would."""

    def __init__(self, entries, start):
        self.memory = Memory()
        self.state = MachineState(self.memory, pc=start, sp=0x10000)
        self.stats = PipelineStats()
        self.eu = ExecutionUnit(self.state, self.stats)
        self.entries = {entry.address: entry for entry in entries}

    def run(self, cycles):
        for _ in range(cycles):
            fetched = None
            if self.eu.ir_next_pc is not None:
                fetched = self.entries.get(self.eu.ir_next_pc)
            self.eu.tick(fetched)
            if self.eu.halted:
                break
        return self.stats


def halt_entry(pc):
    return entry_for(pc, Instruction(Opcode.HALT))


def layout(pc, *instruction_pairs):
    """Build sequential entries at their true byte lengths.

    Each element is a body instruction or a (body, branch) pair.
    Returns (entries, next_free_pc).
    """
    entries = []
    for element in instruction_pairs:
        body, branch_instr = (element if isinstance(element, tuple)
                              else (element, None))
        entry = entry_for(pc, body, branch_instr)
        entries.append(entry)
        pc += entry.length_bytes
    return entries, pc


class TestBasicFlow:
    def test_three_cycle_fetch_to_execute(self):
        entries, _ = layout(0x1000, add_to(0x8000),
                            Instruction(Opcode.HALT))
        harness = Harness(entries, 0x1000)
        harness.run(20)
        assert harness.memory.read_word(0x8000) == 1
        assert harness.eu.halted
        assert harness.stats.issued_instructions == 2

    def test_steady_stream_one_per_cycle(self):
        entries, _ = layout(
            0x1000, *[add_to(0x8000) for _ in range(10)],
            Instruction(Opcode.HALT))
        harness = Harness(entries, 0x1000)
        harness.run(50)
        assert harness.memory.read_word(0x8000) == 10
        # 10 adds + halt issued with zero bubbles after the 3-cycle fill
        assert harness.stats.stall_cycles == 3


class TestSquashMechanics:
    def build_mispredict(self, fillers, fold_cmp=False):
        """cmp (false) [... fillers ...] folded branch predicted taken.

        ``fold_cmp`` folds the compare with the branch itself (d=0);
        otherwise the compare is its own entry ``fillers`` entries ahead
        (d = fillers + 1).
        """
        if fold_cmp:
            body = cmp_eq(1, 2)
            entries, fall_through = layout(
                0x1000, (body, cond_branch(0x40)))
        else:
            body = add_to(0x8004)
            entries, fall_through = layout(
                0x1000,
                cmp_eq(1, 2),
                *[add_to(0x8000) for _ in range(fillers)],
                (body, cond_branch(0x40)),
            )
        branch_pc = entries[-1].address + body.length_bytes()
        entries += layout(fall_through, Instruction(Opcode.HALT))[0]
        # wrong-path entries (predicted target): poison writes that must
        # never land
        target = branch_pc + 0x40
        wrong, _ = layout(target, add_to(0x8008, 99),
                          Instruction(Opcode.HALT))
        entries += wrong
        return entries, fall_through

    def test_folded_compare_and_branch_costs_three(self):
        entries, _ = self.build_mispredict(0, fold_cmp=True)
        harness = Harness(entries, 0x1000)
        harness.run(60)
        assert harness.stats.mispredictions == 1
        assert harness.stats.misprediction_penalty_cycles == 3
        assert harness.memory.read_word(0x8008) == 0

    @pytest.mark.parametrize("fillers,penalty", [(0, 2), (1, 1)])
    def test_penalties_by_distance(self, fillers, penalty):
        # the compare is its own entry: distance = fillers + 1
        entries, _ = self.build_mispredict(fillers)
        harness = Harness(entries, 0x1000)
        harness.run(60)
        assert harness.eu.halted
        assert harness.stats.mispredictions == 1
        assert harness.stats.misprediction_penalty_cycles == penalty
        # the wrong-path write never lands
        assert harness.memory.read_word(0x8008) == 0

    def test_distance_three_is_free(self):
        entries, _ = self.build_mispredict(2)  # cmp + 2 fillers = d 3
        harness = Harness(entries, 0x1000)
        harness.run(60)
        assert harness.stats.mispredictions == 0
        assert harness.stats.zero_cost_overrides == 1
        assert harness.memory.read_word(0x8008) == 0

    def test_correct_path_work_retires(self):
        entries, _ = self.build_mispredict(0)
        harness = Harness(entries, 0x1000)
        harness.run(60)
        # the folded body (0x8004) is architecturally before the branch
        assert harness.memory.read_word(0x8004) == 1

    def test_wrong_path_never_retires_at_any_distance(self):
        for fillers in range(4):
            entries, _ = self.build_mispredict(fillers)
            harness = Harness(entries, 0x1000)
            harness.run(60)
            assert harness.eu.halted
            assert harness.memory.read_word(0x8008) == 0, fillers


class TestSequenceNumbers:
    def test_two_compares_govern_their_own_branches(self):
        # cmp(false); folded[add+br predicted-taken->WRONG];
        # on the corrected path: cmp(true); folded[add+br predicted-taken
        # ->RIGHT]; both resolve independently
        body1 = add_to(0x8004)
        entries, fall = layout(0x1000, cmp_eq(1, 2),
                               (body1, cond_branch(0x40)))
        body2 = add_to(0x800C)
        more, after = layout(fall, cmp_eq(3, 3),
                             (body2, cond_branch(0x20)))
        entries += more
        second_branch_pc = more[-1].address + body2.length_bytes()
        entries += layout(second_branch_pc + 0x20,
                          Instruction(Opcode.HALT))[0]
        harness = Harness(entries, 0x1000)
        harness.run(80)
        assert harness.eu.halted
        assert harness.stats.mispredictions == 1  # only the first
