"""Unit tests for the branch-predictor zoo."""

import pytest
from hypothesis import given, strategies as st

from repro.predict import (
    AlwaysTakenPredictor,
    BackwardTakenPredictor,
    BranchTargetBuffer,
    CounterPredictor,
    JumpTrace,
    OptimalStaticPredictor,
    PredictionStudy,
)
from repro.trace.events import BranchEvent


def feed(predictor, outcomes, pc=0x1000, target=0x900):
    for taken in outcomes:
        predictor.observe(pc, taken, target)
    return predictor


class TestStaticPredictors:
    def test_always_taken(self):
        predictor = feed(AlwaysTakenPredictor(), [True, True, False, True])
        assert predictor.accuracy == 0.75

    def test_backward_taken_heuristic(self):
        predictor = BackwardTakenPredictor()
        predictor.observe(0x1000, True, 0x900)  # backward, taken: right
        predictor.observe(0x1000, False, 0x900)  # backward, not: wrong
        predictor.observe(0x2000, False, 0x3000)  # forward, not: right
        assert predictor.correct == 2

    def test_optimal_static_majority(self):
        predictor = feed(OptimalStaticPredictor(),
                         [True] * 9 + [False])
        assert predictor.accuracy == 0.9

    def test_optimal_static_alternating_is_half(self):
        # the paper's explanation: alternation gives static exactly 50%
        predictor = feed(OptimalStaticPredictor(), [True, False] * 50)
        assert predictor.accuracy == 0.5

    def test_optimal_static_multiple_branches(self):
        predictor = OptimalStaticPredictor()
        for taken in [True] * 8 + [False] * 2:
            predictor.observe(0x1000, taken)
        for taken in [False] * 10:
            predictor.observe(0x2000, taken)
        assert predictor.accuracy == (8 + 10) / 20
        bits = predictor.optimal_bits()
        assert bits[0x1000] is True
        assert bits[0x2000] is False


class TestCounterPredictors:
    def test_one_bit_predicts_last_direction(self):
        predictor = CounterPredictor(1)
        predictor.observe(0x1000, True)
        assert predictor.predict(0x1000) is True
        predictor.observe(0x1000, False)
        assert predictor.predict(0x1000) is False

    def test_one_bit_alternating_is_zero(self):
        # paper: "for the case where branches alternate direction ...
        # all the dynamic schemes get 0% correct"
        predictor = CounterPredictor(1)
        predictor.observe(0x1000, True)  # first prediction may differ
        for taken in [False, True] * 30:
            predictor.observe(0x1000, taken)
        assert predictor.correct == 0

    def test_two_bit_alternating_is_zero(self):
        predictor = CounterPredictor(2)
        feed(predictor, [True, False] * 30)
        assert predictor.accuracy < 0.1

    def test_two_bit_hysteresis_on_loops(self):
        # a loop that exits once: the 2-bit counter mispredicts only the
        # exit; the 1-bit counter also mispredicts the re-entry
        pattern = ([True] * 9 + [False]) * 10
        one = feed(CounterPredictor(1), pattern)
        two = feed(CounterPredictor(2), pattern)
        assert two.accuracy > one.accuracy

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            CounterPredictor(0)

    def test_saturation_bounds(self):
        predictor = CounterPredictor(2)
        feed(predictor, [True] * 100)
        assert predictor._counters[0x1000] == 3
        feed(predictor, [False] * 100)
        assert predictor._counters[0x1000] == 0

    def test_table_size_counts_static_branches(self):
        predictor = CounterPredictor(2)
        for pc in (0x1000, 0x2000, 0x3000):
            predictor.observe(pc, True)
        assert predictor.table_size == 3

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_accuracy_bounded(self, outcomes):
        for bits in (1, 2, 3):
            predictor = feed(CounterPredictor(bits), outcomes)
            assert 0.0 <= predictor.accuracy <= 1.0
            assert predictor.total == len(outcomes)


class TestBranchTargetBuffer:
    def test_miss_predicts_not_taken(self):
        btb = BranchTargetBuffer()
        assert btb.predict(0x1000) is False

    def test_allocates_on_taken_only(self):
        btb = BranchTargetBuffer()
        btb.observe(0x1000, False, 0x900)
        assert btb.occupancy == 0
        btb.observe(0x1000, True, 0x900)
        assert btb.occupancy == 1

    def test_supplies_target_on_hit(self):
        btb = BranchTargetBuffer()
        btb.observe(0x1000, True, 0x900)
        assert btb.predicted_target(0x1000) == 0x900

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.observe(0x1000, True, 0x10)
        btb.observe(0x2000, True, 0x20)
        btb.observe(0x1000, True, 0x10)  # refresh 0x1000
        btb.observe(0x3000, True, 0x30)  # evicts 0x2000
        assert btb.predicted_target(0x2000) is None
        assert btb.predicted_target(0x1000) == 0x10

    def test_counter_decay_to_not_taken(self):
        btb = BranchTargetBuffer()
        btb.observe(0x1000, True, 0x900)
        btb.observe(0x1000, False, 0x900)
        btb.observe(0x1000, False, 0x900)
        assert btb.predict(0x1000) is False

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=100)


class TestJumpTrace:
    def test_hit_predicts_taken(self):
        trace = JumpTrace()
        trace.observe(0x1000, True, 0x500)
        assert trace.predict(0x1000) is True
        assert trace.predicted_target(0x1000) == 0x500

    def test_not_taken_removes_entry(self):
        trace = JumpTrace()
        trace.observe(0x1000, True, 0x500)
        trace.observe(0x1000, False, 0x500)
        assert trace.predict(0x1000) is False

    def test_fifo_capacity(self):
        trace = JumpTrace(entries=8)
        for i in range(10):
            trace.observe(0x1000 + 4 * i, True, 0x500)
        assert trace.predict(0x1000) is False  # evicted
        assert trace.predict(0x1000 + 4 * 9) is True


class TestPredictionStudy:
    def test_all_predictors_see_all_events(self):
        study = PredictionStudy()
        events = [BranchEvent(0x1000, True), BranchEvent(0x1000, False)]
        study.observe_all(events)
        assert study.events == 2
        for predictor in study.predictors:
            assert predictor.total == 2

    def test_unconditional_branches_skipped(self):
        study = PredictionStudy()
        study.observe(BranchEvent(0x1000, True, conditional=False))
        assert study.events == 0

    def test_accuracies_keyed_by_name(self):
        study = PredictionStudy()
        study.observe(BranchEvent(0x1000, True))
        names = set(study.accuracies())
        assert names == {"static-optimal", "1-bit-dynamic",
                         "2-bit-dynamic", "3-bit-dynamic"}
