"""Tests for the design-space sweep framework."""

import pytest

from repro.eval.sweeps import (
    Sweep,
    fold_policy_sweep,
    icache_sweep,
    latency_sweep,
    run_grid,
)
from repro.sim.cpu import CpuConfig

WORKLOADS = ["alternating"]


@pytest.fixture(scope="module")
def fold_sweep():
    return fold_policy_sweep(WORKLOADS)


class TestSweeps:
    def test_grid_shape(self):
        sweep = run_grid(WORKLOADS, {"a": CpuConfig(), "b": CpuConfig()})
        assert len(sweep.points) == 2
        assert {p.label for p in sweep.points} == {"a", "b"}

    def test_fold_policy_ordering(self, fold_sweep):
        table = fold_sweep.cycles_table()["alternating"]
        assert table["crisp"] < table["none"]
        assert table["all"] <= table["crisp"]

    def test_icache_sweep_monotone(self):
        sweep = icache_sweep(WORKLOADS, sizes=(8, 32, 128))
        table = sweep.cycles_table()["alternating"]
        assert table["i128"] <= table["i32"] <= table["i8"]

    def test_latency_sweep_monotone(self):
        sweep = latency_sweep(WORKLOADS, latencies=(1, 8))
        table = sweep.cycles_table()["alternating"]
        assert table["m1"] <= table["m8"]

    def test_query_helpers(self, fold_sweep):
        assert len(fold_sweep.for_workload("alternating")) == 3
        assert len(fold_sweep.by_label("crisp")) == 1

    def test_formatting(self, fold_sweep):
        text = fold_sweep.format()
        assert "alternating" in text
        assert "crisp" in text
